"""First-in-first-out scheduling.

``FifoScheduler`` serves packets strictly in arrival order regardless of
which queue they sit in.  With ``n_queues=1`` it is the plain drop-tail
discipline used by host NICs; with more queues it still provides the
per-queue occupancy accounting markers rely on, while the service order
ignores queue boundaries (useful as a degenerate baseline).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

from ..net.packet import Packet
from .base import Scheduler

__all__ = ["FifoScheduler"]


class FifoScheduler(Scheduler):
    """Global FIFO across all queues."""

    def __init__(self, n_queues: int = 1, weights: Optional[Sequence[float]] = None):
        super().__init__(n_queues, weights)
        self._order: Deque[int] = deque()

    def enqueue(self, queue_index: int, packet: Packet) -> None:
        # Inlined base bookkeeping: host NIC ports make this the most
        # frequently called scheduler method in the fabric.
        self._queues[queue_index].append(packet)
        self._total_packets += 1
        self._order.append(queue_index)

    def dequeue(self) -> Optional[Tuple[int, Packet]]:
        if self._total_packets == 0:
            return None
        queue_index = self._order.popleft()
        self._total_packets -= 1
        return queue_index, self._queues[queue_index].popleft()

    def clear(self) -> None:
        super().clear()
        self._order.clear()
