"""Packet schedulers: FIFO, strict priority, WRR, DWRR, WFQ, SP+WFQ."""

from .base import Scheduler, normalize_weights
from .dwrr import DwrrScheduler
from .fifo import FifoScheduler
from .hybrid import SpWfqScheduler
from .strict_priority import StrictPriorityScheduler
from .wfq import WfqScheduler
from .wrr import WrrScheduler

__all__ = [
    "DwrrScheduler",
    "FifoScheduler",
    "Scheduler",
    "SpWfqScheduler",
    "StrictPriorityScheduler",
    "WfqScheduler",
    "WrrScheduler",
    "normalize_weights",
]
