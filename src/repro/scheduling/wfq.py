"""Weighted Fair Queueing via Start-time Fair Queueing (SFQ).

True WFQ tracks the virtual time of a fluid GPS reference system, which is
expensive and subtle.  We implement Goyal's Start-time Fair Queueing, the
standard practical approximation: each packet gets a start tag
``S = max(v, F_q)`` and the queue's finish tag advances by
``size / weight``; the scheduler serves the backlogged packet with the
smallest start tag and sets the virtual time ``v`` to it.

SFQ has no notion of a round (it is "generic" in the paper's taxonomy),
so MQ-ECN cannot drive it — exactly the limitation PMSB removes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

from ..net.packet import Packet
from .base import Scheduler

__all__ = ["WfqScheduler"]


class WfqScheduler(Scheduler):
    """Start-time fair queueing over ``n_queues`` weighted queues."""

    def __init__(self, n_queues: int, weights: Optional[Sequence[float]] = None):
        super().__init__(n_queues, weights)
        self._virtual_time = 0.0
        self._finish_tag = [0.0] * n_queues
        self._start_tags: list[Deque[float]] = [deque() for _ in range(n_queues)]

    @property
    def virtual_time(self) -> float:
        """Current virtual time (start tag of the last served packet)."""
        return self._virtual_time

    def enqueue(self, queue_index: int, packet: Packet) -> None:
        start = max(self._virtual_time, self._finish_tag[queue_index])
        self._finish_tag[queue_index] = start + packet.size / self.weights[queue_index]
        self._start_tags[queue_index].append(start)
        super().enqueue(queue_index, packet)

    def dequeue(self) -> Optional[Tuple[int, Packet]]:
        if self._total_packets == 0:
            return None
        best_queue = -1
        best_tag = 0.0
        for queue_index in range(self.n_queues):
            tags = self._start_tags[queue_index]
            if tags and (best_queue < 0 or tags[0] < best_tag):
                best_queue = queue_index
                best_tag = tags[0]
        self._start_tags[best_queue].popleft()
        self._virtual_time = best_tag
        return best_queue, self._pop(best_queue)

    def clear(self) -> None:
        super().clear()
        self._virtual_time = 0.0
        for queue_index in range(self.n_queues):
            self._finish_tag[queue_index] = 0.0
            self._start_tags[queue_index].clear()
