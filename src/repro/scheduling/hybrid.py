"""Hierarchical SP+WFQ scheduling.

The paper's Fig. 13 experiment configures "SP+WFQ with three queues:
queue 1 has a strict higher priority while queue 2 and queue 3 have equal
weights in the lowest priority".  ``SpWfqScheduler`` expresses that
directly: every queue has a priority level (lower value wins outright) and
a weight; among same-level queues, bandwidth is shared with start-time
fair queueing.

Setting distinct priorities for every queue degenerates to strict
priority; a single shared level degenerates to WFQ — both covered by
dedicated classes, so this one is used only for genuine hybrids.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..net.packet import Packet
from .base import Scheduler

__all__ = ["SpWfqScheduler"]


class SpWfqScheduler(Scheduler):
    """Strict priority across levels, SFQ within a level."""

    def __init__(
        self,
        n_queues: int,
        priorities: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ):
        super().__init__(n_queues, weights)
        if len(priorities) != n_queues:
            raise ValueError(f"expected {n_queues} priorities, got {len(priorities)}")
        self.priorities = list(priorities)
        #: Priority levels in service order (best first).
        self._levels: List[int] = sorted(set(self.priorities))
        self._level_queues: Dict[int, List[int]] = {
            level: [q for q in range(n_queues) if self.priorities[q] == level]
            for level in self._levels
        }
        self._virtual_time: Dict[int, float] = {level: 0.0 for level in self._levels}
        self._finish_tag = [0.0] * n_queues
        self._start_tags: List[Deque[float]] = [deque() for _ in range(n_queues)]

    def enqueue(self, queue_index: int, packet: Packet) -> None:
        level = self.priorities[queue_index]
        start = max(self._virtual_time[level], self._finish_tag[queue_index])
        self._finish_tag[queue_index] = start + packet.size / self.weights[queue_index]
        self._start_tags[queue_index].append(start)
        super().enqueue(queue_index, packet)

    def dequeue(self) -> Optional[Tuple[int, Packet]]:
        if self._total_packets == 0:
            return None
        for level in self._levels:
            best_queue = -1
            best_tag = 0.0
            for queue_index in self._level_queues[level]:
                tags = self._start_tags[queue_index]
                if tags and (best_queue < 0 or tags[0] < best_tag):
                    best_queue = queue_index
                    best_tag = tags[0]
            if best_queue >= 0:
                self._start_tags[best_queue].popleft()
                self._virtual_time[level] = best_tag
                return best_queue, self._pop(best_queue)
        raise AssertionError("packet accounting out of sync")  # pragma: no cover

    def clear(self) -> None:
        super().clear()
        for level in self._levels:
            self._virtual_time[level] = 0.0
        for queue_index in range(self.n_queues):
            self._finish_tag[queue_index] = 0.0
            self._start_tags[queue_index].clear()
