"""Deficit Weighted Round Robin (DWRR).

The byte-accurate round-robin variant (Shreedhar & Varghese): each
backlogged queue holds a *deficit counter*; a visit adds
``quantum_i = weight_i × quantum_bytes`` and the queue may send packets
while the head fits in the deficit.  A queue that drains loses its deficit
and leaves the active list.

DWRR is the scheduler the paper's large-scale DWRR experiments
(Figs. 16–21) and the MQ-ECN baseline both assume.  Round boundaries are
reported through ``round_observer``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Set, Tuple

from ..net.packet import MTU_BYTES, Packet
from .base import Scheduler

__all__ = ["DwrrScheduler"]


class DwrrScheduler(Scheduler):
    """Byte-granularity deficit weighted round robin."""

    is_round_based = True

    def __init__(
        self,
        n_queues: int,
        weights: Optional[Sequence[float]] = None,
        quantum_bytes: int = MTU_BYTES,
    ):
        super().__init__(n_queues, weights)
        if quantum_bytes < 1:
            raise ValueError("quantum_bytes must be at least 1")
        self.quantum = [w * quantum_bytes for w in self.weights]
        self._deficit = [0.0] * n_queues
        self._visiting = [False] * n_queues
        self._active: Deque[int] = deque()
        self._is_active = [False] * n_queues
        self._served_this_round: Set[int] = set()

    def queue_quantum(self, queue_index: int) -> float:
        """The quantum (bytes added per round) of one queue — MQ-ECN input."""
        return self.quantum[queue_index]

    def enqueue(self, queue_index: int, packet: Packet) -> None:
        # Inlined base bookkeeping (hot path).
        self._queues[queue_index].append(packet)
        self._total_packets += 1
        if not self._is_active[queue_index]:
            self._is_active[queue_index] = True
            self._active.append(queue_index)

    def dequeue(self) -> Optional[Tuple[int, Packet]]:
        if self._total_packets == 0:
            return None
        while True:
            queue_index = self._active[0]
            if not self._visiting[queue_index]:
                self._begin_visit(queue_index)
            queue = self._queues[queue_index]
            head = queue[0]
            if head.size <= self._deficit[queue_index]:
                packet = queue.popleft()
                self._total_packets -= 1
                self._deficit[queue_index] -= packet.size
                if not queue:
                    self._retire(queue_index)
                return queue_index, packet
            # Head does not fit this visit: carry the deficit to the next
            # round and move on.
            self._visiting[queue_index] = False
            self._active.rotate(-1)

    def _begin_visit(self, queue_index: int) -> None:
        if queue_index in self._served_this_round:
            self._served_this_round.clear()
            self._notify_round()
        self._served_this_round.add(queue_index)
        self._deficit[queue_index] += self.quantum[queue_index]
        self._visiting[queue_index] = True

    def _retire(self, queue_index: int) -> None:
        self._active.popleft()
        self._is_active[queue_index] = False
        self._deficit[queue_index] = 0.0
        self._visiting[queue_index] = False
        # A retired queue must also leave the round bookkeeping: if it
        # re-activates before the round completes, its next visit would
        # otherwise look like a new round and fire a spurious
        # round_observer notification (skewing MQ-ECN's T_round low).
        self._served_this_round.discard(queue_index)
        if not self._active:
            self._served_this_round.clear()

    def clear(self) -> None:
        super().clear()
        for queue_index in range(self.n_queues):
            self._deficit[queue_index] = 0.0
            self._visiting[queue_index] = False
            self._is_active[queue_index] = False
        self._active.clear()
        self._served_this_round.clear()
