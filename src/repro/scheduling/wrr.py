"""Weighted Round Robin (WRR).

Each backlogged queue is visited in cyclic order and may send up to
``weight_i`` packets per visit.  WRR is round-based: the scheduler fires
``round_observer`` every time a new service round begins, which is the
signal MQ-ECN needs to estimate ``T_round``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Set, Tuple

from ..net.packet import MTU_BYTES, Packet
from .base import Scheduler

__all__ = ["WrrScheduler"]


class WrrScheduler(Scheduler):
    """Packet-granularity weighted round robin."""

    is_round_based = True

    def __init__(self, n_queues: int, weights: Optional[Sequence[float]] = None):
        super().__init__(n_queues, weights)
        #: Packets a queue may send per visit (at least one).
        self._per_visit = [max(1, int(round(w))) for w in self.weights]
        self._credit = [0] * n_queues
        self._active: Deque[int] = deque()
        self._is_active = [False] * n_queues
        self._served_this_round: Set[int] = set()

    def queue_quantum(self, queue_index: int) -> float:
        """Approximate bytes served per round (MQ-ECN input): WRR grants
        packets, so the quantum is the per-visit packet budget in MTUs."""
        return self._per_visit[queue_index] * MTU_BYTES

    def enqueue(self, queue_index: int, packet: Packet) -> None:
        super().enqueue(queue_index, packet)
        if not self._is_active[queue_index]:
            self._is_active[queue_index] = True
            self._active.append(queue_index)

    def dequeue(self) -> Optional[Tuple[int, Packet]]:
        if self._total_packets == 0:
            return None
        queue_index = self._active[0]
        if self._credit[queue_index] == 0:
            self._begin_visit(queue_index)
        packet = self._pop(queue_index)
        self._credit[queue_index] -= 1
        if not self._queues[queue_index]:
            self._retire(queue_index)
        elif self._credit[queue_index] == 0:
            self._active.rotate(-1)
        return queue_index, packet

    def _begin_visit(self, queue_index: int) -> None:
        if queue_index in self._served_this_round:
            self._served_this_round.clear()
            self._notify_round()
        self._served_this_round.add(queue_index)
        self._credit[queue_index] = self._per_visit[queue_index]

    def _retire(self, queue_index: int) -> None:
        self._active.popleft()
        self._is_active[queue_index] = False
        self._credit[queue_index] = 0
        # Same round-bookkeeping rule as DWRR: a drained queue that
        # re-activates within the round must not look like a new round.
        self._served_this_round.discard(queue_index)
        if not self._active:
            # The backlog drained: the current round is over.
            self._served_this_round.clear()

    def clear(self) -> None:
        super().clear()
        for queue_index in range(self.n_queues):
            self._credit[queue_index] = 0
            self._is_active[queue_index] = False
        self._active.clear()
        self._served_this_round.clear()
