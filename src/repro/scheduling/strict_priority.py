"""Strict Priority (SP) scheduling.

Queue 0 has the highest priority by default; an explicit ``priorities``
vector (lower value = served first) can reorder that.  SP has no notion of
a "round", which is one of the schedulers MQ-ECN cannot support and PMSB
can (paper §II-C, Table I).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..net.packet import Packet
from .base import Scheduler

__all__ = ["StrictPriorityScheduler"]


class StrictPriorityScheduler(Scheduler):
    """Always serve the highest-priority backlogged queue."""

    def __init__(
        self,
        n_queues: int,
        priorities: Optional[Sequence[int]] = None,
        weights: Optional[Sequence[float]] = None,
    ):
        super().__init__(n_queues, weights)
        if priorities is None:
            priorities = list(range(n_queues))
        if len(priorities) != n_queues:
            raise ValueError(f"expected {n_queues} priorities, got {len(priorities)}")
        self.priorities = list(priorities)
        #: Queue indices sorted by (priority, index): the service order.
        self._service_order: List[int] = sorted(
            range(n_queues), key=lambda q: (self.priorities[q], q)
        )

    def dequeue(self) -> Optional[Tuple[int, Packet]]:
        if self._total_packets == 0:
            return None
        for queue_index in self._service_order:
            if self._queues[queue_index]:
                return queue_index, self._pop(queue_index)
        raise AssertionError("packet accounting out of sync")  # pragma: no cover
