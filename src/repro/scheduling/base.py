"""Scheduler interface.

A scheduler owns the per-queue packet storage of one output port and
decides which queue the next departing packet comes from.  The port calls
``enqueue(queue_index, packet)`` when a packet is admitted and
``dequeue()`` each time the link becomes free.

Round-based schedulers (WRR, DWRR) additionally report *round boundaries*
through :attr:`Scheduler.round_observer`; MQ-ECN uses this to estimate
``T_round`` without reaching into scheduler internals.  Schedulers with no
notion of rounds never invoke the observer — which is exactly the property
that makes MQ-ECN inapplicable to them (Table I of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from ..net.packet import Packet

__all__ = ["Scheduler", "normalize_weights"]


def normalize_weights(n_queues: int, weights: Optional[Sequence[float]]) -> List[float]:
    """Validate and materialize a weight vector (defaults to all-equal)."""
    if weights is None:
        return [1.0] * n_queues
    if len(weights) != n_queues:
        raise ValueError(f"expected {n_queues} weights, got {len(weights)}")
    result = [float(w) for w in weights]
    if any(w <= 0 for w in result):
        raise ValueError("weights must be positive")
    return result


class Scheduler:
    """Base class with shared storage and accounting.

    Subclasses implement :meth:`dequeue`; most reuse the base
    :meth:`enqueue`.  ``is_round_based`` advertises whether the scheduler
    has a "round" concept (and therefore drives ``round_observer``).
    """

    is_round_based = False

    def __init__(self, n_queues: int, weights: Optional[Sequence[float]] = None):
        if n_queues < 1:
            raise ValueError("a scheduler needs at least one queue")
        self.n_queues = n_queues
        self.weights = normalize_weights(n_queues, weights)
        self._queues: List[Deque[Packet]] = [deque() for _ in range(n_queues)]
        self._total_packets = 0
        #: Called as ``round_observer(sim_now_unknown)`` — actually with no
        #: argument — at each round boundary.  Only round-based schedulers
        #: ever invoke it.
        self.round_observer: Optional[Callable[[], None]] = None
        #: Invoked (no arguments) at the end of every :meth:`clear` —
        #: the auditor's hook for catching a ``clear()`` that bypasses
        #: :meth:`repro.net.port.Port.reset`.  Subclass ``clear``
        #: overrides run their own state reset after ``super().clear()``
        #: returns, so the observer must not inspect subclass state.
        self.clear_observer: Optional[Callable[[], None]] = None

    def __len__(self) -> int:
        return self._total_packets

    @property
    def is_empty(self) -> bool:
        return self._total_packets == 0

    def queue_len(self, queue_index: int) -> int:
        """Number of packets currently stored in ``queue_index``."""
        return len(self._queues[queue_index])

    def enqueue(self, queue_index: int, packet: Packet) -> None:
        """Append ``packet`` to ``queue_index``."""
        self._queues[queue_index].append(packet)
        self._total_packets += 1

    def dequeue(self) -> Optional[Tuple[int, Packet]]:
        """Remove and return ``(queue_index, packet)``; None when empty."""
        raise NotImplementedError

    def clear(self) -> None:
        """Discard all stored packets and reset scheduling state.

        The teardown hook behind :meth:`repro.net.port.Port.reset`.
        Subclasses with extra per-queue state (deficits, credits, virtual
        times) extend this so a cleared scheduler is indistinguishable
        from a freshly constructed one.
        """
        for queue in self._queues:
            queue.clear()
        self._total_packets = 0
        if self.clear_observer is not None:
            self.clear_observer()

    # -- helpers for subclasses ------------------------------------------

    def _pop(self, queue_index: int) -> Packet:
        packet = self._queues[queue_index].popleft()
        self._total_packets -= 1
        return packet

    def _notify_round(self) -> None:
        if self.round_observer is not None:
            self.round_observer()
