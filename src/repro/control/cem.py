"""Deterministic cross-entropy optimization over a threshold grid.

The X-AUTOTUNE experiment family searches the plane of two-phase PMSB
schedules ``(k0, k1)`` — the port threshold before and after a load
shift — for the pair minimizing a tail-FCT objective.  The search is
gradient-free cross-entropy method (CEM):

1. maintain a Gaussian over *grid-index* space (continuous mean/std per
   coordinate);
2. each round, draw a population, snap every sample to the nearest grid
   point, and evaluate the distinct, not-yet-seen candidates;
3. refit mean/std to the elite fraction (best-scoring candidates of the
   round, by the caller's ``evaluate`` — lower is better);
4. stop after ``rounds`` rounds or when the std collapses below one
   grid step in both coordinates.

Determinism is load-bearing: every draw comes from one
:func:`~repro.sim.rng.make_rng` stream keyed by the caller's seed, and
evaluations are memoized in an ``evaluated`` dict the caller may
pre-seed (the autotune runner seeds it with the static diagonal — every
``(k, k)`` schedule — so the tuned winner can never score worse than
the best static threshold, and the content-addressed run store makes
repeated evaluations free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.rng import make_rng

__all__ = ["CemResult", "cross_entropy_search"]

Candidate = Tuple[float, float]


@dataclass
class CemResult:
    """Outcome of one cross-entropy search."""

    #: Best candidate seen anywhere (including pre-seeded evaluations).
    best: Candidate
    best_score: float
    #: Every evaluated candidate → score (includes pre-seeded entries).
    evaluated: Dict[Candidate, float]
    #: Per-round record: (mean, std, round's best candidate, its score).
    history: List[Tuple[Tuple[float, float], Tuple[float, float],
                        Candidate, float]] = field(default_factory=list)

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluated)


def _snap(value: float, upper: int) -> int:
    index = int(round(value))
    if index < 0:
        return 0
    if index > upper:
        return upper
    return index


def cross_entropy_search(
    evaluate: Callable[[float, float], float],
    grid: Sequence[float],
    seed: int,
    rounds: int = 4,
    population: int = 8,
    elite_frac: float = 0.25,
    evaluated: Optional[Dict[Candidate, float]] = None,
) -> CemResult:
    """Minimize ``evaluate(k0, k1)`` over ``grid × grid``.

    ``evaluate`` must be deterministic (same candidate → same score);
    it is called at most once per distinct candidate.  ``evaluated``
    pre-seeds the memo table — pre-seeded candidates count toward
    ``best`` but are never re-evaluated.
    """
    grid = sorted(set(float(k) for k in grid))
    if len(grid) < 1:
        raise ValueError("grid must contain at least one threshold")
    if rounds < 1 or population < 1:
        raise ValueError("rounds and population must be positive")
    if not 0.0 < elite_frac <= 1.0:
        raise ValueError("elite_frac must be in (0, 1]")
    scores: Dict[Candidate, float] = dict(evaluated) if evaluated else {}
    rng = make_rng(seed)
    upper = len(grid) - 1
    # Start centered with enough spread to reach the whole grid.
    mean = [upper / 2.0, upper / 2.0]
    std = [max(1.0, upper / 2.0), max(1.0, upper / 2.0)]
    n_elite = max(1, int(round(population * elite_frac)))
    history: List[Tuple[Tuple[float, float], Tuple[float, float],
                        Candidate, float]] = []

    for _ in range(rounds):
        draws = rng.normal(loc=mean, scale=std, size=(population, 2))
        round_candidates: List[Tuple[int, int]] = []
        seen_round = set()
        for row in draws:
            pair = (_snap(row[0], upper), _snap(row[1], upper))
            if pair not in seen_round:
                seen_round.add(pair)
                round_candidates.append(pair)
        scored: List[Tuple[float, Tuple[int, int]]] = []
        for i, j in round_candidates:
            candidate = (grid[i], grid[j])
            if candidate not in scores:
                scores[candidate] = float(evaluate(*candidate))
            scored.append((scores[candidate], (i, j)))
        scored.sort(key=lambda item: (item[0], item[1]))
        elite = scored[:n_elite]
        round_best_score, (bi, bj) = elite[0]
        history.append(((mean[0], mean[1]), (std[0], std[1]),
                        (grid[bi], grid[bj]), round_best_score))
        # Refit to the elite set (population std; floor keeps the
        # search alive when the elite collapses to one point).
        for axis in range(2):
            values = [pair[axis] for _, pair in elite]
            mean[axis] = sum(values) / len(values)
            variance = sum((v - mean[axis]) ** 2 for v in values) / len(values)
            std[axis] = max(0.25, variance ** 0.5)
        if std[0] < 0.5 and std[1] < 0.5:
            break

    # Best over EVERYTHING evaluated, pre-seeded diagonals included —
    # ties break deterministically toward the smaller candidate.
    best = min(scores.items(), key=lambda item: (item[1], item[0]))
    return CemResult(best=best[0], best_score=best[1],
                     evaluated=scores, history=history)
