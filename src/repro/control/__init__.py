"""Closed-loop threshold control.

Observation sampling (:mod:`repro.control.observation`), the controller
interface and the two shipped controllers
(:mod:`repro.control.controller`), and the deterministic cross-entropy
optimizer behind X-AUTOTUNE (:mod:`repro.control.cem`).
"""

from .cem import CemResult, cross_entropy_search
from .controller import (CemController, ControllerRuntime, ControllerSpec,
                         TheoremController, ThresholdController,
                         build_runtime, controller_enabled,
                         set_controller_default)
from .observation import ObservationVector, PortSampler

__all__ = [
    "CemController",
    "CemResult",
    "ControllerRuntime",
    "ControllerSpec",
    "ObservationVector",
    "PortSampler",
    "TheoremController",
    "ThresholdController",
    "build_runtime",
    "controller_enabled",
    "cross_entropy_search",
    "set_controller_default",
]
