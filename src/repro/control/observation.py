"""Per-port observation sampling for threshold controllers.

A :class:`PortSampler` snapshots one port's cumulative counters and, on
each controller period, turns the deltas into an
:class:`ObservationVector` — the closed-loop input a
:class:`~repro.control.controller.ThresholdController` sees:

- **occupancy**: instantaneous buffer depth (packets and bytes);
- **throughput / utilization**: bits transmitted over the window,
  normalized by the link rate;
- **marking rate**: fraction of ECN-capable packets the port's marker
  marked during the window;
- **drop rate**: drops per packet arrival during the window;
- **RTT samples**: what the transports measured during the window
  (collected fabric-wide by the runtime from senders opened with
  ``record_rtt``; empty when no transport records RTTs).

Everything is computed from counters the datapath already maintains, so
sampling costs nothing between periods and a disabled controller costs
nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["ObservationVector", "PortSampler"]


@dataclass(frozen=True)
class ObservationVector:
    """One port's state over one controller period."""

    #: Port name (``sw0:bottleneck`` etc.).
    port: str
    #: Sample time (end of the window, seconds).
    time: float
    #: Window length (seconds).
    interval: float
    #: Instantaneous buffer depth at sample time.
    occupancy_packets: int
    occupancy_bytes: int
    #: Attached link capacity (bits/s) — lets analytic controllers
    #: compute BDP-denominated bounds without reaching into the port.
    capacity_bps: float
    #: Bits transmitted during the window / window length.
    throughput_bps: float
    #: ``throughput_bps / capacity_bps``.
    utilization: float
    #: Marked fraction of ECN-capable packets seen during the window.
    marking_rate: float
    #: Drops per packet arrival during the window.
    drop_rate: float
    #: RTT samples the transports recorded during the window (seconds).
    rtt_samples: Tuple[float, ...]


class PortSampler:
    """Delta-tracker turning one port's counters into observations."""

    __slots__ = ("port", "_last_time", "_last_tx_bytes", "_last_seen",
                 "_last_marked", "_last_drops", "_last_arrivals")

    def __init__(self, port: "Port"):
        self.port = port
        self._last_time = port.sim.now
        self._rebaseline()

    def _rebaseline(self) -> None:
        port = self.port
        self._last_tx_bytes = port.tx_bytes
        self._last_seen = port.marker.packets_seen
        self._last_marked = port.marker.packets_marked
        self._last_drops = port.drops
        self._last_arrivals = self._arrivals()

    def _arrivals(self) -> int:
        # Cumulative packets offered to the port: everything transmitted
        # or still buffered was enqueued once, plus admission drops.
        port = self.port
        return port.tx_packets + port.packet_count + port.drops

    def sample(self, now: float,
               rtt_samples: Tuple[float, ...] = ()) -> ObservationVector:
        """Close the current window at ``now`` and open the next one."""
        port = self.port
        interval = now - self._last_time
        tx_bits = (port.tx_bytes - self._last_tx_bytes) * 8.0
        throughput = tx_bits / interval if interval > 0 else 0.0
        capacity = port.link.bandwidth
        seen = port.marker.packets_seen - self._last_seen
        marked = port.marker.packets_marked - self._last_marked
        arrivals = self._arrivals() - self._last_arrivals
        drops = port.drops - self._last_drops
        observation = ObservationVector(
            port=port.name,
            time=now,
            interval=interval,
            occupancy_packets=port.packet_count,
            occupancy_bytes=port.byte_count,
            capacity_bps=capacity,
            throughput_bps=throughput,
            utilization=throughput / capacity if capacity > 0 else 0.0,
            marking_rate=marked / seen if seen > 0 else 0.0,
            drop_rate=drops / arrivals if arrivals > 0 else 0.0,
            rtt_samples=tuple(rtt_samples),
        )
        self._last_time = now
        self._rebaseline()
        return observation
