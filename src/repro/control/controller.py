"""Closed-loop threshold controllers.

The paper freezes PMSB's port threshold ``K = C·RTT·λ`` at marker
construction; its own §VI sensitivity analysis (and PET's RL tuner in
the related work) show the optimum moves with load.  This module closes
the loop deterministically: a :class:`ControllerRuntime` samples every
marked port on a fixed period (through
:class:`~repro.control.observation.PortSampler`), hands each
:class:`~repro.control.observation.ObservationVector` to a
:class:`ThresholdController`, and stages whatever threshold changes the
controller returns through the marker's
:meth:`~repro.ecn.base.Marker.set_thresholds` surface — so changes land
at packet boundaries and the fabric auditor's
``marker-threshold-boundary`` rule holds by construction.

Two controllers ship:

- ``theorem`` (:class:`TheoremController`): the deterministic baseline.
  Re-evaluates the Theorem IV.1 port-threshold lower bound
  ``C·RTT/7`` from the *observed* RTT (EWMA over transport samples)
  and the port's weight vector, scaled by ``margin``.
- ``cem`` (:class:`CemController`): the policy vehicle of the
  cross-entropy optimizer (:mod:`repro.control.cem`).  In-run it applies
  a two-phase piecewise-constant port-threshold schedule ``k0 → k1`` at
  ``t1``; the schedule itself is what
  :func:`~repro.control.cem.cross_entropy_search` optimizes over the
  sweep grid, with every candidate evaluation cached in the
  content-addressed run store (the X-AUTOTUNE family).

A :class:`ControllerSpec` is the declarative, hashable identity of a
controller configuration: it parses from the CLI's
``--controller name:key=val,...`` grammar, renders to canonical tuples
for :class:`~repro.store.ExperimentSpec` params, and builds the live
controller.  ``set_controller_default`` / ``controller_enabled`` mirror
the fault layer's process-wide default plumbing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Tuple)

from ..core.analysis import port_threshold_lower_bound

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port
    from ..sim.engine import Simulator
    from .observation import ObservationVector

__all__ = ["ControllerSpec", "ThresholdController", "TheoremController",
           "CemController", "ControllerRuntime", "controller_enabled",
           "set_controller_default"]

CONTROLLER_NAMES = ("theorem", "cem")

#: Keys a controller retunes, in preference order: PMSB's port
#: threshold, then the single-threshold schemes.  Schemes exposing
#: neither (MQ-ECN, TCN, phantom, per-queue vectors) are left alone by
#: the shipped controllers.
_PORT_THRESHOLD_KEYS = ("port_threshold_packets", "threshold_packets")


def _threshold_key(marker) -> Optional[str]:
    current = marker.thresholds()
    for key in _PORT_THRESHOLD_KEYS:
        if key in current:
            return key
    return None


@dataclass(frozen=True)
class ControllerSpec:
    """Declarative controller configuration (CLI / store identity).

    ``parse``/``to_param``/``from_param`` follow the
    :class:`~repro.sim.faults.FaultSpec` conventions exactly: the spec
    is a frozen, validated value object whose canonical tuple form
    hashes into :class:`~repro.store.ExperimentSpec` params.
    """

    name: str
    #: Sampling/evaluation period (seconds).
    period: float = 500e-6
    # -- theorem --
    #: Safety factor over the Theorem IV.1 lower bound.
    margin: float = 1.0
    #: Minimum port threshold (packets) the controller will ever set.
    floor: float = 1.0
    # -- cem (piecewise schedule) --
    #: Phase switch time (seconds); 0 means "k1 from the start".
    t1: float = 0.0
    #: Port threshold (packets) before / after ``t1``.
    k0: float = 12.0
    k1: float = 12.0

    def __post_init__(self):
        if self.name not in CONTROLLER_NAMES:
            raise ValueError(
                f"unknown controller {self.name!r}; choose from "
                f"{CONTROLLER_NAMES}")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if self.floor < 0:
            raise ValueError("floor cannot be negative")
        if self.t1 < 0:
            raise ValueError("t1 cannot be negative")
        if self.k0 < 0 or self.k1 < 0:
            raise ValueError("thresholds cannot be negative")

    @property
    def wants_rtt(self) -> bool:
        """Does this controller consume transport RTT samples?"""
        return self.name == "theorem"

    def build(self) -> "ThresholdController":
        if self.name == "theorem":
            return TheoremController(margin=self.margin, floor=self.floor)
        return CemController(t1=self.t1, k0=self.k0, k1=self.k1)

    def to_param(self) -> Tuple[Tuple[str, Any], ...]:
        """Canonical, hashable form for ``ExperimentSpec`` params."""
        return tuple(sorted(asdict(self).items()))

    @classmethod
    def from_param(cls, pairs: Sequence[Tuple[str, Any]]) -> "ControllerSpec":
        fields = dict(pairs)
        unknown = set(fields) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown controller fields {sorted(unknown)}")
        return cls(**fields)

    @classmethod
    def parse(cls, text: str) -> "ControllerSpec":
        """Parse the CLI grammar ``name:key=val,key=val``.

        Example: ``theorem:period=0.0005,margin=1.5`` or
        ``cem:t1=0.01,k0=12,k1=24``.
        """
        name, _, body = text.partition(":")
        fields: Dict[str, Any] = {}
        if body:
            for item in body.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise ValueError(
                        f"malformed controller option {item!r} "
                        "(expected key=value)")
                fields[key] = float(value)
        try:
            return cls(name=name.strip(), **fields)
        except TypeError as exc:
            raise ValueError(str(exc)) from None


#: Process-wide default consulted by experiment runners whose
#: ``controller`` argument is None.  The CLI's ``--controller`` flag
#: sets it for one command.
_CONTROLLER_DEFAULT: Optional[ControllerSpec] = None


def set_controller_default(spec: Optional[ControllerSpec]) -> None:
    """Set the process-wide controller default (``--controller``)."""
    global _CONTROLLER_DEFAULT
    _CONTROLLER_DEFAULT = spec


def controller_enabled(
    spec: Optional[ControllerSpec] = None,
) -> Optional[ControllerSpec]:
    """Resolve a runner's ``controller`` argument against the default."""
    if spec is None:
        return _CONTROLLER_DEFAULT
    return spec


class ThresholdController:
    """One controller decision per (port, period).

    :meth:`update` returns the threshold changes to stage on the port's
    marker — a dict of :meth:`~repro.ecn.base.Marker.set_thresholds`
    keyword arguments — or None for "leave it alone".  Implementations
    must be deterministic functions of the observation stream: the run
    store caches controller runs by spec, so a non-deterministic
    controller would poison the cache.
    """

    name = "base"

    def update(self, observation: "ObservationVector",
               port: "Port") -> Optional[Dict[str, Any]]:
        raise NotImplementedError


class TheoremController(ThresholdController):
    """Theorem IV.1 closed loop: ``K = margin × C·RTT_obs / 7``.

    Tracks an EWMA of observed RTTs per port and re-derives the
    analytic port-threshold lower bound each period.  With no RTT
    samples yet (transports not recording, or no ACKs in the window)
    it holds the current threshold.
    """

    name = "theorem"

    def __init__(self, margin: float = 1.0, floor: float = 1.0,
                 beta: float = 0.25):
        self.margin = margin
        self.floor = floor
        #: EWMA gain applied to each window's mean RTT sample.
        self.beta = beta
        self._rtt_ewma: Dict[str, float] = {}

    def update(self, observation, port):
        key = _threshold_key(port.marker)
        if key is None:
            return None
        samples = observation.rtt_samples
        ewma = self._rtt_ewma.get(observation.port)
        if samples:
            window_mean = sum(samples) / len(samples)
            if ewma is None:
                ewma = window_mean
            else:
                ewma += self.beta * (window_mean - ewma)
            self._rtt_ewma[observation.port] = ewma
        if ewma is None:
            return None
        bound = port_threshold_lower_bound(
            port.weights, observation.capacity_bps, ewma)
        target = max(self.floor, self.margin * bound)
        if target == port.marker.thresholds()[key]:
            return None
        return {key: target}


class CemController(ThresholdController):
    """Piecewise-constant schedule ``k0 → k1`` at ``t1``.

    The in-run form of a cross-entropy candidate: the outer optimizer
    (:func:`~repro.control.cem.cross_entropy_search`) searches the
    ``(k0, k1)`` plane over the sweep grid; each candidate rides this
    controller through a store-cached run.
    """

    name = "cem"

    def __init__(self, t1: float = 0.0, k0: float = 12.0, k1: float = 12.0):
        self.t1 = t1
        self.k0 = k0
        self.k1 = k1

    def update(self, observation, port):
        key = _threshold_key(port.marker)
        if key is None:
            return None
        target = self.k0 if observation.time < self.t1 else self.k1
        if target == port.marker.thresholds()[key]:
            return None
        return {key: float(target)}


class ControllerRuntime:
    """Periodic evaluation loop binding one controller to a fabric.

    Schedules itself on the simulator every ``period`` seconds; each
    tick samples every managed port and stages the controller's changes
    through ``set_thresholds`` (committed by the markers at the next
    packet boundary).  RTT samples come from registered sources — any
    object exposing a growing ``rtt_samples`` list (DCTCP senders
    opened with ``record_rtt=True``); each tick consumes only the new
    tail, fabric-wide, and hands the same window to every port's
    observation.
    """

    def __init__(self, sim: "Simulator", ports: Sequence["Port"],
                 controller: ThresholdController, period: float):
        from .observation import PortSampler
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.controller = controller
        self.period = period
        self.ports = [port for port in ports]
        self.samplers = [PortSampler(port) for port in self.ports]
        self._rtt_sources: List[Any] = []
        self._rtt_consumed: List[int] = []
        #: Evaluation ticks performed / threshold batches staged.
        self.ticks = 0
        self.changes_staged = 0
        self._running = False

    def add_rtt_source(self, source: Any) -> None:
        """Register a sender whose ``rtt_samples`` list feeds the loop."""
        if getattr(source, "rtt_samples", None) is not None:
            self._rtt_sources.append(source)
            self._rtt_consumed.append(0)

    def start(self) -> None:
        """Schedule the first tick (idempotent)."""
        if not self._running:
            self._running = True
            self.sim.at(self.sim.now + self.period, self._tick)

    def stop(self) -> None:
        """Stop rescheduling after the next pending tick fires."""
        self._running = False

    def _drain_rtt(self) -> Tuple[float, ...]:
        fresh: List[float] = []
        for i, source in enumerate(self._rtt_sources):
            samples = source.rtt_samples
            consumed = self._rtt_consumed[i]
            if len(samples) > consumed:
                fresh.extend(samples[consumed:])
                self._rtt_consumed[i] = len(samples)
        return tuple(fresh)

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        window_rtts = self._drain_rtt()
        for port, sampler in zip(self.ports, self.samplers):
            observation = sampler.sample(now, window_rtts)
            changes = self.controller.update(observation, port)
            if changes:
                port.marker.set_thresholds(**changes)
                self.changes_staged += 1
        self.ticks += 1
        self.sim.at(now + self.period, self._tick)

    def stats(self) -> Dict[str, int]:
        """Provenance payload: how hard the loop actually worked."""
        return {"ticks": self.ticks, "changes_staged": self.changes_staged,
                "ports": len(self.ports),
                "rtt_sources": len(self._rtt_sources)}


def build_runtime(sim: "Simulator", network,
                  spec: ControllerSpec) -> ControllerRuntime:
    """Wire a spec'd controller over a built network's marked ports."""
    runtime = ControllerRuntime(
        sim, network.all_marked_ports(), spec.build(), spec.period)
    runtime.start()
    return runtime
