"""Throughput measurement.

:class:`ThroughputMeter` bins transmitted bytes by arbitrary keys over
fixed time windows.  Attached to a port it keys by queue index — the view
the paper's weighted-fair-sharing figures plot (throughput of queue 1 vs
queue 2 over time).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..net.packet import Packet
    from ..net.port import Port

__all__ = ["ThroughputMeter"]


class ThroughputMeter:
    """Binned byte counters → throughput time series."""

    def __init__(self, sim: Simulator, bin_width: float = 1e-3):
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        self.sim = sim
        self.bin_width = bin_width
        self._bins: Dict[Hashable, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._totals: Dict[Hashable, int] = defaultdict(int)
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None

    def record(self, key: Hashable, nbytes: int) -> None:
        """Account ``nbytes`` transmitted for ``key`` at the current time."""
        now = self.sim.now
        if self._first_time is None:
            self._first_time = now
        self._last_time = now
        self._bins[key][int(now / self.bin_width)] += nbytes
        self._totals[key] += nbytes

    def attach_port(self, port: "Port") -> None:
        """Meter a port's departures, keyed by queue index."""
        def listener(_port: "Port", queue_index: int, packet: "Packet") -> None:
            self.record(queue_index, packet.size)
        port.dequeue_listeners.append(listener)

    def keys(self) -> List[Hashable]:
        return list(self._bins.keys())

    def total_bytes(self, key: Hashable) -> int:
        return self._totals.get(key, 0)

    def average_bps(self, key: Hashable, t0: float, t1: float) -> float:
        """Mean throughput of ``key`` over the window ``[t0, t1)``."""
        if t1 <= t0:
            raise ValueError("window must have positive length")
        bins = self._bins.get(key, {})
        first_bin = int(t0 / self.bin_width)
        last_bin = int(t1 / self.bin_width)
        total = sum(
            count for index, count in bins.items() if first_bin <= index < last_bin
        )
        return total * 8.0 / (t1 - t0)

    def series(self, key: Hashable, t0: float = 0.0,
               t1: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Throughput time series ``(bin_centers_s, bits_per_second)``."""
        if t1 is None:
            t1 = self._last_time if self._last_time is not None else t0
        bins = self._bins.get(key, {})
        first_bin = int(t0 / self.bin_width)
        last_bin = max(first_bin + 1, int(np.ceil(t1 / self.bin_width)))
        n = last_bin - first_bin
        counts = np.zeros(n)
        for index, count in bins.items():
            if first_bin <= index < last_bin:
                counts[index - first_bin] = count
        times = (np.arange(first_bin, last_bin) + 0.5) * self.bin_width
        return times, counts * 8.0 / self.bin_width
