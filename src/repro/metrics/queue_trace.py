"""Queue-occupancy traces.

The marking-point experiments (Figs. 4/5/11/12) plot the bottleneck
buffer occupancy over time and compare slow-start *peaks* between enqueue
and dequeue marking.  :class:`QueueOccupancyTrace` records the occupancy
at every enqueue and dequeue event of one port, so peaks are captured
exactly rather than sampled.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..net.packet import Packet
    from ..net.port import Port

__all__ = ["QueueOccupancyTrace"]


class QueueOccupancyTrace:
    """Event-driven occupancy trace of one port (optionally one queue)."""

    def __init__(self, port: "Port", queue_index: Optional[int] = None):
        self.port = port
        self.queue_index = queue_index
        self.times: List[float] = []
        self.occupancy: List[int] = []
        port.enqueue_listeners.append(self._on_event)
        port.dequeue_listeners.append(self._on_event)

    def _on_event(self, port: "Port", queue_index: int, packet: "Packet") -> None:
        if self.queue_index is None:
            value = port.packet_count
        else:
            value = port.queue_packet_count(self.queue_index)
        self.times.append(port.sim.now)
        self.occupancy.append(value)

    @property
    def peak(self) -> int:
        """Maximum observed occupancy (packets)."""
        return max(self.occupancy) if self.occupancy else 0

    def peak_before(self, t: float) -> int:
        """Maximum occupancy observed before time ``t`` (the slow-start
        peak metric of Figs. 4/11/12)."""
        best = 0
        for time, value in zip(self.times, self.occupancy):
            if time >= t:
                break
            if value > best:
                best = value
        return best

    def mean(self) -> float:
        """Time-weighted mean occupancy over the trace."""
        if len(self.times) < 2:
            return float(self.occupancy[0]) if self.occupancy else 0.0
        times = np.asarray(self.times)
        values = np.asarray(self.occupancy, dtype=float)
        durations = np.diff(times)
        total = durations.sum()
        if total <= 0:
            return float(values.mean())
        return float((values[:-1] * durations).sum() / total)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.occupancy)
