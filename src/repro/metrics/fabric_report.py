"""Fabric-wide health report.

Aggregates the per-port counters of a whole network into one structured
summary — utilization, drops, CE marks, victim protections — the view an
operator's dashboard would show.  Used by examples and handy when
debugging why a scenario underperforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..net.topology import Network

__all__ = ["PortReport", "FabricReport", "fabric_report"]


@dataclass(frozen=True)
class PortReport:
    """Counters of one switch output port."""

    port: str
    switch: str
    tx_bytes: int
    utilization: float          # fraction of capacity over the window
    drops: int
    packets_marked: int
    mark_fraction: float
    occupancy_packets: int      # instantaneous, at report time
    #: Packets the attached wire lost (downed link, injected loss,
    #: corruption, killed in flight) — distinct from buffer ``drops``.
    link_lost: int = 0
    #: ``link_lost`` by reason (see :attr:`repro.net.link.Link.loss_breakdown`).
    link_loss_breakdown: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class FabricReport:
    """Whole-fabric aggregate plus the per-port breakdown."""

    duration: float
    ports: List[PortReport]
    total_tx_bytes: int
    total_drops: int
    total_marked: int
    #: Wire losses summed over every port's link (chaos runs).
    total_link_lost: int = 0

    @property
    def busiest_ports(self) -> List[PortReport]:
        """Ports ordered by transmitted bytes, busiest first."""
        return sorted(self.ports, key=lambda p: p.tx_bytes, reverse=True)

    def hotspots(self, utilization_threshold: float = 0.9) -> List[PortReport]:
        """Ports that ran above the given utilization."""
        return [p for p in self.ports
                if p.utilization >= utilization_threshold]

    def render(self, top: int = 10) -> str:
        """Human-readable table of the busiest ports."""
        lost = (f", {self.total_link_lost} wire losses"
                if self.total_link_lost else "")
        lines = [
            f"fabric over {self.duration * 1e3:.1f} ms: "
            f"{self.total_tx_bytes / 1e6:.1f} MB transmitted, "
            f"{self.total_drops} drops, {self.total_marked} CE marks"
            f"{lost}",
            f"{'port':28s} {'util':>6s} {'drops':>6s} {'marked':>7s} "
            f"{'mark%':>6s}",
        ]
        for report in self.busiest_ports[:top]:
            lines.append(
                f"{report.port:28s} {report.utilization:6.2f} "
                f"{report.drops:6d} {report.packets_marked:7d} "
                f"{100 * report.mark_fraction:5.1f}%"
            )
        return "\n".join(lines)


def fabric_report(network: "Network", duration: float) -> FabricReport:
    """Snapshot every switch port's counters after a run of ``duration``
    simulated seconds."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    ports: List[PortReport] = []
    for switch in network.switches:
        for port in switch.ports:
            capacity_bytes = port.link.bandwidth / 8.0 * duration
            ports.append(
                PortReport(
                    port=port.name,
                    switch=switch.name,
                    tx_bytes=port.tx_bytes,
                    utilization=port.tx_bytes / capacity_bytes,
                    drops=port.drops,
                    packets_marked=port.marker.packets_marked,
                    mark_fraction=port.marker.mark_fraction,
                    occupancy_packets=port.packet_count,
                    link_lost=port.link.packets_lost,
                    link_loss_breakdown={
                        reason: count for reason, count in
                        port.link.loss_breakdown.items() if count
                    },
                )
            )
    return FabricReport(
        duration=duration,
        ports=ports,
        total_tx_bytes=sum(p.tx_bytes for p in ports),
        total_drops=sum(p.drops for p in ports),
        total_marked=sum(p.packets_marked for p in ports),
        total_link_lost=sum(p.link_lost for p in ports),
    )
