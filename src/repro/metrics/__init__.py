"""Measurement: FCT collection, throughput meters, occupancy traces,
slowdown, exports, and summary statistics."""

from .export import (fct_records_to_csv, mean_of_summaries, rows_to_csv,
                     series_to_csv, to_json)
from .fabric_report import FabricReport, PortReport, fabric_report
from .fct import (
    FctCollector,
    FctRecord,
    LARGE_FLOW_MIN_BYTES,
    SMALL_FLOW_MAX_BYTES,
    SizeClass,
    classify,
)
from .queue_trace import QueueOccupancyTrace
from .slowdown import ideal_fct, slowdown_summary, slowdowns
from .stats import (SummaryStats, bootstrap_ci, empirical_cdf, percentile,
                    summarize)
from .throughput import ThroughputMeter

__all__ = [
    "FabricReport",
    "FctCollector",
    "FctRecord",
    "LARGE_FLOW_MIN_BYTES",
    "PortReport",
    "QueueOccupancyTrace",
    "SMALL_FLOW_MAX_BYTES",
    "SizeClass",
    "SummaryStats",
    "ThroughputMeter",
    "bootstrap_ci",
    "classify",
    "empirical_cdf",
    "fabric_report",
    "fct_records_to_csv",
    "ideal_fct",
    "mean_of_summaries",
    "percentile",
    "rows_to_csv",
    "series_to_csv",
    "slowdown_summary",
    "slowdowns",
    "summarize",
    "to_json",
]
