"""Summary statistics helpers shared by all metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["SummaryStats", "summarize", "percentile", "empirical_cdf",
           "bootstrap_ci"]


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for a statistic.

    Multi-seed sweeps report the statistic of a finite sample; the CI
    makes the sampling noise explicit (e.g. whether a small-flow p99
    difference between two schemes is meaningful at the BENCH scale).

    All resample indices come from one vectorized draw — for uniform
    sampling with replacement, one ``(n_resamples, n)`` ``integers``
    draw consumes the bit stream exactly as ``n_resamples`` sequential
    ``choice`` calls did, so intervals are bit-identical to the
    historical per-loop implementation at every seed.  Statistics that
    accept an ``axis`` keyword (``np.mean``, ``np.median``, …) evaluate
    in one call; anything else falls back to a per-row loop over the
    same index matrix.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot bootstrap an empty sample set")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, array.size, size=(n_resamples, array.size))
    try:
        resampled = np.asarray(statistic(array[idx], axis=1), dtype=float)
        if resampled.shape != (n_resamples,):
            raise TypeError("statistic did not reduce along axis=1")
    except TypeError:
        resampled = np.empty(n_resamples)
        for i in range(n_resamples):
            resampled[i] = statistic(array[idx[i]])
    tail = (1.0 - confidence) / 2.0 * 100.0
    return (float(np.percentile(resampled, tail)),
            float(np.percentile(resampled, 100.0 - tail)))


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """The empirical CDF of a sample set as ``(sorted_values, probs)``.

    This is the representation the paper's distribution figures (Figs. 1
    and 9) plot; feed it straight to ``series_to_csv`` or a plotter.
    """
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        raise ValueError("cannot build a CDF from no samples")
    probs = np.arange(1, array.size + 1) / array.size
    return array, probs


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0–100) of ``values``."""
    if len(values) == 0:
        raise ValueError("cannot take a percentile of no samples")
    return float(np.percentile(np.asarray(values, dtype=float), p))


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary used across experiments."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def scaled(self, factor: float) -> "SummaryStats":
        """Return a copy with every statistic multiplied by ``factor``
        (unit conversions, e.g. seconds → milliseconds)."""
        return SummaryStats(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
        )


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute the standard summary over a sample set."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    return SummaryStats(
        count=int(array.size),
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
        p99=float(np.percentile(array, 99)),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )
