"""FCT slowdown (normalized flow completion time).

Absolute FCTs mix flow size with network performance; the standard
datacenter metric divides each flow's FCT by the *ideal* FCT the flow
would see on an idle fabric — base RTT plus pure serialization.  A
slowdown of 1.0 is perfect; small flows' tail slowdown is the headline
latency metric in the FCT literature.
"""

from __future__ import annotations

from typing import List, Sequence

from ..net.packet import MTU_BYTES
from ..transport.base import packets_for_bytes
from .fct import FctRecord
from .stats import SummaryStats, summarize

__all__ = ["ideal_fct", "slowdowns", "slowdown_summary"]


def ideal_fct(size_bytes: int, link_rate: float, base_rtt: float,
              mss_bytes: int = MTU_BYTES) -> float:
    """FCT of the flow on an idle network.

    One base RTT of latency (first packet out → last ACK back, to first
    order) plus the serialization time of every packet at the slowest
    link.
    """
    if link_rate <= 0 or base_rtt < 0:
        raise ValueError("need positive link rate and non-negative RTT")
    n_packets = packets_for_bytes(size_bytes)
    return base_rtt + n_packets * mss_bytes * 8.0 / link_rate


def slowdowns(records: Sequence[FctRecord], link_rate: float,
              base_rtt: float, mss_bytes: int = MTU_BYTES) -> List[float]:
    """Per-flow slowdown factors (≥ ~1.0) for completed flows."""
    return [
        record.fct / ideal_fct(record.size_bytes, link_rate, base_rtt,
                               mss_bytes)
        for record in records
    ]


def slowdown_summary(records: Sequence[FctRecord], link_rate: float,
                     base_rtt: float,
                     mss_bytes: int = MTU_BYTES) -> SummaryStats:
    """Summary statistics of the slowdown distribution."""
    return summarize(slowdowns(records, link_rate, base_rtt, mss_bytes))
