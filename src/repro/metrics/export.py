"""Result export: CSV/JSON serialization of experiment outputs.

Simulation outputs (FCT records, throughput series, sweep rows) become
plain files a plotting pipeline can consume; nothing here depends on a
plotting library being installed.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Iterable, List, Sequence, TextIO, Union

import numpy as np

from .fct import FctRecord
from .stats import SummaryStats

__all__ = [
    "fct_records_to_csv",
    "series_to_csv",
    "rows_to_csv",
    "to_json",
    "mean_of_summaries",
]

PathOrFile = Union[str, TextIO]


def _open(target: PathOrFile):
    if isinstance(target, str):
        return open(target, "w", newline=""), True
    return target, False


def fct_records_to_csv(records: Sequence[FctRecord],
                       target: PathOrFile) -> None:
    """Write completed-flow records as CSV (one row per flow)."""
    handle, owned = _open(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(["flow_id", "size_bytes", "service",
                         "start_time", "fct"])
        for record in records:
            writer.writerow([record.flow_id, record.size_bytes,
                             record.service, repr(record.start_time),
                             repr(record.fct)])
    finally:
        if owned:
            handle.close()


def series_to_csv(times: Sequence[float], values: Sequence[float],
                  target: PathOrFile,
                  header: Sequence[str] = ("time", "value")) -> None:
    """Write a time series (e.g. a throughput curve) as two-column CSV."""
    if len(times) != len(values):
        raise ValueError("times and values must have equal length")
    handle, owned = _open(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for time, value in zip(times, values):
            writer.writerow([repr(float(time)), repr(float(value))])
    finally:
        if owned:
            handle.close()


def rows_to_csv(rows: Iterable[Any], target: PathOrFile) -> None:
    """Write a list of rows (sweep results) as CSV.

    Rows are dataclass instances or plain mappings — run-store records
    hand back dicts, live sweeps hand back dataclasses, and both export
    identically.  Nested :class:`SummaryStats` fields are flattened to
    ``<field>_mean``, ``<field>_p95`` … columns.
    """
    flattened: List[dict] = []
    for row in rows:
        if is_dataclass(row) and not isinstance(row, type):
            items = asdict(row)
        elif isinstance(row, dict):
            items = row
        else:
            raise TypeError(
                f"expected dataclass or dict rows, got {type(row)!r}")
        flat: dict = {}
        for key, value in items.items():
            if isinstance(value, dict) and set(value) >= {"mean", "p99"}:
                for stat_name, stat_value in value.items():
                    flat[f"{key}_{stat_name}"] = stat_value
            elif value is None:
                flat[key] = ""
            else:
                flat[key] = value
        flattened.append(flat)
    if not flattened:
        raise ValueError("no rows to export")
    handle, owned = _open(target)
    try:
        writer = csv.DictWriter(handle, fieldnames=list(flattened[0]))
        writer.writeheader()
        writer.writerows(flattened)
    finally:
        if owned:
            handle.close()


def to_json(obj: Any, target: PathOrFile) -> None:
    """Serialize dataclasses / arrays / dicts to JSON."""

    def default(value):
        if is_dataclass(value):
            return asdict(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, (np.integer, np.floating)):
            return value.item()
        if hasattr(value, "value"):  # enums
            return value.value
        raise TypeError(f"not JSON-serializable: {type(value)!r}")

    handle, owned = _open(target)
    try:
        json.dump(obj, handle, default=default, indent=2)
    finally:
        if owned:
            handle.close()


def mean_of_summaries(summaries: Sequence[SummaryStats]) -> SummaryStats:
    """Average summary statistics across repetitions (multi-seed runs).

    Each statistic is averaged point-wise; counts are summed.  This is
    the standard way multi-seed sweeps report a single row per setting.
    """
    if not summaries:
        raise ValueError("need at least one summary")
    n = len(summaries)
    return SummaryStats(
        count=sum(s.count for s in summaries),
        mean=sum(s.mean for s in summaries) / n,
        p50=sum(s.p50 for s in summaries) / n,
        p95=sum(s.p95 for s in summaries) / n,
        p99=sum(s.p99 for s in summaries) / n,
        minimum=min(s.minimum for s in summaries),
        maximum=max(s.maximum for s in summaries),
    )
