"""Flow-completion-time collection.

The paper reports FCT statistics for three size classes: *small* flows
(≤ 100 KB, 60% of flows), *large* flows (≥ 10 MB, 10%), and the medium
flows in between.  :class:`FctCollector` plugs directly into the
transport's completion callback and produces the per-class summaries the
large-scale benches print.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..transport.flow import Flow
from .stats import SummaryStats, summarize

if TYPE_CHECKING:  # pragma: no cover
    from ..transport.dctcp import DctcpSender

__all__ = ["SizeClass", "FctRecord", "FctCollector",
           "SMALL_FLOW_MAX_BYTES", "LARGE_FLOW_MIN_BYTES"]

#: Upper bound of a "small" flow (paper §VI-B: small flows ≤ 100 KB).
SMALL_FLOW_MAX_BYTES = 100 * 1000
#: Lower bound of a "large" flow (paper §VI-B: large flows ≥ 10 MB).
LARGE_FLOW_MIN_BYTES = 10 * 1000 * 1000


class SizeClass(enum.Enum):
    """The paper's flow size classes (small ≤ 100 KB, large ≥ 10 MB)."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"


def classify(size_bytes: int) -> SizeClass:
    """Paper size classes for one flow."""
    if size_bytes <= SMALL_FLOW_MAX_BYTES:
        return SizeClass.SMALL
    if size_bytes >= LARGE_FLOW_MIN_BYTES:
        return SizeClass.LARGE
    return SizeClass.MEDIUM


@dataclass(frozen=True)
class FctRecord:
    """One completed flow."""

    flow_id: int
    size_bytes: int
    service: int
    start_time: float
    fct: float

    @property
    def size_class(self) -> SizeClass:
        return classify(self.size_bytes)


class FctCollector:
    """Accumulates completions; pass :meth:`on_complete` to the senders.

    ``size_scale`` shrinks the class boundaries together with the flow
    sizes when a scale profile scales the workload — a "large" flow is
    then one whose *unscaled* size would be ≥ 10 MB.
    """

    def __init__(self, size_scale: float = 1.0) -> None:
        if size_scale <= 0:
            raise ValueError("size_scale must be positive")
        self.records: List[FctRecord] = []
        self.small_max_bytes = SMALL_FLOW_MAX_BYTES * size_scale
        self.large_min_bytes = LARGE_FLOW_MIN_BYTES * size_scale

    def classify(self, size_bytes: int) -> SizeClass:
        """Size class under this collector's (possibly scaled) bounds."""
        if size_bytes <= self.small_max_bytes:
            return SizeClass.SMALL
        if size_bytes >= self.large_min_bytes:
            return SizeClass.LARGE
        return SizeClass.MEDIUM

    def on_complete(self, flow: Flow, fct: float, sender: "DctcpSender") -> None:
        if flow.size_bytes is None:  # pragma: no cover - defensive
            return
        self.records.append(
            FctRecord(flow.flow_id, flow.size_bytes, flow.service,
                      flow.start_time, fct)
        )

    def __len__(self) -> int:
        return len(self.records)

    def fcts(self, size_class: Optional[SizeClass] = None) -> List[float]:
        """Completion times, optionally restricted to one size class."""
        if size_class is None:
            return [r.fct for r in self.records]
        return [r.fct for r in self.records
                if self.classify(r.size_bytes) is size_class]

    def summary(self, size_class: Optional[SizeClass] = None) -> SummaryStats:
        """Summary statistics over one size class (or all flows)."""
        return summarize(self.fcts(size_class))

    def summary_by_class(self) -> Dict[SizeClass, Optional[SummaryStats]]:
        """Per-class summaries (None for classes with no completions)."""
        result: Dict[SizeClass, Optional[SummaryStats]] = {}
        for size_class in SizeClass:
            values = self.fcts(size_class)
            result[size_class] = summarize(values) if values else None
        return result
