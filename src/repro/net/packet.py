"""Packet model.

A :class:`Packet` is a mutable record that travels through the simulated
network.  Switches never copy packets; the object created by the sender is
the one delivered to the receiver, so per-packet state (ECN codepoint,
enqueue timestamp for TCN sojourn time) is simply carried on the object.

ECN state follows RFC 3168 semantics at the granularity we need:

- ``ect``  — the transport declared the packet ECN-capable (ECT(0)).
- ``ce``   — a switch observed congestion and set Congestion Experienced.
- ``ece``  — on ACKs only: the receiver echoes CE back to the sender.

``service`` models the DSCP field: operators isolate services to switch
queues by DSCP, and our switch classifiers map ``service`` to a queue
index the same way.
"""

from __future__ import annotations

import itertools
from typing import Optional

__all__ = ["Packet", "DATA", "ACK", "MTU_BYTES", "ACK_BYTES", "HEADER_BYTES"]

#: Wire size of a full-sized data packet (bytes).  The paper's experiments
#: use 1502-byte packets on 1 Gbps links for the sojourn-time arithmetic;
#: we default to the conventional 1500-byte MTU and expose the size on
#: every packet so thresholds expressed in packets stay exact.
MTU_BYTES = 1500
#: Wire size of a pure ACK (bytes).
ACK_BYTES = 40
#: Header overhead accounted inside ``MTU_BYTES`` (Ethernet+IP+TCP).
HEADER_BYTES = 54

DATA = 0
ACK = 1
#: Congestion Notification Packet (DCQCN): the receiver's rate-limited
#: "I saw CE" signal back to the sender.
CNP = 2
#: Negative acknowledgement (DCQCN/RoCE go-back-N): "resend from seq".
NACK = 3

_packet_counter = itertools.count()


class Packet:
    """One simulated packet (data segment or ACK)."""

    __slots__ = (
        "uid",
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "size",
        "service",
        "ect",
        "ce",
        "ece",
        "ack_seq",
        "echo_time",
        "sent_time",
        "enqueue_time",
        "retransmit",
    )

    def __init__(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        service: int = 0,
        ect: bool = True,
    ):
        self.uid = next(_packet_counter)
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.service = service
        self.ect = ect
        self.ce = False
        #: On ACKs: the receiver saw CE on the data packet being acked.
        self.ece = False
        #: On ACKs: cumulative acknowledgement (next expected data seq).
        self.ack_seq = 0
        #: On ACKs: ``sent_time`` of the data packet that triggered this
        #: ACK, echoed back so the sender can take an exact RTT sample.
        self.echo_time: Optional[float] = None
        #: Stamped by the sender when the packet enters its NIC queue.
        self.sent_time: Optional[float] = None
        #: Stamped by a switch port at enqueue (TCN sojourn time).
        self.enqueue_time: Optional[float] = None
        self.retransmit = False

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == ACK

    @property
    def to_sender(self) -> bool:
        """True for any reverse-path packet (ACK/CNP/NACK)."""
        return self.kind != DATA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "DATA" if self.kind == DATA else "ACK"
        mark = "+CE" if self.ce else ""
        return (
            f"Packet({kind} flow={self.flow_id} seq={self.seq} "
            f"{self.src}->{self.dst} {self.size}B{mark})"
        )


def make_data(flow_id: int, src: int, dst: int, seq: int,
              size: int = MTU_BYTES, service: int = 0, ect: bool = True) -> Packet:
    """Convenience constructor for a data packet."""
    return Packet(DATA, flow_id, src, dst, seq, size, service, ect)


def make_ack(data: Packet, ack_seq: int, ece: bool) -> Packet:
    """Build the ACK a receiver sends in response to ``data``.

    ACKs are not ECN-capable (``ect=False``), mirroring standard practice:
    marking ACKs would make the reverse path interfere with the forward
    congestion signal.
    """
    ack = Packet(ACK, data.flow_id, data.dst, data.src, data.seq,
                 ACK_BYTES, data.service, ect=False)
    ack.ack_seq = ack_seq
    ack.ece = ece
    ack.echo_time = data.sent_time
    # Karn's rule support: the sender must not take RTT samples from ACKs
    # of retransmitted segments.
    ack.retransmit = data.retransmit
    return ack
