"""Packet model.

A :class:`Packet` is a mutable record that travels through the simulated
network.  Switches never copy packets; the object created by the sender is
the one delivered to the receiver, so per-packet state (ECN codepoint,
enqueue timestamp for TCN sojourn time) is simply carried on the object.

ECN state follows RFC 3168 semantics at the granularity we need:

- ``ect``  — the transport declared the packet ECN-capable (ECT(0)).
- ``ce``   — a switch observed congestion and set Congestion Experienced.
- ``ece``  — on ACKs only: the receiver echoes CE back to the sender.

``service`` models the DSCP field: operators isolate services to switch
queues by DSCP, and our switch classifiers map ``service`` to a queue
index the same way.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..sim.engine import slow_path_default

__all__ = [
    "Packet", "PacketPool", "POOL",
    "DATA", "ACK", "MTU_BYTES", "ACK_BYTES", "HEADER_BYTES",
    "make_data", "make_ack", "make_reply_ack", "split_train",
    "release", "set_pooling",
]

#: Wire size of a full-sized data packet (bytes).  The paper's experiments
#: use 1502-byte packets on 1 Gbps links for the sojourn-time arithmetic;
#: we default to the conventional 1500-byte MTU and expose the size on
#: every packet so thresholds expressed in packets stay exact.
MTU_BYTES = 1500
#: Wire size of a pure ACK (bytes).
ACK_BYTES = 40
#: Header overhead accounted inside ``MTU_BYTES`` (Ethernet+IP+TCP).
HEADER_BYTES = 54

DATA = 0
ACK = 1
#: Congestion Notification Packet (DCQCN): the receiver's rate-limited
#: "I saw CE" signal back to the sender.
CNP = 2
#: Negative acknowledgement (DCQCN/RoCE go-back-N): "resend from seq".
NACK = 3

_packet_counter = itertools.count()


class Packet:
    """One simulated packet (data segment or ACK)."""

    __slots__ = (
        "uid",
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "size",
        "service",
        "ect",
        "ce",
        "ece",
        "ack_seq",
        "echo_time",
        "sent_time",
        "enqueue_time",
        "retransmit",
        "pinned",
        "pooled",
        "train",
        "push",
    )

    def __init__(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        service: int = 0,
        ect: bool = True,
    ):
        self.uid = next(_packet_counter)
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.service = service
        self.ect = ect
        self.ce = False
        #: On ACKs: the receiver saw CE on the data packet being acked.
        self.ece = False
        #: On ACKs: cumulative acknowledgement (next expected data seq).
        self.ack_seq = 0
        #: On ACKs: ``sent_time`` of the data packet that triggered this
        #: ACK, echoed back so the sender can take an exact RTT sample.
        self.echo_time: Optional[float] = None
        #: Stamped by the sender when the packet enters its NIC queue.
        self.sent_time: Optional[float] = None
        #: Stamped by a switch port at enqueue (TCN sojourn time).
        self.enqueue_time: Optional[float] = None
        self.retransmit = False
        #: Set by observers that keep a reference past the packet's
        #: network lifetime (``repro.net.tracing``, the fabric auditor):
        #: a pinned packet is never recycled through the pool.
        self.pinned = False
        #: True while the object sits in the free-list (double-release
        #: guard; also lets observers detect a recycled handle).
        self.pooled = False
        #: Packet-train width: the number of consecutive MTU segments
        #: this object stands for (``--trains`` mode).  ``size`` is the
        #: total wire bytes of all segments and ``seq`` the first
        #: segment's sequence number, so byte/packet accounting works
        #: unchanged.  1 — the default everywhere — is a plain packet;
        #: on ACKs the field echoes the width of the data unit being
        #: acknowledged (the sender weights its alpha estimate by it).
        self.train = 1
        #: PSH semantics: the sender marks the unit carrying a flow's
        #: final segment so a delayed-ACK receiver acknowledges it
        #: immediately instead of sitting on the delack timer.
        self.push = False

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == ACK

    @property
    def to_sender(self) -> bool:
        """True for any reverse-path packet (ACK/CNP/NACK)."""
        return self.kind != DATA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "DATA" if self.kind == DATA else "ACK"
        mark = "+CE" if self.ce else ""
        return (
            f"Packet({kind} flow={self.flow_id} seq={self.seq} "
            f"{self.src}->{self.dst} {self.size}B{mark})"
        )


class PacketPool:
    """Bounded free-list of recycled :class:`Packet` objects.

    Packet workloads allocate one object per data segment and per ACK;
    at millions of events per sweep point that is pure allocator and GC
    churn.  The pool lets terminal consumers (the endpoint that a packet
    is dispatched to, the drop site, a downed link) hand objects back
    for reuse by :func:`make_data`/:func:`make_ack`.

    Determinism contract: a recycled packet gets a **fresh uid** from the
    same global counter a newly constructed packet would draw, so uid
    sequences — and therefore every trace and export — are identical
    with the pool enabled, disabled (``REPRO_SLOW_PATH=1``), or bypassed.

    Safety contract: observers that retain packet references past the
    network lifetime (``repro.net.tracing.PacketTrace``, the
    :class:`~repro.sim.audit.FabricAuditor`) set ``packet.pinned``;
    :meth:`release` refuses pinned packets (counted in ``pinned_skips``),
    so captured objects are never mutated behind the observer's back
    while the rest of the fabric keeps pooling.
    """

    __slots__ = ("free", "max_free", "enabled",
                 "allocated", "reused", "released", "pinned_skips")

    def __init__(self, max_free: int = 8192, enabled: bool = True):
        self.free: list[Packet] = []
        self.max_free = max_free
        self.enabled = enabled
        #: Pool misses: a fresh object had to be constructed.
        self.allocated = 0
        #: Pool hits: an allocation was avoided.
        self.reused = 0
        #: Packets accepted back into the free-list.
        self.released = 0
        #: Releases refused because the packet was pinned by an observer.
        self.pinned_skips = 0

    def acquire(self, kind: int, flow_id: int, src: int, dst: int,
                seq: int, size: int, service: int, ect: bool) -> Packet:
        """Return a packet with all fields reset, reusing a released one."""
        free = self.free
        if free:
            self.reused += 1
            packet = free.pop()
            packet.pooled = False
            packet.uid = next(_packet_counter)
            packet.kind = kind
            packet.flow_id = flow_id
            packet.src = src
            packet.dst = dst
            packet.seq = seq
            packet.size = size
            packet.service = service
            packet.ect = ect
            packet.ce = False
            packet.ece = False
            packet.ack_seq = 0
            packet.echo_time = None
            packet.sent_time = None
            packet.enqueue_time = None
            packet.retransmit = False
            packet.pinned = False
            packet.train = 1
            packet.push = False
            return packet
        self.allocated += 1
        return Packet(kind, flow_id, src, dst, seq, size, service, ect)

    def release(self, packet: Packet) -> None:
        """Hand a packet at end-of-life back for reuse.

        No-op when pooling is disabled, when the packet is pinned by an
        observer, or when it was already released (double-release guard).
        """
        if not self.enabled:
            return
        if packet.pinned:
            self.pinned_skips += 1
            return
        if packet.pooled:
            return
        free = self.free
        if len(free) < self.max_free:
            packet.pooled = True
            self.released += 1
            free.append(packet)

    @property
    def acquires(self) -> int:
        """Total acquire calls (``allocated + reused``)."""
        return self.allocated + self.reused

    def hit_rate(self) -> float:
        """Fraction of acquires served from the free-list."""
        total = self.allocated + self.reused
        return self.reused / total if total else 0.0

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "pinned_skips": self.pinned_skips,
            "free": len(self.free),
            "hit_rate": self.hit_rate(),
        }

    def reset(self) -> None:
        """Drop the free-list and zero the counters (test isolation)."""
        self.free.clear()
        self.allocated = 0
        self.reused = 0
        self.released = 0
        self.pinned_skips = 0


#: Process-wide pool.  ``REPRO_SLOW_PATH=1`` starts it disabled so the
#: escape-hatch path is allocation-for-allocation the pre-pool datapath.
POOL = PacketPool(enabled=not slow_path_default())


def set_pooling(enabled: bool) -> None:
    """Enable/disable packet recycling (the free-list is dropped on
    disable so stale objects cannot resurface later)."""
    POOL.enabled = enabled
    if not enabled:
        POOL.free.clear()


def release(packet: Packet) -> None:
    """Module-level convenience for :meth:`PacketPool.release`."""
    POOL.release(packet)


def split_train(packet: Packet, leading: int) -> Packet:
    """Split ``leading`` segments off the front of a train packet.

    ``packet`` is mutated into the leading prefix (same ``seq``/``uid``)
    and a pool-backed packet covering the remaining segments is
    returned, inheriting every wire field including the CE codepoint.
    Switch ports use this when a marking-threshold crossing falls
    *inside* a train: the unmarked prefix and the marked suffix travel
    on as two units, which is exactly the per-packet marking pattern a
    monotone enqueue-point marker would have produced.
    """
    n = packet.train
    if not 0 < leading < n:
        raise ValueError(
            f"cannot split {leading} segment(s) off a train of {n}")
    segment = packet.size // n
    tail = POOL.acquire(packet.kind, packet.flow_id, packet.src, packet.dst,
                        packet.seq + leading, segment * (n - leading),
                        packet.service, packet.ect)
    tail.train = n - leading
    tail.ce = packet.ce
    tail.sent_time = packet.sent_time
    tail.retransmit = packet.retransmit
    # The flow-final segment lives in the tail half; PSH follows it.
    tail.push = packet.push
    packet.push = False
    packet.train = leading
    packet.size = segment * leading
    return tail


def make_data(flow_id: int, src: int, dst: int, seq: int,
              size: int = MTU_BYTES, service: int = 0, ect: bool = True) -> Packet:
    """Convenience constructor for a data packet (pool-backed)."""
    return POOL.acquire(DATA, flow_id, src, dst, seq, size, service, ect)


def make_ack(data: Packet, ack_seq: int, ece: bool) -> Packet:
    """Build the ACK a receiver sends in response to ``data``.

    ACKs are not ECN-capable (``ect=False``), mirroring standard practice:
    marking ACKs would make the reverse path interfere with the forward
    congestion signal.
    """
    return make_reply_ack(data.flow_id, data.dst, data.src, data.seq,
                          data.service, data.sent_time, data.retransmit,
                          ack_seq, ece)


def make_reply_ack(flow_id: int, src: int, dst: int, seq: int, service: int,
                   echo_time: Optional[float], retransmit: bool,
                   ack_seq: int, ece: bool) -> Packet:
    """Build an ACK from the scalar fields of the data packet it answers.

    Same wire semantics as :func:`make_ack` but without needing the data
    packet object itself — receivers that already released the packet
    (delayed ACKs) keep only this metadata.
    """
    ack = POOL.acquire(ACK, flow_id, src, dst, seq, ACK_BYTES, service, False)
    ack.ack_seq = ack_seq
    ack.ece = ece
    ack.echo_time = echo_time
    # Karn's rule support: the sender must not take RTT samples from ACKs
    # of retransmitted segments.
    ack.retransmit = retransmit
    return ack
