"""Declarative topology layer.

Fabrics are described by a :class:`TopologySpec` — a frozen, hashable
value object that parses the CLI's ``--topology preset:key=val``
spelling, renders into :class:`~repro.store.ExperimentSpec` params (so
store-backed sweeps cache topology points correctly), and builds the
runtime :class:`Network`.  Presets:

- ``"single-bottleneck"`` — N senders, one switch, one receiver.  All
  motivation and static-flow experiments (Figs. 1–15) are incast
  patterns through one multi-queue bottleneck port.
- ``"leaf-spine"`` — the paper's large-scale fabric: by default 4 leaf
  × 4 spine, 12 hosts per leaf, non-blocking, per-flow ECMP
  (Figs. 16–27).
- ``"fat-tree"`` — a k-ary fat-tree (Al-Fares et al.).
- ``"clos"`` — the parametric family: any 2- or 3-tier folded Clos
  derived from a switch radix and an oversubscription ratio,
  e.g. ``clos:tiers=3,ports=16`` is a 1024-host fat-tree.

The multi-switch presets all compile down to :class:`ClosGenerator`,
which lays out hosts/switches/links with deterministic names and ECMP
salts and then *derives* every switch's next-hop table from the
generated down-graph (down ports route to the hosts below them,
everything else ECMPs across the up ports) instead of hand-wiring
routes per preset.  The legacy builder functions
(:func:`single_bottleneck`, :func:`leaf_spine`, :func:`fat_tree`) are
kept as thin ``DeprecationWarning`` presets over the spec and build
byte-identical fabrics (same names, same salts, same per-switch port
order — the quantities simulation results depend on).

All builders take *factories* for the scheduler and marker so each
congestion-managed port gets fresh instances; NIC ports and reverse-path
ports are plain FIFO with no marking.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import asdict, dataclass, fields
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple, Union)

from ..ecn.base import Marker, NullMarker
from ..scheduling.base import Scheduler
from ..scheduling.fifo import FifoScheduler
from ..sim.engine import Simulator
from .host import Host
from .link import Link
from .port import Port
from .sharedbuf import SharedBufferSpec, shared_buffer_enabled
from .switch import Switch

__all__ = [
    "Network",
    "ClosGenerator",
    "TopologySpec",
    "TOPOLOGY_PRESETS",
    "set_topology_default",
    "topology_enabled",
    "as_topology",
    "partition_groups",
    "single_bottleneck",
    "leaf_spine",
    "fat_tree",
]

SchedulerFactory = Callable[[], Scheduler]
MarkerFactory = Callable[[], Marker]

#: Default one-way propagation delay per hop (5 µs → ~20 µs base RTT
#: through one switch, a typical datacenter figure).
DEFAULT_LINK_DELAY = 5e-6
#: Default drop-tail capacity of congestion-managed ports, sized so ECN
#: (not loss) is the operative signal, like the deep-buffered ToR ports
#: the paper assumes.
DEFAULT_BUFFER_PACKETS = 1000
#: Default link rate (10 Gbps, the paper's fabric speed).
DEFAULT_LINK_RATE = 10e9

#: Recognized :class:`TopologySpec` preset names.
TOPOLOGY_PRESETS = ("single-bottleneck", "leaf-spine", "fat-tree", "clos")


class Network:
    """Container for a built topology.

    Ports of interest are published under *roles* (``"bottleneck"`` is
    the only role the built-in experiments use): builders call
    :meth:`register_observed` and consumers ask
    :meth:`observed_ports`, which works on any generated fabric — no
    assumption that exactly one congested port exists.  The historical
    ``network.bottleneck_port`` attribute is kept as a deprecated
    alias for the first ``"bottleneck"``-role port.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        #: The spec this network was built from (None for hand-built
        #: fabrics assembled directly from parts).
        self.spec: Optional["TopologySpec"] = None
        #: role name -> ports published under that role.
        self._observed: Dict[str, List[Port]] = {}
        #: host id -> the switch port whose link feeds that host.
        self._host_ports: Dict[int, Port] = {}

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    # -- observed-port roles --------------------------------------------------

    def register_observed(self, role: str, port: Port) -> None:
        """Publish ``port`` under ``role`` for reports and experiments."""
        self._observed.setdefault(role, []).append(port)

    def observed_ports(self, role: str = "bottleneck") -> List[Port]:
        """Ports published under ``role`` (empty list if none)."""
        return list(self._observed.get(role, ()))

    @property
    def bottleneck_port(self) -> Optional[Port]:
        """Deprecated: first ``"bottleneck"``-role port (or None).

        Use :meth:`observed_ports` — multi-switch fabrics can observe
        any number of congested ports, not exactly one.
        """
        warnings.warn(
            "Network.bottleneck_port is deprecated; use "
            "network.observed_ports('bottleneck')",
            DeprecationWarning, stacklevel=2)
        ports = self._observed.get("bottleneck")
        return ports[0] if ports else None

    @bottleneck_port.setter
    def bottleneck_port(self, port: Optional[Port]) -> None:
        warnings.warn(
            "Network.bottleneck_port is deprecated; use "
            "network.register_observed('bottleneck', port)",
            DeprecationWarning, stacklevel=2)
        if port is None:
            self._observed.pop("bottleneck", None)
        else:
            self._observed["bottleneck"] = [port]

    # -- structural accessors -------------------------------------------------

    def host_facing_port(self, host_id: int) -> Optional[Port]:
        """The switch port whose link delivers to ``host_id``.

        This is the port where downstream congestion toward that host
        shows up (the per-host "bottleneck" in converging traffic
        patterns); recorded by every builder.
        """
        return self._host_ports.get(host_id)

    def _record_host_port(self, host_id: int, port: Port) -> None:
        self._host_ports[host_id] = port

    def all_marked_ports(self) -> List[Port]:
        """Every port carrying a non-null marker (the congestion points)."""
        ports = []
        for switch in self.switches:
            for port in switch.ports:
                if not isinstance(port.marker, NullMarker):
                    ports.append(port)
        return ports


def _plain_port(sim: Simulator, link: Link, name: str,
                buffer_packets: Optional[int] = None, pool=None) -> Port:
    """A FIFO, non-marking port (host NICs and reverse paths).

    Unbounded by default: a host's transmit path backpressures the stack
    rather than dropping its own packets, and modelling that as an
    elastic queue avoids the unrealistic failure mode of a sender
    dropping its own retransmission at the local NIC.
    """
    return Port(sim, link, FifoScheduler(1), NullMarker(),
                buffer_packets=buffer_packets, name=name, pool=pool)


def _switch_buffer(switch: Switch, spec: Optional[SharedBufferSpec]):
    """Give ``switch`` its shared memory when a spec is in effect.

    Every switch gets its *own* :class:`~repro.net.sharedbuf.SharedBuffer`
    (buffer memory is per chip, not per fabric); with no spec the builder
    behaves exactly as before — ports keep private buffers and
    ``pool=None``, so disabled runs are byte-identical to the
    pre-shared-buffer datapath.
    """
    if spec is None:
        return None
    switch.shared_buffer = spec.build(name=f"{switch.name}:sharedbuf")
    return switch.shared_buffer


def _account(buf, name: str, link: Link):
    """Per-port ledger against the switch buffer (None when disabled)."""
    if buf is None:
        return None
    return buf.port_account(name, link)


def _build_single_bottleneck(
    sim: Simulator,
    n_senders: int,
    scheduler_factory: SchedulerFactory,
    marker_factory: MarkerFactory,
    link_rate: float = DEFAULT_LINK_RATE,
    link_delay: float = DEFAULT_LINK_DELAY,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    shared_buffer: Optional[SharedBufferSpec] = None,
) -> Network:
    """Build an incast fabric: ``n_senders`` hosts → switch → 1 receiver.

    Host ids ``0 .. n_senders-1`` are the senders; id ``n_senders`` is the
    receiver.  The switch port feeding the receiver — the only
    multi-queue, marking port in the fabric — is published under the
    ``"bottleneck"`` role.
    """
    if n_senders < 1:
        raise ValueError("single-bottleneck needs at least one sender")
    network = Network(sim)
    switch = Switch(sim, name="sw0")
    network.switches.append(switch)
    hosts = [Host(sim, i) for i in range(n_senders + 1)]
    network.hosts = hosts
    receiver = hosts[n_senders]
    buf = _switch_buffer(switch, shared_buffer_enabled(shared_buffer))

    # Bottleneck port: switch -> receiver.
    down_link = Link(sim, link_rate, link_delay, receiver, name="sw0->recv")
    bottleneck = Port(
        sim, down_link, scheduler_factory(), marker_factory(),
        buffer_packets=buffer_packets, name="sw0:bottleneck",
        pool=_account(buf, "sw0:bottleneck", down_link),
    )
    bottleneck_index = switch.add_port(bottleneck)
    switch.set_route(receiver.host_id, [bottleneck_index])
    network.register_observed("bottleneck", bottleneck)
    network._record_host_port(receiver.host_id, bottleneck)

    # Receiver NIC (carries only ACKs back into the fabric).
    recv_up = Link(sim, link_rate, link_delay, switch, name="recv->sw0")
    receiver.attach_nic(_plain_port(sim, recv_up, f"{receiver.name}:nic"))

    # Sender NICs and the switch's reverse ports toward them.
    for sender in hosts[:n_senders]:
        up_link = Link(sim, link_rate, link_delay, switch, name=f"{sender.name}->sw0")
        sender.attach_nic(_plain_port(sim, up_link, f"{sender.name}:nic"))
        back_link = Link(sim, link_rate, link_delay, sender, name=f"sw0->{sender.name}")
        back_name = f"sw0:to_{sender.name}"
        back_port = _plain_port(sim, back_link, back_name,
                                pool=_account(buf, back_name, back_link))
        back_index = switch.add_port(back_port)
        switch.set_route(sender.host_id, [back_index])
        network._record_host_port(sender.host_id, back_port)
    return network


class ClosGenerator:
    """Parametric folded-Clos generator (cf. closnet's ``ClosGenerator``).

    Resolves a *shape* from a switch radix + oversubscription ratio (or
    explicit per-tier counts) and emits the fabric as a built
    :class:`Network`:

    - ``tiers=2`` — leaf-spine: ``n_leaf = ports_per_switch`` leaves,
      ``n_spine = ports_per_switch / 2`` spines, and
      ``hosts_per_leaf = oversubscription × n_spine`` hosts under each
      leaf (so ``oversubscription=1`` is non-blocking and uses the full
      radix at the leaf).  Any of the three counts may be pinned
      explicitly instead.
    - ``tiers=3`` — generalized k-ary fat-tree with
      ``k = ports_per_switch`` pods: each pod has ``k/2`` edge and
      ``k/2`` aggregation switches, ``(k/2)²`` cores in ``k/2`` groups,
      and ``hosts_per_leaf = oversubscription × k/2`` hosts per edge
      switch (``oversubscription=1`` is the canonical ``k³/4``-host
      fat-tree).

    Naming is deterministic (``leaf{i}``/``spine{i}`` and
    ``edge{p}_{e}``/``agg{p}_{j}``/``core{j}_{m}``, with the historical
    per-tier ECMP salt bases), and routing is *derived* from the
    generated graph: each switch routes a destination out the down port
    whose subtree contains it, and ECMPs everything else across its up
    ports — which reproduces the hand-wired leaf-spine/fat-tree tables
    exactly on those shapes.
    """

    def __init__(
        self,
        ports_per_switch: int = 0,
        tiers: int = 2,
        oversubscription: float = 1.0,
        hosts_per_leaf: int = 0,
        link_rate: float = DEFAULT_LINK_RATE,
        link_delay: float = DEFAULT_LINK_DELAY,
        buffer_packets: int = DEFAULT_BUFFER_PACKETS,
        n_leaf: int = 0,
        n_spine: int = 0,
    ):
        if tiers not in (2, 3):
            raise ValueError(f"tiers must be 2 or 3, got {tiers!r}")
        if oversubscription <= 0:
            raise ValueError(
                f"oversubscription must be positive, got {oversubscription!r}")
        if ports_per_switch < 0 or hosts_per_leaf < 0 or n_leaf < 0 or n_spine < 0:
            raise ValueError("switch/host counts cannot be negative")
        self.ports_per_switch = ports_per_switch
        self.tiers = tiers
        self.oversubscription = oversubscription
        self.link_rate = link_rate
        self.link_delay = link_delay
        self.buffer_packets = buffer_packets

        if tiers == 2:
            if ports_per_switch:
                if ports_per_switch % 2:
                    raise ValueError(
                        f"2-tier Clos radix must be even, got {ports_per_switch}")
                n_spine = n_spine or ports_per_switch // 2
                n_leaf = n_leaf or ports_per_switch
            if not (n_leaf and n_spine):
                raise ValueError(
                    "2-tier Clos needs ports_per_switch or explicit "
                    "n_leaf/n_spine counts")
            hosts_per_leaf = hosts_per_leaf or _whole(
                oversubscription * n_spine, "hosts per leaf")
            if hosts_per_leaf < 1:
                raise ValueError(
                    f"each leaf needs at least one host, got {hosts_per_leaf}")
            self.n_leaf, self.n_spine = n_leaf, n_spine
            self.hosts_per_leaf = hosts_per_leaf
            self.k = 0
        else:
            k = ports_per_switch
            if n_leaf or n_spine:
                raise ValueError(
                    "3-tier Clos shape comes from ports_per_switch (the "
                    "fat-tree arity), not n_leaf/n_spine")
            if k < 2 or k % 2:
                raise ValueError(
                    f"fat-tree arity (ports_per_switch) must be an even "
                    f"integer >= 2, got {k!r}")
            half = k // 2
            hosts_per_leaf = hosts_per_leaf or _whole(
                oversubscription * half, "hosts per edge switch")
            if hosts_per_leaf < 1:
                raise ValueError(
                    f"each edge switch needs at least one host, "
                    f"got {hosts_per_leaf}")
            self.k = k
            self.hosts_per_leaf = hosts_per_leaf
            self.n_leaf = self.n_spine = 0

    # -- shape arithmetic -----------------------------------------------------

    @property
    def n_hosts(self) -> int:
        if self.tiers == 2:
            return self.n_leaf * self.hosts_per_leaf
        return self.k * (self.k // 2) * self.hosts_per_leaf

    @property
    def n_switches(self) -> int:
        if self.tiers == 2:
            return self.n_leaf + self.n_spine
        half = self.k // 2
        return self.k * half * 2 + half * half

    def describe(self) -> Dict[str, Any]:
        """Shape summary (for logs, benches and provenance)."""
        base: Dict[str, Any] = {
            "tiers": self.tiers,
            "n_hosts": self.n_hosts,
            "n_switches": self.n_switches,
            "oversubscription": self.oversubscription,
        }
        if self.tiers == 2:
            base.update(n_leaf=self.n_leaf, n_spine=self.n_spine,
                        hosts_per_leaf=self.hosts_per_leaf)
        else:
            base.update(k=self.k, hosts_per_edge=self.hosts_per_leaf)
        return base

    # -- fabric emission ------------------------------------------------------

    def build(
        self,
        sim: Simulator,
        scheduler_factory: SchedulerFactory,
        marker_factory: MarkerFactory,
        shared_buffer: Optional[SharedBufferSpec] = None,
    ) -> Network:
        """Emit the fabric as a built, fully routed :class:`Network`."""
        network = Network(sim)
        # Transient per-switch structure the route derivation reads:
        # down[s] = [(port index, child device)], up[s] = [port indices].
        down: Dict[int, List[Tuple[int, Any]]] = {}
        up: Dict[int, List[int]] = {}
        if self.tiers == 2:
            self._lay_out_leaf_spine(network, scheduler_factory,
                                     marker_factory, shared_buffer, down, up)
        else:
            self._lay_out_fat_tree(network, scheduler_factory,
                                   marker_factory, shared_buffer, down, up)
        self._derive_routes(network, down, up)
        return network

    def _managed_port_factory(self, network: Network, scheduler_factory,
                              marker_factory, shared_buffer):
        sim = network.sim
        sb_spec = shared_buffer_enabled(shared_buffer)
        bufs = {id(switch): _switch_buffer(switch, sb_spec)
                for switch in network.switches}

        def managed_port(switch: Switch, link: Link, name: str) -> Port:
            return Port(sim, link, scheduler_factory(), marker_factory(),
                        buffer_packets=self.buffer_packets, name=name,
                        pool=_account(bufs[id(switch)], name, link))

        return managed_port

    def _lay_out_leaf_spine(self, network, scheduler_factory, marker_factory,
                            shared_buffer, down, up) -> None:
        sim = network.sim
        rate, delay = self.link_rate, self.link_delay
        hosts = [Host(sim, i) for i in range(self.n_hosts)]
        network.hosts = hosts
        leaves = [Switch(sim, name=f"leaf{i}", ecmp_salt=1000 + i)
                  for i in range(self.n_leaf)]
        spines = [Switch(sim, name=f"spine{i}", ecmp_salt=2000 + i)
                  for i in range(self.n_spine)]
        network.switches = leaves + spines
        managed_port = self._managed_port_factory(
            network, scheduler_factory, marker_factory, shared_buffer)

        # Host <-> leaf links.
        for leaf_index, leaf in enumerate(leaves):
            for slot in range(self.hosts_per_leaf):
                host = hosts[leaf_index * self.hosts_per_leaf + slot]
                up_link = Link(sim, rate, delay, leaf,
                               name=f"{host.name}->{leaf.name}")
                host.attach_nic(_plain_port(sim, up_link, f"{host.name}:nic"))
                down_link = Link(sim, rate, delay, host,
                                 name=f"{leaf.name}->{host.name}")
                port = managed_port(leaf, down_link,
                                    f"{leaf.name}:to_{host.name}")
                index = leaf.add_port(port)
                down.setdefault(id(leaf), []).append((index, host))
                network._record_host_port(host.host_id, port)

        # Leaf <-> spine links (full bipartite).
        for leaf in leaves:
            for spine in spines:
                up_link = Link(sim, rate, delay, spine,
                               name=f"{leaf.name}->{spine.name}")
                up_index = leaf.add_port(
                    managed_port(leaf, up_link, f"{leaf.name}:to_{spine.name}"))
                up.setdefault(id(leaf), []).append(up_index)
                down_link = Link(sim, rate, delay, leaf,
                                 name=f"{spine.name}->{leaf.name}")
                down_index = spine.add_port(
                    managed_port(spine, down_link,
                                 f"{spine.name}:to_{leaf.name}"))
                down.setdefault(id(spine), []).append((down_index, leaf))

    def _lay_out_fat_tree(self, network, scheduler_factory, marker_factory,
                          shared_buffer, down, up) -> None:
        sim = network.sim
        rate, delay = self.link_rate, self.link_delay
        k, half, h = self.k, self.k // 2, self.hosts_per_leaf
        hosts_per_pod = half * h
        hosts = [Host(sim, i) for i in range(self.n_hosts)]
        network.hosts = hosts
        edges = [[Switch(sim, name=f"edge{p}_{e}", ecmp_salt=3000 + p * half + e)
                  for e in range(half)] for p in range(k)]
        aggs = [[Switch(sim, name=f"agg{p}_{j}", ecmp_salt=4000 + p * half + j)
                 for j in range(half)] for p in range(k)]
        cores = [[Switch(sim, name=f"core{j}_{m}", ecmp_salt=5000 + j * half + m)
                  for m in range(half)] for j in range(half)]
        network.switches = (
            [s for pod in edges for s in pod]
            + [s for pod in aggs for s in pod]
            + [s for group in cores for s in group]
        )
        managed_port = self._managed_port_factory(
            network, scheduler_factory, marker_factory, shared_buffer)

        # Host <-> edge links.
        for pod in range(k):
            for e in range(half):
                edge_switch = edges[pod][e]
                for slot in range(h):
                    host = hosts[pod * hosts_per_pod + e * h + slot]
                    up_link = Link(sim, rate, delay, edge_switch,
                                   name=f"{host.name}->{edge_switch.name}")
                    host.attach_nic(
                        _plain_port(sim, up_link, f"{host.name}:nic"))
                    down_link = Link(sim, rate, delay, host,
                                     name=f"{edge_switch.name}->{host.name}")
                    port = managed_port(edge_switch, down_link,
                                        f"{edge_switch.name}:to_{host.name}")
                    index = edge_switch.add_port(port)
                    down.setdefault(id(edge_switch), []).append((index, host))
                    network._record_host_port(host.host_id, port)

        # Edge <-> aggregation links (full bipartite within a pod).
        for pod in range(k):
            for e in range(half):
                for j in range(half):
                    edge_switch, agg_switch = edges[pod][e], aggs[pod][j]
                    up_link = Link(sim, rate, delay, agg_switch,
                                   name=f"{edge_switch.name}->{agg_switch.name}")
                    up_index = edge_switch.add_port(
                        managed_port(edge_switch, up_link,
                                     f"{edge_switch.name}:to_{agg_switch.name}"))
                    up.setdefault(id(edge_switch), []).append(up_index)
                    down_link = Link(sim, rate, delay, edge_switch,
                                     name=f"{agg_switch.name}->{edge_switch.name}")
                    down_index = agg_switch.add_port(
                        managed_port(agg_switch, down_link,
                                     f"{agg_switch.name}:to_{edge_switch.name}"))
                    down.setdefault(id(agg_switch), []).append(
                        (down_index, edge_switch))

        # Aggregation <-> core links: agg j of every pod connects to
        # core group j.
        for j in range(half):
            for m in range(half):
                core_switch = cores[j][m]
                for pod in range(k):
                    agg_switch = aggs[pod][j]
                    up_link = Link(sim, rate, delay, core_switch,
                                   name=f"{agg_switch.name}->{core_switch.name}")
                    up_index = agg_switch.add_port(
                        managed_port(agg_switch, up_link,
                                     f"{agg_switch.name}:to_{core_switch.name}"))
                    up.setdefault(id(agg_switch), []).append(up_index)
                    down_link = Link(sim, rate, delay, agg_switch,
                                     name=f"{core_switch.name}->{agg_switch.name}")
                    down_index = core_switch.add_port(
                        managed_port(core_switch, down_link,
                                     f"{core_switch.name}:to_{agg_switch.name}"))
                    down.setdefault(id(core_switch), []).append(
                        (down_index, agg_switch))

    @staticmethod
    def _derive_routes(network: Network, down, up) -> None:
        """Install next-hop tables derived from the generated down-graph.

        A destination below one of a switch's down ports routes out that
        port (recursing through the subtree); every other destination
        ECMPs across the switch's up ports.  Group tuples are shared
        across destinations, so a 1k-host fabric's ~300k route entries
        cost one validated tuple per (switch, direction).
        """
        memo: Dict[int, List[int]] = {}

        def downstream(device) -> List[int]:
            if isinstance(device, Host):
                return [device.host_id]
            cached = memo.get(id(device))
            if cached is None:
                cached = []
                for _index, child in down.get(id(device), ()):
                    cached.extend(downstream(child))
                memo[id(device)] = cached
            return cached

        n_hosts = len(network.hosts)
        for switch in network.switches:
            routes: Dict[int, Sequence[int]] = {}
            covered = bytearray(n_hosts)
            for index, child in down.get(id(switch), ()):
                direct = (index,)
                for host_id in downstream(child):
                    routes[host_id] = direct
                    covered[host_id] = 1
            up_group = tuple(up.get(id(switch), ()))
            if up_group:
                for host_id in range(n_hosts):
                    if not covered[host_id]:
                        routes[host_id] = up_group
            switch.install_routes(routes)


def _whole(value: float, what: str) -> int:
    """Round ``value`` to an int, rejecting non-integral shape math."""
    rounded = round(value)
    if abs(value - rounded) > 1e-9:
        raise ValueError(
            f"oversubscription gives a non-integral number of {what} "
            f"({value!r}); adjust the ratio or pin the count explicitly")
    return int(rounded)


# -- declarative spec ---------------------------------------------------------

#: Integer-valued TopologySpec fields (everything else but ``preset``
#: is a float).
_INT_FIELDS = frozenset({"tiers", "ports", "n_leaf", "n_spine",
                         "hosts_per_leaf", "k", "senders", "buffer_packets"})
_FLOAT_FIELDS = frozenset({"oversub", "link_rate", "link_delay"})
#: CLI spellings accepted for spec fields.
_FIELD_ALIASES = {
    "ports_per_switch": "ports",
    "oversubscription": "oversub",
    "leaf": "n_leaf",
    "spine": "n_spine",
    "hosts": "hosts_per_leaf",
}
#: Which shape fields each preset may pin (physics fields — link_rate,
#: link_delay, buffer_packets — are always allowed).
_PRESET_SHAPE_FIELDS = {
    "single-bottleneck": frozenset({"senders"}),
    "leaf-spine": frozenset({"n_leaf", "n_spine", "hosts_per_leaf"}),
    "fat-tree": frozenset({"k"}),
    "clos": frozenset({"tiers", "ports", "oversub", "n_leaf", "n_spine",
                       "hosts_per_leaf"}),
}


@dataclass(frozen=True)
class TopologySpec:
    """Declarative fabric description (the ``--topology`` flag's value).

    All shape fields default to 0 / 0.0 meaning "unset": the preset (or
    the caller's :class:`~repro.experiments.scale.ScaleProfile`) fills
    them at build time, so a default spec is *exactly* the historical
    fabric and hashes to the historical run-store key.
    """

    #: One of :data:`TOPOLOGY_PRESETS`.
    preset: str = "leaf-spine"
    #: Clos stage count (``clos`` preset; 2 = leaf-spine, 3 = fat-tree).
    tiers: int = 0
    #: Switch radix the shape is derived from (``clos`` preset).
    ports: int = 0
    #: Host-to-uplink bandwidth ratio at the leaf tier (``clos``).
    oversub: float = 0.0
    #: Explicit tier counts (``leaf-spine``/``clos``).
    n_leaf: int = 0
    n_spine: int = 0
    hosts_per_leaf: int = 0
    #: Fat-tree arity (``fat-tree`` preset).
    k: int = 0
    #: Sender count (``single-bottleneck`` preset).
    senders: int = 0
    #: Physics overrides (0 = preset/profile default).
    link_rate: float = 0.0
    link_delay: float = 0.0
    buffer_packets: int = 0

    def __post_init__(self):
        if self.preset not in TOPOLOGY_PRESETS:
            raise ValueError(f"unknown topology preset {self.preset!r}; "
                             f"choose from {TOPOLOGY_PRESETS}")
        allowed = _PRESET_SHAPE_FIELDS[self.preset]
        shape_fields = (_INT_FIELDS | _FLOAT_FIELDS) - {
            "link_rate", "link_delay", "buffer_packets"}
        for name in sorted(shape_fields):
            value = getattr(self, name)
            if value and name not in allowed:
                raise ValueError(
                    f"field {name!r} does not apply to preset "
                    f"{self.preset!r} (allowed: {sorted(allowed)})")
            if value < 0:
                raise ValueError(f"{name} cannot be negative, got {value!r}")
        if self.link_rate < 0 or self.link_delay < 0 or self.buffer_packets < 0:
            raise ValueError("physics overrides cannot be negative")
        if self.tiers and self.tiers not in (2, 3):
            raise ValueError(f"tiers must be 2 or 3, got {self.tiers!r}")
        if self.preset == "fat-tree" and self.k and (self.k < 2 or self.k % 2):
            raise ValueError(
                f"fat-tree arity k must be an even integer >= 2, got {self.k}")
        if self.preset == "clos":
            # Clos shapes resolve entirely from the spec (no profile
            # defaults), so bad radix/oversubscription math surfaces at
            # parse time, not at build time.
            self.generator()

    # -- canonical forms ------------------------------------------------------

    def to_param(self) -> Tuple[Tuple[str, Any], ...]:
        """Canonical nested-tuple form for ``ExperimentSpec`` params.

        Only set (non-default) fields are included, so two spellings of
        the same fabric hash identically and a default spec renders to
        just its preset name.
        """
        items = [("preset", self.preset)]
        for key, value in sorted(asdict(self).items()):
            if key != "preset" and value:
                items.append((key, value))
        return tuple(items)

    @classmethod
    def from_param(cls, pairs: Iterable[Sequence[Any]]) -> "TopologySpec":
        """Rebuild a spec from :meth:`to_param` output (tuples or the
        JSON lists a stored record round-trips them into)."""
        data = {str(key): value for key, value in pairs}
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TopologySpec fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "TopologySpec":
        """Parse the CLI spelling ``preset:key=value,key=value``.

        Examples: ``leaf-spine``, ``fat-tree:k=6``,
        ``clos:tiers=3,ports=16`` (a 1024-host fat-tree),
        ``clos:tiers=2,ports=16,oversub=2``.  Aliases:
        ``ports_per_switch``→``ports``, ``oversubscription``→``oversub``,
        ``leaf``/``spine``/``hosts`` for the explicit tier counts.
        """
        preset, _, body = text.partition(":")
        preset = preset.strip()
        kwargs: Dict[str, Any] = {}
        if body.strip():
            for item in body.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or not key:
                    raise ValueError(
                        f"bad topology option {item!r} in {text!r} "
                        f"(expected key=value)")
                key = _FIELD_ALIASES.get(key, key)
                if key not in _INT_FIELDS and key not in _FLOAT_FIELDS:
                    raise ValueError(
                        f"bad topology spec {text!r}: unknown field {key!r}")
                try:
                    if key in _INT_FIELDS:
                        kwargs[key] = int(value)
                    else:
                        kwargs[key] = float(value)
                except ValueError:
                    raise ValueError(
                        f"bad topology spec {text!r}: field {key!r} needs "
                        f"a number, got {value!r}") from None
        try:
            return cls(preset=preset, **kwargs)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad topology spec {text!r}: {exc}") from None

    # -- cache-key rendering --------------------------------------------------

    @property
    def is_default(self) -> bool:
        """True when this spec is exactly the historical default fabric."""
        return self.preset == "leaf-spine" and len(self.to_param()) == 1

    def cache_params(self) -> Dict[str, Any]:
        """Topology contribution to an :class:`ExperimentSpec`'s params.

        Default presets render to the *historical* param shapes
        (``{"topology": "leaf-spine"}``,
        ``{"topology": "fat-tree", "fat_tree_k": k}``, …), so every
        pre-redesign run-store key is untouched; only genuinely new
        fabrics add a ``topology_params`` entry.
        """
        extras = dict(self.to_param())
        extras.pop("preset", None)
        if not extras:
            return {"topology": self.preset}
        if self.preset == "fat-tree" and set(extras) == {"k"}:
            return {"topology": "fat-tree", "fat_tree_k": self.k}
        return {"topology": self.preset, "topology_params": self.to_param()}

    # -- build-time resolution ------------------------------------------------

    @property
    def base_rtt_hops(self) -> int:
        """One-way switch-port hops on the longest host-to-host path
        (what the schemes' RTT-derived thresholds scale with)."""
        if self.preset == "single-bottleneck":
            return 2
        if self.preset == "fat-tree" or (self.preset == "clos" and
                                         self.tiers == 3):
            return 6
        return 4

    def generator(
        self,
        default_fabric: Optional[Tuple[int, int, int]] = None,
        link_rate: float = DEFAULT_LINK_RATE,
        link_delay: float = DEFAULT_LINK_DELAY,
        buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    ) -> ClosGenerator:
        """The :class:`ClosGenerator` this spec resolves to.

        ``default_fabric`` is a ``(n_leaf, n_spine, hosts_per_leaf)``
        triple (a :class:`ScaleProfile`'s fabric) filling unset
        leaf-spine counts; physics arguments fill unset overrides.
        """
        if self.preset == "single-bottleneck":
            raise ValueError(
                "single-bottleneck is not a Clos; use spec.build()")
        rate = self.link_rate or link_rate
        delay = self.link_delay or link_delay
        buffers = self.buffer_packets or buffer_packets
        if self.preset == "fat-tree":
            return ClosGenerator(ports_per_switch=self.k or 4, tiers=3,
                                 link_rate=rate, link_delay=delay,
                                 buffer_packets=buffers)
        if self.preset == "leaf-spine":
            fabric = default_fabric or (4, 4, 12)
            return ClosGenerator(
                tiers=2,
                n_leaf=self.n_leaf or fabric[0],
                n_spine=self.n_spine or fabric[1],
                hosts_per_leaf=self.hosts_per_leaf or fabric[2],
                link_rate=rate, link_delay=delay, buffer_packets=buffers)
        return ClosGenerator(
            ports_per_switch=self.ports,
            tiers=self.tiers or 2,
            oversubscription=self.oversub or 1.0,
            hosts_per_leaf=self.hosts_per_leaf,
            n_leaf=self.n_leaf, n_spine=self.n_spine,
            link_rate=rate, link_delay=delay, buffer_packets=buffers)

    def n_hosts(self,
                default_fabric: Optional[Tuple[int, int, int]] = None,
                default_senders: int = 0) -> int:
        """Host count of the built fabric (without building it)."""
        if self.preset == "single-bottleneck":
            return (self.senders or default_senders) + 1
        return self.generator(default_fabric=default_fabric).n_hosts

    def build(
        self,
        sim: Simulator,
        scheduler_factory: SchedulerFactory,
        marker_factory: MarkerFactory,
        shared_buffer: Optional[SharedBufferSpec] = None,
        default_fabric: Optional[Tuple[int, int, int]] = None,
        default_senders: int = 0,
        link_rate: float = DEFAULT_LINK_RATE,
        link_delay: float = DEFAULT_LINK_DELAY,
        buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    ) -> Network:
        """Build the fabric this spec describes.

        ``default_fabric``/``default_senders`` and the physics arguments
        fill any unset fields (they are the *caller's* defaults — a
        profile's fabric triple, an incast runner's sender count and
        link rate); explicit spec fields always win.
        """
        if self.preset == "single-bottleneck":
            n_senders = self.senders or default_senders
            if n_senders < 1:
                raise ValueError(
                    "single-bottleneck needs a sender count (spec field "
                    "'senders' or the runner's flow layout)")
            network = _build_single_bottleneck(
                sim, n_senders, scheduler_factory, marker_factory,
                link_rate=self.link_rate or link_rate,
                link_delay=self.link_delay or link_delay,
                buffer_packets=self.buffer_packets or buffer_packets,
                shared_buffer=shared_buffer)
        else:
            generator = self.generator(
                default_fabric=default_fabric, link_rate=link_rate,
                link_delay=link_delay, buffer_packets=buffer_packets)
            network = generator.build(sim, scheduler_factory, marker_factory,
                                      shared_buffer=shared_buffer)
        network.spec = self
        return network


def as_topology(value: Union[str, TopologySpec, None]) -> Optional[TopologySpec]:
    """Normalize a runner's ``topology`` argument to a spec (or None).

    Accepts a built spec, a preset name / ``preset:key=val`` string
    (the legacy ``topology="fat-tree"`` string arguments), or None.
    """
    if value is None or isinstance(value, TopologySpec):
        return value
    return TopologySpec.parse(value)


# -- process-wide default (the CLI's --topology flag) -------------------------

_TOPOLOGY_DEFAULT: Optional[TopologySpec] = None


def set_topology_default(spec: Optional[TopologySpec]) -> None:
    """Set the process-wide topology default.

    Runners whose ``topology`` argument is None build their fabric from
    this spec — the same pattern as
    :func:`~repro.net.sharedbuf.set_shared_buffer_default`.
    """
    global _TOPOLOGY_DEFAULT
    _TOPOLOGY_DEFAULT = spec


def topology_enabled(
    spec: Union[str, TopologySpec, None] = None,
) -> Optional[TopologySpec]:
    """Resolve a runner's ``topology`` argument against the default."""
    if spec is None:
        return _TOPOLOGY_DEFAULT
    return as_topology(spec)


# -- deprecated imperative builders ------------------------------------------

def _builder_deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; build fabrics from a TopologySpec "
        f"(e.g. {replacement})", DeprecationWarning, stacklevel=3)


def single_bottleneck(
    sim: Simulator,
    n_senders: int,
    scheduler_factory: SchedulerFactory,
    marker_factory: MarkerFactory,
    link_rate: float = DEFAULT_LINK_RATE,
    link_delay: float = DEFAULT_LINK_DELAY,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    shared_buffer: Optional[SharedBufferSpec] = None,
) -> Network:
    """Deprecated alias: ``TopologySpec("single-bottleneck").build(...)``."""
    _builder_deprecated(
        "single_bottleneck", "TopologySpec('single-bottleneck').build(sim, ...)")
    return TopologySpec(preset="single-bottleneck").build(
        sim, scheduler_factory, marker_factory, shared_buffer=shared_buffer,
        default_senders=n_senders, link_rate=link_rate,
        link_delay=link_delay, buffer_packets=buffer_packets)


def leaf_spine(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    marker_factory: MarkerFactory,
    n_leaf: int = 4,
    n_spine: int = 4,
    hosts_per_leaf: int = 12,
    link_rate: float = DEFAULT_LINK_RATE,
    link_delay: float = DEFAULT_LINK_DELAY,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    shared_buffer: Optional[SharedBufferSpec] = None,
) -> Network:
    """Deprecated alias: ``TopologySpec("leaf-spine").build(...)``."""
    _builder_deprecated("leaf_spine", "TopologySpec('leaf-spine').build(sim, ...)")
    return TopologySpec(preset="leaf-spine").build(
        sim, scheduler_factory, marker_factory, shared_buffer=shared_buffer,
        default_fabric=(n_leaf, n_spine, hosts_per_leaf),
        link_rate=link_rate, link_delay=link_delay,
        buffer_packets=buffer_packets)


def fat_tree(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    marker_factory: MarkerFactory,
    k: int = 4,
    link_rate: float = 10e9,
    link_delay: float = DEFAULT_LINK_DELAY,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    shared_buffer: Optional[SharedBufferSpec] = None,
) -> Network:
    """Deprecated alias: ``TopologySpec("fat-tree", k=k).build(...)``."""
    _builder_deprecated("fat_tree", "TopologySpec('fat-tree', k=4).build(sim, ...)")
    if k < 2 or k % 2 != 0:
        raise ValueError("fat-tree arity k must be an even integer >= 2")
    return TopologySpec(preset="fat-tree", k=k).build(
        sim, scheduler_factory, marker_factory, shared_buffer=shared_buffer,
        link_rate=link_rate, link_delay=link_delay,
        buffer_packets=buffer_packets)


# -- shard partitioning -------------------------------------------------------

_POD_EDGE_NAME = re.compile(r"^edge(\d+)_\d+$")


def partition_groups(network: Network) -> List[List[Switch]]:
    """Host-facing switches grouped along natural shard-cut boundaries.

    The unit of fabric partitioning (:mod:`repro.sim.shard`) is the set
    of hosts behind one leaf — every host's only attachment point is its
    leaf's downlink, so cutting above the leaves never severs a host
    from its own shard.  On a 3-tier Clos the :class:`ClosGenerator`
    names edge switches ``edge{pod}_{i}``; edges of one pod are grouped
    together so the cut falls on the agg↔core links (the pod boundary)
    rather than inside a pod.  Any other host-facing switch (2-tier
    leaves, hand-wired fabrics) is its own group.

    Groups are returned in ``network.switches`` order, which is the
    generator's construction order — every process that builds the same
    fabric computes the identical grouping.
    """
    order = {id(switch): index
             for index, switch in enumerate(network.switches)}
    facing: List[Switch] = []
    seen: set = set()
    for host in network.hosts:
        nic = host.nic
        leaf = None if nic is None or nic.link is None else nic.link.dst
        if leaf is None or id(leaf) not in order:
            raise ValueError(
                f"{host.name} has no switch-facing uplink; only fully "
                "wired fabrics can be partitioned")
        if id(leaf) not in seen:
            seen.add(id(leaf))
            facing.append(leaf)
    facing.sort(key=lambda switch: order[id(switch)])
    grouped: Dict[str, List[Switch]] = {}
    keys: List[str] = []
    for switch in facing:
        match = _POD_EDGE_NAME.match(switch.name)
        key = f"pod{match.group(1)}" if match else switch.name
        if key not in grouped:
            grouped[key] = []
            keys.append(key)
        grouped[key].append(switch)
    return [grouped[key] for key in keys]
