"""Topology builders.

Two fabrics cover every experiment in the paper:

- :func:`single_bottleneck` — N senders, one switch, one receiver.  All
  motivation and static-flow experiments (Figs. 1–15) are incast patterns
  through one multi-queue bottleneck port.
- :func:`leaf_spine` — the paper's large-scale fabric: 4 leaf × 4 spine,
  12 hosts per leaf, non-blocking, per-flow ECMP (Figs. 16–27).

Both builders take *factories* for the scheduler and marker so each
congestion-managed port gets fresh instances; NIC ports and reverse-path
ports are plain FIFO with no marking.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..ecn.base import Marker, NullMarker
from ..scheduling.base import Scheduler
from ..scheduling.fifo import FifoScheduler
from ..sim.engine import Simulator
from .host import Host
from .link import Link
from .port import Port
from .sharedbuf import SharedBufferSpec, shared_buffer_enabled
from .switch import Switch

__all__ = ["Network", "single_bottleneck", "leaf_spine", "fat_tree"]

SchedulerFactory = Callable[[], Scheduler]
MarkerFactory = Callable[[], Marker]

#: Default one-way propagation delay per hop (5 µs → ~20 µs base RTT
#: through one switch, a typical datacenter figure).
DEFAULT_LINK_DELAY = 5e-6
#: Default drop-tail capacity of congestion-managed ports, sized so ECN
#: (not loss) is the operative signal, like the deep-buffered ToR ports
#: the paper assumes.
DEFAULT_BUFFER_PACKETS = 1000


class Network:
    """Container for a built topology."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        #: The congested port experiments observe (single-bottleneck only).
        self.bottleneck_port: Optional[Port] = None

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def all_marked_ports(self) -> List[Port]:
        """Every port carrying a non-null marker (the congestion points)."""
        ports = []
        for switch in self.switches:
            for port in switch.ports:
                if not isinstance(port.marker, NullMarker):
                    ports.append(port)
        return ports


def _plain_port(sim: Simulator, link: Link, name: str,
                buffer_packets: Optional[int] = None, pool=None) -> Port:
    """A FIFO, non-marking port (host NICs and reverse paths).

    Unbounded by default: a host's transmit path backpressures the stack
    rather than dropping its own packets, and modelling that as an
    elastic queue avoids the unrealistic failure mode of a sender
    dropping its own retransmission at the local NIC.
    """
    return Port(sim, link, FifoScheduler(1), NullMarker(),
                buffer_packets=buffer_packets, name=name, pool=pool)


def _switch_buffer(switch: Switch, spec: Optional[SharedBufferSpec]):
    """Give ``switch`` its shared memory when a spec is in effect.

    Every switch gets its *own* :class:`~repro.net.sharedbuf.SharedBuffer`
    (buffer memory is per chip, not per fabric); with no spec the builder
    behaves exactly as before — ports keep private buffers and
    ``pool=None``, so disabled runs are byte-identical to the
    pre-shared-buffer datapath.
    """
    if spec is None:
        return None
    switch.shared_buffer = spec.build(name=f"{switch.name}:sharedbuf")
    return switch.shared_buffer


def _account(buf, name: str, link: Link):
    """Per-port ledger against the switch buffer (None when disabled)."""
    if buf is None:
        return None
    return buf.port_account(name, link)


def single_bottleneck(
    sim: Simulator,
    n_senders: int,
    scheduler_factory: SchedulerFactory,
    marker_factory: MarkerFactory,
    link_rate: float = 10e9,
    link_delay: float = DEFAULT_LINK_DELAY,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    shared_buffer: Optional[SharedBufferSpec] = None,
) -> Network:
    """Build an incast fabric: ``n_senders`` hosts → switch → 1 receiver.

    Host ids ``0 .. n_senders-1`` are the senders; id ``n_senders`` is the
    receiver.  ``network.bottleneck_port`` is the switch port feeding the
    receiver — the only multi-queue, marking port in the fabric.

    ``shared_buffer`` (resolving against the process default, like the
    runners' ``audit`` flag) gives the switch one shared memory all its
    ports draw from; host NICs stay private — they model host transmit
    queues, not switch buffer.
    """
    network = Network(sim)
    switch = Switch(sim, name="sw0")
    network.switches.append(switch)
    hosts = [Host(sim, i) for i in range(n_senders + 1)]
    network.hosts = hosts
    receiver = hosts[n_senders]
    buf = _switch_buffer(switch, shared_buffer_enabled(shared_buffer))

    # Bottleneck port: switch -> receiver.
    down_link = Link(sim, link_rate, link_delay, receiver, name="sw0->recv")
    bottleneck = Port(
        sim, down_link, scheduler_factory(), marker_factory(),
        buffer_packets=buffer_packets, name="sw0:bottleneck",
        pool=_account(buf, "sw0:bottleneck", down_link),
    )
    bottleneck_index = switch.add_port(bottleneck)
    switch.set_route(receiver.host_id, [bottleneck_index])
    network.bottleneck_port = bottleneck

    # Receiver NIC (carries only ACKs back into the fabric).
    recv_up = Link(sim, link_rate, link_delay, switch, name="recv->sw0")
    receiver.attach_nic(_plain_port(sim, recv_up, f"{receiver.name}:nic"))

    # Sender NICs and the switch's reverse ports toward them.
    for sender in hosts[:n_senders]:
        up_link = Link(sim, link_rate, link_delay, switch, name=f"{sender.name}->sw0")
        sender.attach_nic(_plain_port(sim, up_link, f"{sender.name}:nic"))
        back_link = Link(sim, link_rate, link_delay, sender, name=f"sw0->{sender.name}")
        back_name = f"sw0:to_{sender.name}"
        back_index = switch.add_port(
            _plain_port(sim, back_link, back_name,
                        pool=_account(buf, back_name, back_link))
        )
        switch.set_route(sender.host_id, [back_index])
    return network


def leaf_spine(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    marker_factory: MarkerFactory,
    n_leaf: int = 4,
    n_spine: int = 4,
    hosts_per_leaf: int = 12,
    link_rate: float = 10e9,
    link_delay: float = DEFAULT_LINK_DELAY,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    shared_buffer: Optional[SharedBufferSpec] = None,
) -> Network:
    """Build the paper's leaf-spine fabric.

    Defaults give the 48-host, 4×4 non-blocking network of §VI-B.  Every
    switch output port (leaf downlinks, leaf uplinks, spine downlinks) is
    congestion-managed: it gets a fresh scheduler and marker from the
    factories.  Leaf→spine forwarding uses per-flow ECMP across all
    spines.  With a ``shared_buffer`` spec in effect every switch chip
    gets its own shared memory spanning all of that switch's ports.
    """
    network = Network(sim)
    n_hosts = n_leaf * hosts_per_leaf
    hosts = [Host(sim, i) for i in range(n_hosts)]
    network.hosts = hosts
    leaves = [Switch(sim, name=f"leaf{i}", ecmp_salt=1000 + i) for i in range(n_leaf)]
    spines = [Switch(sim, name=f"spine{i}", ecmp_salt=2000 + i) for i in range(n_spine)]
    network.switches = leaves + spines
    sb_spec = shared_buffer_enabled(shared_buffer)
    bufs = {switch: _switch_buffer(switch, sb_spec)
            for switch in network.switches}

    def managed_port(switch: Switch, link: Link, name: str) -> Port:
        return Port(sim, link, scheduler_factory(), marker_factory(),
                    buffer_packets=buffer_packets, name=name,
                    pool=_account(bufs[switch], name, link))

    # Host <-> leaf links.
    for leaf_index, leaf in enumerate(leaves):
        for slot in range(hosts_per_leaf):
            host = hosts[leaf_index * hosts_per_leaf + slot]
            up = Link(sim, link_rate, link_delay, leaf, name=f"{host.name}->{leaf.name}")
            host.attach_nic(_plain_port(sim, up, f"{host.name}:nic"))
            down = Link(sim, link_rate, link_delay, host, name=f"{leaf.name}->{host.name}")
            port_index = leaf.add_port(
                managed_port(leaf, down, f"{leaf.name}:to_{host.name}"))
            leaf.set_route(host.host_id, [port_index])

    # Leaf <-> spine links (full bipartite).
    uplink_indices: List[List[int]] = [[] for _ in range(n_leaf)]
    for leaf_index, leaf in enumerate(leaves):
        for spine_index, spine in enumerate(spines):
            up = Link(sim, link_rate, link_delay, spine, name=f"{leaf.name}->{spine.name}")
            up_index = leaf.add_port(
                managed_port(leaf, up, f"{leaf.name}:to_{spine.name}"))
            uplink_indices[leaf_index].append(up_index)
            down = Link(sim, link_rate, link_delay, leaf, name=f"{spine.name}->{leaf.name}")
            down_index = spine.add_port(
                managed_port(spine, down, f"{spine.name}:to_{leaf.name}"))
            for slot in range(hosts_per_leaf):
                host_id = leaf_index * hosts_per_leaf + slot
                spine.set_route(host_id, [down_index])

    # Leaf routes to remote hosts: ECMP across all uplinks.
    for leaf_index, leaf in enumerate(leaves):
        for host in hosts:
            if host.host_id // hosts_per_leaf != leaf_index:
                leaf.set_route(host.host_id, uplink_indices[leaf_index])
    return network


def fat_tree(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    marker_factory: MarkerFactory,
    k: int = 4,
    link_rate: float = 10e9,
    link_delay: float = DEFAULT_LINK_DELAY,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    shared_buffer: Optional[SharedBufferSpec] = None,
) -> Network:
    """Build a k-ary fat-tree (Al-Fares et al.).

    ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation switches;
    ``(k/2)²`` core switches in ``k/2`` groups; ``k³/4`` hosts.  Routing
    is the standard two-level ECMP: edge switches spread remote traffic
    over their aggregation uplinks, aggregation switches over their core
    group; downstream paths are deterministic.  Every switch output port
    is congestion-managed via the factories, like :func:`leaf_spine`.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("fat-tree arity k must be an even integer >= 2")
    half = k // 2
    hosts_per_pod = half * half
    n_hosts = k * hosts_per_pod

    network = Network(sim)
    hosts = [Host(sim, i) for i in range(n_hosts)]
    network.hosts = hosts
    edges = [[Switch(sim, name=f"edge{p}_{e}", ecmp_salt=3000 + p * half + e)
              for e in range(half)] for p in range(k)]
    aggs = [[Switch(sim, name=f"agg{p}_{j}", ecmp_salt=4000 + p * half + j)
             for j in range(half)] for p in range(k)]
    cores = [[Switch(sim, name=f"core{j}_{m}", ecmp_salt=5000 + j * half + m)
              for m in range(half)] for j in range(half)]
    network.switches = (
        [s for pod in edges for s in pod]
        + [s for pod in aggs for s in pod]
        + [s for group in cores for s in group]
    )
    sb_spec = shared_buffer_enabled(shared_buffer)
    bufs = {switch: _switch_buffer(switch, sb_spec)
            for switch in network.switches}

    def managed_port(switch: Switch, link: Link, name: str) -> Port:
        return Port(sim, link, scheduler_factory(), marker_factory(),
                    buffer_packets=buffer_packets, name=name,
                    pool=_account(bufs[switch], name, link))

    def host_of(pod: int, edge: int, slot: int) -> Host:
        return hosts[pod * hosts_per_pod + edge * half + slot]

    def pod_of(host_id: int) -> int:
        return host_id // hosts_per_pod

    def edge_of(host_id: int) -> int:
        return (host_id % hosts_per_pod) // half

    # Host <-> edge links.
    for pod in range(k):
        for e in range(half):
            edge_switch = edges[pod][e]
            for slot in range(half):
                host = host_of(pod, e, slot)
                up = Link(sim, link_rate, link_delay, edge_switch,
                          name=f"{host.name}->{edge_switch.name}")
                host.attach_nic(_plain_port(sim, up, f"{host.name}:nic"))
                down = Link(sim, link_rate, link_delay, host,
                            name=f"{edge_switch.name}->{host.name}")
                index = edge_switch.add_port(
                    managed_port(edge_switch, down,
                                 f"{edge_switch.name}:to_{host.name}"))
                edge_switch.set_route(host.host_id, [index])

    # Edge <-> aggregation links (full bipartite within a pod).
    edge_uplinks = [[[] for _e in range(half)] for _p in range(k)]
    agg_down_to_edge = [[{} for _j in range(half)] for _p in range(k)]
    for pod in range(k):
        for e in range(half):
            for j in range(half):
                edge_switch, agg_switch = edges[pod][e], aggs[pod][j]
                up = Link(sim, link_rate, link_delay, agg_switch,
                          name=f"{edge_switch.name}->{agg_switch.name}")
                up_index = edge_switch.add_port(
                    managed_port(edge_switch, up,
                                 f"{edge_switch.name}:to_{agg_switch.name}"))
                edge_uplinks[pod][e].append(up_index)
                down = Link(sim, link_rate, link_delay, edge_switch,
                            name=f"{agg_switch.name}->{edge_switch.name}")
                down_index = agg_switch.add_port(
                    managed_port(agg_switch, down,
                                 f"{agg_switch.name}:to_{edge_switch.name}"))
                agg_down_to_edge[pod][j][e] = down_index

    # Aggregation <-> core links: agg j of every pod connects to core
    # group j.
    agg_uplinks = [[[] for _j in range(half)] for _p in range(k)]
    core_down_to_pod = [[{} for _m in range(half)] for _j in range(half)]
    for j in range(half):
        for m in range(half):
            core_switch = cores[j][m]
            for pod in range(k):
                agg_switch = aggs[pod][j]
                up = Link(sim, link_rate, link_delay, core_switch,
                          name=f"{agg_switch.name}->{core_switch.name}")
                up_index = agg_switch.add_port(
                    managed_port(agg_switch, up,
                                 f"{agg_switch.name}:to_{core_switch.name}"))
                agg_uplinks[pod][j].append(up_index)
                down = Link(sim, link_rate, link_delay, agg_switch,
                            name=f"{core_switch.name}->{agg_switch.name}")
                down_index = core_switch.add_port(
                    managed_port(core_switch, down,
                                 f"{core_switch.name}:to_{agg_switch.name}"))
                core_down_to_pod[j][m][pod] = down_index

    # Routes.
    for host in hosts:
        dst, pod, e = host.host_id, pod_of(host.host_id), edge_of(host.host_id)
        # Edge switches: local port already routed; remote -> agg ECMP.
        for p in range(k):
            for e2 in range(half):
                if not (p == pod and e2 == e):
                    edges[p][e2].set_route(dst, edge_uplinks[p][e2])
        # Aggregation switches.
        for p in range(k):
            for j in range(half):
                if p == pod:
                    aggs[p][j].set_route(dst, [agg_down_to_edge[p][j][e]])
                else:
                    aggs[p][j].set_route(dst, agg_uplinks[p][j])
        # Core switches.
        for j in range(half):
            for m in range(half):
                cores[j][m].set_route(dst, [core_down_to_pod[j][m][pod]])
    return network
