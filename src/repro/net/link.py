"""Unidirectional links.

A :class:`Link` models only the wire: a fixed bandwidth used by the
attached output port to compute serialization time, and a propagation
delay applied between the end of serialization and delivery at the remote
device.  Queueing, scheduling and marking all live in
:class:`repro.net.port.Port`; keeping the link dumb means every
full-duplex cable is just two independent ``Link`` objects.

The wire is also where faults live: a downed link (:meth:`Link.set_down`)
discards everything including packets already propagating, and an
installed loss model (``link.fault``, see :mod:`repro.sim.faults`)
classifies each delivered packet as delivered, lost on the wire, or
corrupted (discarded by the receiver after propagation).  Every drop is
charged to exactly one reason counter and reported to the fabric
auditor, so conservation invariants hold under loss.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Simulator
from ..sim.faults import DROP_CRC as _VERDICT_CRC
from ..sim.faults import DROP_WIRE as _VERDICT_WIRE
from .interfaces import Device
from .packet import Packet, release

__all__ = ["Link", "DROP_DOWN", "DROP_WIRE", "DROP_CRC", "DROP_FLIGHT"]

#: Drop reasons (the auditor's per-link ledger keys).
DROP_DOWN = "down"      # handed to a link that was already down
DROP_WIRE = "wire"      # lost by an installed loss model
DROP_CRC = "crc"        # corrupted on the wire, discarded on arrival
DROP_FLIGHT = "flight"  # in flight when the link went down


class Link:
    """A unidirectional wire from an output port to a device."""

    __slots__ = ("sim", "bandwidth", "delay", "_dst", "name",
                 "packets_delivered", "bytes_delivered", "up",
                 "packets_lost", "_dst_receive", "_sim_at",
                 "fault", "_epoch", "lost_down", "lost_wire",
                 "lost_crc", "lost_flight")

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        delay: float,
        dst: Optional[Device] = None,
        name: str = "link",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive (bits/second)")
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        #: Bits per second.
        self.bandwidth = bandwidth
        #: One-way propagation delay in seconds.
        self.delay = delay
        self._dst = dst
        self._dst_receive = None if dst is None else dst.receive
        # Delivery completions are the highest-volume timer class and are
        # never cancelled individually, so they ride the engine's
        # fire-and-forget lane (no Event object per packet).
        self._sim_at = sim.at_ff
        self.name = name
        self.packets_delivered = 0
        self.bytes_delivered = 0
        #: Failure injection: a downed link silently discards everything
        #: handed to it (a cable pull, not a graceful drain).
        self.up = True
        self.packets_lost = 0
        #: Optional loss model (:mod:`repro.sim.faults`) consulted per
        #: delivered packet.
        self.fault = None
        # Mirrors the Port.reset epoch guard: set_down() bumps the
        # epoch, and a propagation completion carrying a stale epoch is
        # a packet that was on the wire when the cable was pulled — it
        # must never reach the destination.
        self._epoch = 0
        self.lost_down = 0
        self.lost_wire = 0
        self.lost_crc = 0
        self.lost_flight = 0

    @property
    def dst(self) -> Optional[Device]:
        """The device at the far end of the wire."""
        return self._dst

    @dst.setter
    def dst(self, device: Optional[Device]) -> None:
        self._dst = device
        self._dst_receive = None if device is None else device.receive

    @property
    def loss_breakdown(self) -> Dict[str, int]:
        """Drops by reason; the values sum to :attr:`packets_lost`."""
        return {DROP_DOWN: self.lost_down, DROP_WIRE: self.lost_wire,
                DROP_CRC: self.lost_crc, DROP_FLIGHT: self.lost_flight}

    def tx_time(self, size_bytes: int) -> float:
        """Serialization time of ``size_bytes`` on this link."""
        return size_bytes * 8.0 / self.bandwidth

    def _note_drop(self, packet: Packet, reason: str) -> None:
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.on_link_drop(self, packet, reason)

    def deliver(self, packet: Packet) -> None:
        """Start propagation: the remote device receives the packet after
        ``delay`` seconds.  Must be called when serialization completes."""
        receive = self._dst_receive
        if receive is None:
            raise RuntimeError(f"{self.name}: deliver() on an unattached link")
        if not self.up:
            self.packets_lost += 1
            self.lost_down += 1
            self._note_drop(packet, DROP_DOWN)
            # The wire is this packet's terminal consumer.
            release(packet)
            return
        fault = self.fault
        if fault is not None:
            verdict = fault.classify()
            if verdict == _VERDICT_WIRE:
                self.packets_lost += 1
                self.lost_wire += 1
                self._note_drop(packet, DROP_WIRE)
                release(packet)
                return
            if verdict == _VERDICT_CRC:
                # Charged as lost now (the link never "delivered" it),
                # but the object propagates and is discarded by the
                # receiving port's CRC check on arrival.
                self.packets_lost += 1
                self.lost_crc += 1
                self._note_drop(packet, DROP_CRC)
                self._sim_at(self.sim._now + self.delay,
                             self._arrive_corrupt, packet)
                return
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        sim = self.sim
        self._sim_at(sim._now + self.delay, self._arrive, packet, self._epoch)

    def _arrive(self, packet: Packet, epoch: int) -> None:
        """Propagation completed.  A stale epoch means the link went
        down while this packet was on the wire: roll back the delivery
        accounting (keeping ``delivered + lost`` consistent with the
        sender port's ``tx_packets``) and discard it."""
        if epoch != self._epoch:
            self.packets_delivered -= 1
            self.bytes_delivered -= packet.size
            self.packets_lost += 1
            self.lost_flight += 1
            self._note_drop(packet, DROP_FLIGHT)
            release(packet)
            return
        self._dst_receive(packet)

    def _arrive_corrupt(self, packet: Packet) -> None:
        """A corrupted packet reached the far end; the receiving port
        drops it on the CRC check.  Already counted lost at deliver
        time — this is only the object's terminal consumer."""
        release(packet)

    def set_down(self) -> None:
        """Fail the link: subsequent packets are lost, and packets
        already in flight never arrive (their delivery completions carry
        the previous epoch and are discarded)."""
        self.up = False
        self._epoch += 1

    def set_up(self) -> None:
        """Restore a failed link."""
        self.up = True
