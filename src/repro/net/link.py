"""Unidirectional links.

A :class:`Link` models only the wire: a fixed bandwidth used by the
attached output port to compute serialization time, and a propagation
delay applied between the end of serialization and delivery at the remote
device.  Queueing, scheduling and marking all live in
:class:`repro.net.port.Port`; keeping the link dumb means every
full-duplex cable is just two independent ``Link`` objects.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from .interfaces import Device
from .packet import Packet, release

__all__ = ["Link"]


class Link:
    """A unidirectional wire from an output port to a device."""

    __slots__ = ("sim", "bandwidth", "delay", "_dst", "name",
                 "packets_delivered", "bytes_delivered", "up",
                 "packets_lost", "_dst_receive", "_sim_at")

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        delay: float,
        dst: Optional[Device] = None,
        name: str = "link",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive (bits/second)")
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        #: Bits per second.
        self.bandwidth = bandwidth
        #: One-way propagation delay in seconds.
        self.delay = delay
        self._dst = dst
        self._dst_receive = None if dst is None else dst.receive
        # Delivery completions are the highest-volume timer class and are
        # never cancelled individually, so they ride the engine's
        # fire-and-forget lane (no Event object per packet).
        self._sim_at = sim.at_ff
        self.name = name
        self.packets_delivered = 0
        self.bytes_delivered = 0
        #: Failure injection: a downed link silently discards everything
        #: handed to it (a cable pull, not a graceful drain).
        self.up = True
        self.packets_lost = 0

    @property
    def dst(self) -> Optional[Device]:
        """The device at the far end of the wire."""
        return self._dst

    @dst.setter
    def dst(self, device: Optional[Device]) -> None:
        self._dst = device
        self._dst_receive = None if device is None else device.receive

    def tx_time(self, size_bytes: int) -> float:
        """Serialization time of ``size_bytes`` on this link."""
        return size_bytes * 8.0 / self.bandwidth

    def deliver(self, packet: Packet) -> None:
        """Start propagation: the remote device receives the packet after
        ``delay`` seconds.  Must be called when serialization completes."""
        receive = self._dst_receive
        if receive is None:
            raise RuntimeError(f"{self.name}: deliver() on an unattached link")
        if not self.up:
            self.packets_lost += 1
            # The wire is this packet's terminal consumer.
            release(packet)
            return
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        sim = self.sim
        self._sim_at(sim._now + self.delay, receive, packet)

    def set_down(self) -> None:
        """Fail the link: subsequent packets are lost in flight."""
        self.up = False

    def set_up(self) -> None:
        """Restore a failed link."""
        self.up = True
