"""End hosts.

A host owns one NIC output port (plain FIFO, no marking — marking is the
network's job) and a demultiplexer from flow id to the transport endpoints
registered on it.  Data packets are dispatched to the flow's receiver
endpoint, ACKs to its sender endpoint.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.engine import Simulator
from .packet import DATA, Packet, release
from .port import Port

__all__ = ["Host"]

PacketHandler = Callable[[Packet], None]


class Host:
    """A server attached to the fabric by a single NIC."""

    __slots__ = ("sim", "host_id", "name", "nic", "_data_handlers", "_ack_handlers",
                 "received_packets", "received_bytes")

    def __init__(self, sim: Simulator, host_id: int, name: Optional[str] = None):
        self.sim = sim
        self.host_id = host_id
        self.name = name if name is not None else f"host{host_id}"
        self.nic: Optional[Port] = None
        self._data_handlers: Dict[int, PacketHandler] = {}
        self._ack_handlers: Dict[int, PacketHandler] = {}
        self.received_packets = 0
        self.received_bytes = 0

    def attach_nic(self, port: Port) -> None:
        """Install the host's output port (done by the topology builder)."""
        self.nic = port

    def register_flow(
        self,
        flow_id: int,
        data_handler: Optional[PacketHandler] = None,
        ack_handler: Optional[PacketHandler] = None,
    ) -> None:
        """Register transport endpoints for one flow on this host."""
        if data_handler is not None:
            self._data_handlers[flow_id] = data_handler
        if ack_handler is not None:
            self._ack_handlers[flow_id] = ack_handler

    def unregister_flow(self, flow_id: int) -> None:
        self._data_handlers.pop(flow_id, None)
        self._ack_handlers.pop(flow_id, None)

    def send(self, packet: Packet) -> bool:
        """Hand a packet to the NIC.  Returns False if the NIC dropped it."""
        if self.nic is None:
            raise RuntimeError(f"{self.name}: no NIC attached")
        return self.nic.enqueue(packet, 0)

    def receive(self, packet: Packet) -> None:
        """Dispatch an arriving packet to the registered endpoint."""
        self.received_packets += 1
        self.received_bytes += packet.size
        # Reverse-path packets (ACK/CNP/NACK) go to the sender endpoint.
        # Direct kind check: the ``to_sender`` property costs a function
        # call per delivered packet on the hottest dispatch point.
        handlers = self._ack_handlers if packet.kind != DATA else self._data_handlers
        handler = handlers.get(packet.flow_id)
        if handler is not None:
            handler(packet)
        else:
            # Unregistered flow: silently dropped, mirroring a real host
            # discarding segments for closed connections.  This host is
            # the packet's terminal consumer, so recycle it.
            release(packet)
