"""Output-queued switch with ECMP forwarding.

A switch is a set of output :class:`~repro.net.port.Port` objects plus a
route table mapping destination host ids to candidate port indices.  When
several candidate ports exist (leaf→spine uplinks) the switch picks one by
hashing the flow id — per-flow ECMP, so a flow never reorders across
paths.

Packet-to-queue classification models DSCP-based service isolation: the
default classifier maps ``packet.service`` onto a queue index modulo the
port's queue count, matching how operators pin services to switch queues.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..sim.engine import Simulator
from ..sim.rng import stable_hash
from .packet import Packet
from .port import Port

__all__ = ["Switch"]

#: Signature of queue classifiers: (packet, port) -> queue index.
Classifier = Callable[[Packet, Port], int]


def service_classifier(packet: Packet, port: Port) -> int:
    """Default DSCP-style classification: service id modulo queue count."""
    return packet.service % port.n_queues


class Switch:
    """An output-queued multi-port switch."""

    __slots__ = ("sim", "name", "ports", "routes", "classifier", "ecmp_salt",
                 "forwarded", "_ecmp_cache", "shared_buffer")

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        classifier: Optional[Classifier] = None,
        ecmp_salt: int = 0,
    ):
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []
        #: dst host id -> candidate output port indices (ECMP group).
        #: Values are lists (``set_route``) or shared tuples
        #: (``install_routes``); forwarding only ever indexes them.
        self.routes: Dict[int, Sequence[int]] = {}
        self.classifier = classifier if classifier is not None else service_classifier
        #: Per-switch hash salt so different switches spread flows
        #: independently (as real switches' hash seeds do).
        self.ecmp_salt = ecmp_salt
        self.forwarded = 0
        #: The switch-wide :class:`~repro.net.sharedbuf.SharedBuffer`
        #: this chip's ports draw from, set by the topology builders
        #: when a shared-buffer spec is in effect (None = private
        #: per-port buffers only).
        self.shared_buffer = None
        #: (flow_id, dst) -> chosen port index.  The hash is pure, so
        #: memoizing it keeps the per-packet hot path to one dict lookup.
        self._ecmp_cache: Dict[tuple, int] = {}

    def add_port(self, port: Port) -> int:
        """Register an output port, returning its index."""
        self.ports.append(port)
        return len(self.ports) - 1

    def set_route(self, dst_host: int, port_indices: List[int]) -> None:
        """Install the ECMP group used to reach ``dst_host``."""
        if not port_indices:
            raise ValueError("a route needs at least one port")
        for index in port_indices:
            if not 0 <= index < len(self.ports):
                raise ValueError(f"{self.name}: no port with index {index}")
        self.routes[dst_host] = list(port_indices)
        # Route changes invalidate memoized path choices.
        self._ecmp_cache.clear()

    def install_routes(self, routes: Mapping[int, Sequence[int]]) -> None:
        """Bulk-install ECMP groups (the topology generator's path).

        Semantically ``set_route`` per destination, but each *distinct*
        group object is validated and frozen to a tuple once and then
        shared by every destination that references it — a generated
        1k-host fabric installs ~300k route entries but only two group
        objects per switch (its down ports and its uplink ECMP set), so
        installation cost is dominated by dict stores, not validation.
        """
        n_ports = len(self.ports)
        frozen: Dict[int, tuple] = {}
        table = self.routes
        for dst_host, group in routes.items():
            cached = frozen.get(id(group))
            if cached is None:
                if not group:
                    raise ValueError("a route needs at least one port")
                for index in group:
                    if not 0 <= index < n_ports:
                        raise ValueError(
                            f"{self.name}: no port with index {index}")
                cached = tuple(group)
                frozen[id(group)] = cached
            table[dst_host] = cached
        self._ecmp_cache.clear()

    def receive(self, packet: Packet) -> None:
        """Forward a packet toward its destination host."""
        try:
            candidates = self.routes[packet.dst]
        except KeyError:
            raise RuntimeError(
                f"{self.name}: no route to host {packet.dst}"
            ) from None
        if len(candidates) == 1:
            port = self.ports[candidates[0]]
        else:
            key = (packet.flow_id, packet.dst)
            index = self._ecmp_cache.get(key)
            if index is None:
                choice = stable_hash(packet.flow_id, self.ecmp_salt) % len(candidates)
                index = candidates[choice]
                self._ecmp_cache[key] = index
            port = self.ports[index]
        self.forwarded += 1
        port.enqueue(packet, self.classifier(packet, port))
