"""Per-packet event tracing.

A :class:`PacketTrace` subscribes to one or more ports and records a
tuple per datapath event — enqueue, drop, departure — optionally
filtered by flow id or event kind.  It is the debugging companion to the
aggregate metrics: when a scheme misbehaves, the trace shows exactly
which packet was marked where and at what occupancy.

Events are plain named tuples, cheap to record and easy to assert on in
tests.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, NamedTuple, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .packet import Packet
    from .port import Port

__all__ = ["PacketEvent", "PacketTrace", "ENQUEUE", "DEQUEUE", "DROP"]

ENQUEUE = "enqueue"
DEQUEUE = "dequeue"
DROP = "drop"


class PacketEvent(NamedTuple):
    """One datapath event."""

    time: float
    port: str
    kind: str            # "enqueue" | "dequeue" | "drop"
    flow_id: int
    seq: int
    queue_index: int
    ce: bool
    port_occupancy: int  # packets, at the instant of the event


class PacketTrace:
    """Recorder of datapath events on a set of ports."""

    def __init__(
        self,
        ports: Iterable["Port"],
        flow_filter: Optional[Callable[[int], bool]] = None,
        kinds: Iterable[str] = (ENQUEUE, DEQUEUE, DROP),
    ):
        self.events: List[PacketEvent] = []
        self._flow_filter = flow_filter
        self._kinds = frozenset(kinds)
        for port in ports:
            self._attach(port)

    def _attach(self, port: "Port") -> None:
        if ENQUEUE in self._kinds:
            port.enqueue_listeners.append(self._make_listener(ENQUEUE))
        if DEQUEUE in self._kinds:
            port.dequeue_listeners.append(self._make_listener(DEQUEUE))
        if DROP in self._kinds:
            port.drop_listeners.append(self._make_listener(DROP))

    def _make_listener(self, kind: str):
        def listener(port: "Port", queue_index: int, packet: "Packet"):
            self._record(port, kind, queue_index, packet)
        return listener

    def _record(self, port: "Port", kind: str, queue_index: int,
                packet: "Packet") -> None:
        if self._flow_filter is not None and not self._flow_filter(
                packet.flow_id):
            return
        # A captured packet is permanently exempt from pool recycling:
        # debugging sessions may hold or inspect it long after the
        # datapath's terminal consumer released it.
        packet.pinned = True
        self.events.append(
            PacketEvent(
                time=port.sim.now,
                port=port.name,
                kind=kind,
                flow_id=packet.flow_id,
                seq=packet.seq,
                queue_index=queue_index,
                ce=packet.ce,
                port_occupancy=port.packet_count,
            )
        )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[PacketEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_flow(self, flow_id: int) -> List[PacketEvent]:
        return [e for e in self.events if e.flow_id == flow_id]

    def marked(self) -> List[PacketEvent]:
        """Departure events of CE-marked packets."""
        return [e for e in self.events if e.kind == DEQUEUE and e.ce]

    def drops(self) -> List[PacketEvent]:
        return self.of_kind(DROP)

    def sojourn_times(self, flow_id: Optional[int] = None) -> List[float]:
        """Buffer residence times from matching enqueue/dequeue pairs.

        The dequeue event fires at wire completion, so each value is
        queueing delay **plus** the packet's own serialization time —
        the full time the packet occupied buffer memory.
        """
        pending = {}
        sojourns: List[float] = []
        for event in self.events:
            if flow_id is not None and event.flow_id != flow_id:
                continue
            key = (event.port, event.flow_id, event.seq)
            if event.kind == ENQUEUE:
                pending[key] = event.time
            elif event.kind == DEQUEUE and key in pending:
                sojourns.append(event.time - pending.pop(key))
        return sojourns
