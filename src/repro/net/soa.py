"""Struct-of-arrays mirror of port occupancy state.

The per-packet datapath keeps its counters as Python ints on each
:class:`~repro.net.port.Port` — scalar updates are cheapest there.  The
batched engine tier and the packet-train diagnostics instead want to ask
fleet-wide questions ("which ports sit inside the marking guard band?",
"how much headroom is left per port?") without a Python loop over port
objects.  :class:`PortArrays` answers those: it registers ports once,
then :meth:`sync` snapshots occupancy into flat numpy arrays where the
comparisons vectorize.

The mirror is read-only with respect to the datapath: it never feeds
values *back* into ports, so it cannot desynchronize the simulation.
Thresholds are extracted from the attached marker at registration time
(and refreshed by :meth:`sync`, so runtime threshold tuning is picked
up):

- :class:`~repro.ecn.per_port.PerPortMarker` → ``threshold_packets``;
- :class:`~repro.core.pmsb.PmsbMarker` → ``port_threshold_packets``;
- :class:`~repro.ecn.per_queue.PerQueueMarker` → the minimum per-queue
  threshold (the earliest occupancy at which *any* marking can start);
- anything else (e.g. :class:`~repro.ecn.base.NullMarker`) → NaN, which
  makes every guard-band/headroom query answer False/inf for that port.
"""

from __future__ import annotations

import math
from typing import List, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .port import Port

__all__ = ["PortArrays", "marker_port_threshold", "occupancy_integral"]


def marker_port_threshold(port: "Port") -> float:
    """Port-level marking onset (packets) of ``port``'s marker, or NaN.

    The value is the smallest port occupancy at which the marker *could*
    mark a packet — exact for per-port schemes (per-port ECN, PMSB's
    port condition), conservative (earliest queue onset) for per-queue
    marking, NaN when the marker has no occupancy threshold at all.
    """
    marker = port.marker
    threshold = getattr(marker, "port_threshold_packets", None)
    if threshold is None:
        threshold = getattr(marker, "threshold_packets", None)
    if threshold is not None:
        return float(threshold)
    threshold_fn = getattr(marker, "threshold", None)
    if callable(threshold_fn):
        try:
            return min(
                float(threshold_fn(i)) for i in range(port.n_queues)
            )
        except (TypeError, IndexError):  # non-conforming signature
            return math.nan
    return math.nan


def occupancy_integral(base: int, arrivals: int) -> float:
    """Sum of occupancies seen by a back-to-back burst (analytic).

    Segment ``i`` (1-based) of a burst enqueued onto a port holding
    ``base`` packets observes occupancy ``base + i``; the sum over the
    whole burst is ``arrivals * base + arrivals * (arrivals + 1) / 2``.
    The batched tier uses this closed form where the per-packet tier
    would accumulate the same total one enqueue at a time.
    """
    if arrivals < 0:
        raise ValueError("arrivals cannot be negative")
    return arrivals * base + arrivals * (arrivals + 1) / 2.0


class PortArrays:
    """Numpy struct-of-arrays view over a set of ports.

    Usage::

        arrays = PortArrays()
        for port in network.ports:
            arrays.register(port)
        ...
        arrays.sync()
        hot = arrays.guard_band_mask(guard=4.0)

    ``sync`` is a snapshot, not a live view — call it again after the
    simulation advances.
    """

    __slots__ = ("_ports", "occupancy", "bytes", "threshold", "capacity")

    def __init__(self) -> None:
        self._ports: List["Port"] = []
        #: Packets queued per port (after the last :meth:`sync`).
        self.occupancy = np.zeros(0, dtype=np.int64)
        #: Bytes queued per port.
        self.bytes = np.zeros(0, dtype=np.int64)
        #: Port-level marking onset per port (NaN = never marks).
        self.threshold = np.zeros(0, dtype=np.float64)
        #: Buffer capacity per port in packets (inf = unbounded).
        self.capacity = np.zeros(0, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._ports)

    @property
    def ports(self) -> List["Port"]:
        """The registered ports, in registration (= array) order."""
        return list(self._ports)

    def register(self, port: "Port") -> int:
        """Add ``port`` to the mirror; returns its array index."""
        index = len(self._ports)
        self._ports.append(port)
        self.occupancy = np.append(self.occupancy, port.packet_count)
        self.bytes = np.append(self.bytes, port.byte_count)
        self.threshold = np.append(self.threshold,
                                   marker_port_threshold(port))
        capacity = port.buffer_packets
        self.capacity = np.append(
            self.capacity, math.inf if capacity is None else float(capacity))
        return index

    def sync(self) -> None:
        """Snapshot occupancy (and refresh thresholds) for all ports."""
        ports = self._ports
        occupancy = self.occupancy
        byte_counts = self.bytes
        threshold = self.threshold
        for i, port in enumerate(ports):
            occupancy[i] = port.packet_count
            byte_counts[i] = port.byte_count
            threshold[i] = marker_port_threshold(port)

    def guard_band_mask(self, guard: float) -> np.ndarray:
        """Boolean mask of ports within ``guard`` packets of marking onset.

        A port with occupancy ``>= threshold - guard`` is "hot": a train
        landing there may straddle the marking threshold, so callers
        that want to stay conservative should treat it per-packet.
        NaN thresholds (markers with no occupancy onset) never qualify.
        """
        return self.occupancy >= self.threshold - guard

    def headroom(self) -> np.ndarray:
        """Packets of buffer space left per port (inf when unbounded)."""
        return self.capacity - self.occupancy

    def marking_headroom(self) -> np.ndarray:
        """Packets until marking onset per port (NaN when it never marks)."""
        return self.threshold - self.occupancy
