"""Switch-wide shared-buffer memory with per-port accounting.

Real datacenter switches do not give every output port a private
buffer: all ports of a chip draw from one shared memory pool, and a
*buffer-sharing policy* decides how much of it any single port may
occupy.  The per-service :class:`~repro.ecn.service_pool.BufferPool`
models the pool as one global counter — good enough for pool-level
*marking*, but wrong for admission policies like Choudhury–Hahne
Dynamic Threshold, whose ``alpha × free`` limit is defined per *port*.
This module generalizes it:

- :class:`SharedBuffer` owns the switch-wide capacity and the totals;
- every member port holds a :class:`PortBufferAccount` — a
  :class:`~repro.ecn.service_pool.BufferPool`-compatible object the
  port debits/credits, so the shared layer tracks each port's occupancy
  individually (and the auditor can prove Σ per-port debits == pool
  occupancy at every event);
- a :class:`SharingPolicy` decides admission from the totals *and* the
  admitting port's own account.

Policies
--------

- ``"complete"`` — complete sharing: admit while the pool is not full.
  One congested port can take the entire memory.
- ``"static"`` — hard partition: every port is capped at
  ``capacity / n_ports`` regardless of what the others use.
- ``"dt"`` — classic Dynamic Threshold (Choudhury–Hahne): a port may
  hold at most ``alpha × free`` packets, where ``free`` is the unused
  pool space.  A lone hog self-limits to ``alpha/(1+alpha)`` of the
  buffer, always leaving headroom for bursts on other ports.
- ``"bshare"`` — BShare-style *queueing-delay-driven* sharing
  (Agarwal et al., PAPERS.md): the limit is expressed as a delay
  budget, not a packet count.  A port admits while its queueing delay
  (``byte_count × 8 / drain_rate``) stays below
  ``target_delay × free/capacity``.  Ports that drain fast earn deep
  buffers (incast absorption); ports whose drain is slow or stalled are
  throttled early (victim protection) — exactly the regimes where
  delay-driven sharing beats occupancy-driven DT.

Every policy decision is a **pure** function of the account/pool
counters, preserving the ``admits()`` purity contract of
:class:`~repro.ecn.service_pool.BufferPool` (speculative callers — the
auditor, metrics probes — never perturb state).

Zero cost when disabled: a port built without an account keeps
``pool=None`` and the datapath is byte-for-byte the pre-shared-buffer
code path — no new branches were added to :class:`~repro.net.port.Port`.

:class:`SharedBufferSpec` is the declarative form: it parses the CLI's
``--shared-buffer policy:key=val`` spelling, renders into
:class:`~repro.store.ExperimentSpec` params (so store-backed sweeps
cache shared-buffer points correctly), and builds the runtime objects.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Tuple,
                    TYPE_CHECKING)

if TYPE_CHECKING:  # pragma: no cover
    from .link import Link

__all__ = [
    "SHARING_POLICIES",
    "BSharePolicy",
    "CompleteSharingPolicy",
    "DynamicThresholdPolicy",
    "PortBufferAccount",
    "SharedBuffer",
    "SharedBufferSpec",
    "SharingPolicy",
    "StaticPartitionPolicy",
    "set_shared_buffer_default",
    "shared_buffer_enabled",
]

#: Recognized policy names (``SharedBufferSpec.policy`` values).
SHARING_POLICIES = ("complete", "static", "dt", "bshare")


# -- sharing policies ---------------------------------------------------------

class SharingPolicy:
    """Admission strategy for one :class:`SharedBuffer`.

    ``admits`` must be **pure**: it is consulted speculatively by the
    auditor's drop-legality check and by metrics probes, so it may not
    mutate policy or pool state.
    """

    #: Name used in specs, reports and experiment rows.
    name = "policy"

    def admits(self, shared: "SharedBuffer",
               account: "PortBufferAccount") -> bool:
        """May ``account``'s port admit one more packet right now?"""
        raise NotImplementedError


class CompleteSharingPolicy(SharingPolicy):
    """Admit while the pool has free space — no per-port protection."""

    name = "complete"

    def admits(self, shared: "SharedBuffer",
               account: "PortBufferAccount") -> bool:
        return not shared.is_full


class StaticPartitionPolicy(SharingPolicy):
    """Hard split: every port owns ``capacity / n_ports`` exclusively."""

    name = "static"

    def admits(self, shared: "SharedBuffer",
               account: "PortBufferAccount") -> bool:
        if shared.is_full or not shared.accounts:
            return not shared.is_full
        quota = shared.capacity_packets / len(shared.accounts)
        return account.packet_count < quota


class DynamicThresholdPolicy(SharingPolicy):
    """Choudhury–Hahne DT enforced against the *port's own* occupancy.

    The limit ``alpha × free`` is per port: unlike
    :class:`~repro.ecn.service_pool.DynamicThresholdPool` (which only
    ever sees the admitting port's private count as a call argument),
    the shared layer knows every member's occupancy, so the threshold
    governs each port individually while ``free`` reflects the whole
    pool.
    """

    name = "dt"

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError("dt: alpha must be positive")
        self.alpha = alpha

    def threshold(self, shared: "SharedBuffer") -> float:
        """The instantaneous per-port occupancy limit ``alpha × free``."""
        return self.alpha * max(0, shared.free_packets)

    def admits(self, shared: "SharedBuffer",
               account: "PortBufferAccount") -> bool:
        return (not shared.is_full
                and account.packet_count < self.threshold(shared))


class BSharePolicy(SharingPolicy):
    """BShare-style queueing-delay-driven sharing.

    A port's buffer claim is bounded by the *time* its backlog takes to
    drain, not by a packet count: admit while

        ``account.byte_count × 8 / drain_bps  <  target_delay × free/C``

    The delay budget contracts as the pool fills (DT-like headroom
    preservation), but the packet-count limit it implies scales with
    the port's drain rate — a line-rate port absorbing an incast earns
    a deep buffer, while a port whose backlog would linger (the victim
    regime: slow drain, standing queue) is throttled early.
    ``min_budget_fraction`` keeps a small unconditional budget so a
    busy pool can never starve an empty port of its first packets.
    """

    name = "bshare"

    def __init__(self, target_delay: float = 200e-6,
                 min_budget_fraction: float = 0.05):
        if target_delay <= 0:
            raise ValueError("bshare: target_delay must be positive")
        if not 0.0 <= min_budget_fraction <= 1.0:
            raise ValueError(
                "bshare: min_budget_fraction must be in [0, 1]")
        self.target_delay = target_delay
        self.min_budget_fraction = min_budget_fraction

    def delay_budget(self, shared: "SharedBuffer") -> float:
        """Current per-port queueing-delay budget in seconds."""
        free_fraction = shared.free_packets / shared.capacity_packets
        return self.target_delay * max(self.min_budget_fraction,
                                       free_fraction)

    def admits(self, shared: "SharedBuffer",
               account: "PortBufferAccount") -> bool:
        if shared.is_full:
            return False
        delay = account.byte_count * 8.0 / account.drain_bps
        return delay < self.delay_budget(shared)


def _make_policy(policy: str, alpha: float,
                 target_delay: float) -> SharingPolicy:
    if policy == "complete":
        return CompleteSharingPolicy()
    if policy == "static":
        return StaticPartitionPolicy()
    if policy == "dt":
        return DynamicThresholdPolicy(alpha)
    if policy == "bshare":
        return BSharePolicy(target_delay)
    raise ValueError(f"unknown sharing policy {policy!r}; "
                     f"choose from {SHARING_POLICIES}")


# -- the shared memory and its per-port accounts ------------------------------

class PortBufferAccount:
    """One port's ledger against a :class:`SharedBuffer`.

    Duck-type compatible with :class:`~repro.ecn.service_pool.BufferPool`
    (``admits``/``add``/``remove``/``credit``, ``packet_count``/
    ``byte_count``/``rejections``/``name``), so
    :class:`~repro.net.port.Port` uses it through the existing ``pool``
    slot with zero datapath changes.  Every mutation updates the account
    *and* the shared totals; both carry negative-accounting guards, so a
    double credit (the old ``Port.reset`` bug) trips immediately.
    """

    __slots__ = ("shared", "name", "drain_bps", "packet_count",
                 "byte_count", "rejections")

    def __init__(self, shared: "SharedBuffer", name: str, drain_bps: float):
        if drain_bps <= 0:
            raise ValueError("account drain rate must be positive (bits/s)")
        self.shared = shared
        self.name = name
        self.drain_bps = drain_bps
        self.packet_count = 0
        self.byte_count = 0
        #: Failed admissions, charged by the port at the drop site.
        self.rejections = 0

    def admits(self, port_occupancy: int) -> bool:
        """Pure admission query, delegated to the sharing policy.

        The policy reads this account's *own* per-port ledger — the
        ``port_occupancy`` argument of the
        :class:`~repro.ecn.service_pool.BufferPool` protocol is
        redundant here (the two are equal by construction; the auditor
        cross-checks that invariant on every event).
        """
        return self.shared.policy.admits(self.shared, self)

    def add(self, nbytes: int) -> None:
        self.packet_count += 1
        self.byte_count += nbytes
        shared = self.shared
        shared.packet_count += 1
        shared.byte_count += nbytes
        if shared.packet_count > shared.peak_packets:
            shared.peak_packets = shared.packet_count

    def remove(self, nbytes: int) -> None:
        self.credit(1, nbytes)

    def credit(self, packets: int, nbytes: int) -> None:
        """Return ``packets``/``nbytes`` to the pool in one step.

        Used per packet by the transmission path (via :meth:`remove`)
        and in bulk by :meth:`repro.net.port.Port.reset`; both routes
        land here so the guards and shared-total bookkeeping can never
        be bypassed.
        """
        self.packet_count -= packets
        self.byte_count -= nbytes
        shared = self.shared
        shared.packet_count -= packets
        shared.byte_count -= nbytes
        if (self.packet_count < 0 or self.byte_count < 0
                or shared.packet_count < 0 or shared.byte_count < 0):
            raise RuntimeError(
                f"{shared.name}:{self.name}: shared-buffer accounting went "
                f"negative (account {self.packet_count}pkts/"
                f"{self.byte_count}B, pool {shared.packet_count}pkts/"
                f"{shared.byte_count}B)")

    def queueing_delay(self) -> float:
        """This port's instantaneous backlog drain time in seconds."""
        return self.byte_count * 8.0 / self.drain_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PortBufferAccount({self.name}, {self.packet_count}pkts, "
                f"pool={self.shared.name})")


class SharedBuffer:
    """The switch-wide memory: capacity, totals, accounts, policy."""

    __slots__ = ("name", "capacity_packets", "policy", "packet_count",
                 "byte_count", "peak_packets", "accounts")

    def __init__(self, capacity_packets: int,
                 policy: Optional[SharingPolicy] = None,
                 name: str = "sharedbuf"):
        if capacity_packets is None or capacity_packets < 1:
            raise ValueError("shared buffer needs a finite positive "
                             "capacity in packets")
        self.name = name
        self.capacity_packets = int(capacity_packets)
        self.policy = policy if policy is not None else CompleteSharingPolicy()
        self.packet_count = 0
        self.byte_count = 0
        #: High-water mark of the total occupancy (reporting).
        self.peak_packets = 0
        self.accounts: List[PortBufferAccount] = []

    @property
    def is_full(self) -> bool:
        return self.packet_count >= self.capacity_packets

    @property
    def free_packets(self) -> int:
        """Unused pool space in packets (never negative)."""
        return max(0, self.capacity_packets - self.packet_count)

    @property
    def rejections(self) -> int:
        """Total failed admissions across all member ports."""
        return sum(account.rejections for account in self.accounts)

    def port_account(self, name: str, link: "Link") -> PortBufferAccount:
        """Open a ledger for one member port.

        Called by the topology builders right before constructing the
        :class:`~repro.net.port.Port`; the outgoing link supplies the
        drain rate the BShare policy converts occupancy into delay with.
        """
        account = PortBufferAccount(self, name, link.bandwidth)
        self.accounts.append(account)
        return account

    def occupancy_by_port(self) -> Dict[str, int]:
        """Per-port packet occupancy snapshot (reporting/auditing)."""
        return {account.name: account.packet_count
                for account in self.accounts}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SharedBuffer({self.name}, {self.packet_count}/"
                f"{self.capacity_packets}pkts, "
                f"policy={self.policy.name}, "
                f"ports={len(self.accounts)})")


# -- declarative spec (CLI spelling + ExperimentSpec params) ------------------

@dataclass(frozen=True)
class SharedBufferSpec:
    """One shared-buffer configuration, declaratively.

    Pure data (hashable, JSON-able via :meth:`to_param`), so it rides
    inside an :class:`~repro.store.ExperimentSpec` — two sweep points
    with equal specs share one cache key, and any change to the policy
    parameters re-keys the affected points.
    """

    #: Sharing policy: one of :data:`SHARING_POLICIES`.
    policy: str = "dt"
    #: Switch-wide capacity in packets.
    capacity: int = 256
    #: DT aggressiveness (``"dt"`` only).
    alpha: float = 1.0
    #: Queueing-delay target in seconds (``"bshare"`` only).
    target_delay: float = 200e-6

    def __post_init__(self):
        if self.policy not in SHARING_POLICIES:
            raise ValueError(f"unknown sharing policy {self.policy!r}; "
                             f"choose from {SHARING_POLICIES}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be a positive packet count, "
                             f"got {self.capacity!r}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha!r}")
        if self.target_delay <= 0:
            raise ValueError(f"target_delay must be positive, "
                             f"got {self.target_delay!r}")

    def build(self, name: str = "sharedbuf") -> SharedBuffer:
        """Construct the runtime :class:`SharedBuffer` this spec names."""
        return SharedBuffer(
            self.capacity,
            _make_policy(self.policy, self.alpha, self.target_delay),
            name=name,
        )

    def to_param(self) -> Tuple[Tuple[str, Any], ...]:
        """Canonical nested-tuple form for ``ExperimentSpec`` params."""
        return tuple(sorted(asdict(self).items()))

    @classmethod
    def from_param(cls, pairs: Iterable[Sequence[Any]]) -> "SharedBufferSpec":
        """Rebuild a spec from :meth:`to_param` output (tuples or the
        JSON lists a stored record round-trips them into)."""
        data = {str(key): value for key, value in pairs}
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SharedBufferSpec fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "SharedBufferSpec":
        """Parse the CLI spelling ``policy:key=value,key=value``.

        Example: ``dt:capacity=200,alpha=2`` or
        ``bshare:capacity=128,target_delay=100e-6``.  ``capacity`` is an
        int, everything else a float.
        """
        policy, _, body = text.partition(":")
        policy = policy.strip()
        kwargs: Dict[str, Any] = {}
        if body.strip():
            for item in body.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or not key:
                    raise ValueError(
                        f"bad shared-buffer option {item!r} in {text!r} "
                        f"(expected key=value)")
                if key == "capacity":
                    kwargs[key] = int(value)
                else:
                    kwargs[key] = float(value)
        try:
            return cls(policy=policy, **kwargs)
        except TypeError as exc:
            raise ValueError(
                f"bad shared-buffer spec {text!r}: {exc}") from None


# -- process-wide default (the CLI's --shared-buffer flag) --------------------

_SHARED_BUFFER_DEFAULT: Optional[SharedBufferSpec] = None


def set_shared_buffer_default(spec: Optional[SharedBufferSpec]) -> None:
    """Set the process-wide shared-buffer default.

    Topology builders whose ``shared_buffer`` argument is None give
    every switch a pool built from this spec — the same pattern as
    :func:`~repro.sim.faults.set_fault_default`.
    """
    global _SHARED_BUFFER_DEFAULT
    _SHARED_BUFFER_DEFAULT = spec


def shared_buffer_enabled(
    spec: Optional[SharedBufferSpec] = None,
) -> Optional[SharedBufferSpec]:
    """Resolve a builder's ``shared_buffer`` argument against the default."""
    if spec is None:
        return _SHARED_BUFFER_DEFAULT
    return spec
