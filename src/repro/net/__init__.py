"""Network substrate: packets, links, ports, switches, hosts, topologies."""

from .host import Host
from .interfaces import Device
from .link import Link
from .packet import ACK, ACK_BYTES, DATA, HEADER_BYTES, MTU_BYTES, Packet
from .port import Port
from .switch import Switch
from .topology import (ClosGenerator, Network, TopologySpec, fat_tree,
                       leaf_spine, single_bottleneck)

__all__ = [
    "ACK",
    "ACK_BYTES",
    "DATA",
    "ClosGenerator",
    "Device",
    "HEADER_BYTES",
    "Host",
    "Link",
    "MTU_BYTES",
    "Network",
    "Packet",
    "Port",
    "Switch",
    "TopologySpec",
    "fat_tree",
    "leaf_spine",
    "single_bottleneck",
]
