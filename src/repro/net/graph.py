"""Topology introspection via networkx.

:func:`to_networkx` renders a built :class:`~repro.net.topology.Network`
as a directed graph — hosts and switches as nodes, every unidirectional
link as an edge with ``bandwidth``/``delay`` attributes.  Useful for
validating custom topologies (strong connectivity, path lengths, cut
capacities) and for exporting to graph tooling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

import networkx as nx

from .host import Host
from .switch import Switch

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

__all__ = ["to_networkx", "validate_topology", "validate_routes"]


def to_networkx(network: "Network") -> "nx.DiGraph":
    """Build the directed link graph of a network."""
    graph = nx.DiGraph()
    for host in network.hosts:
        graph.add_node(host.name, kind="host", host_id=host.host_id)
    for switch in network.switches:
        graph.add_node(switch.name, kind="switch")

    def add_edges(device_name, ports):
        for port in ports:
            dst = port.link.dst
            if dst is None:
                continue
            graph.add_edge(
                device_name, dst.name,
                bandwidth=port.link.bandwidth,
                delay=port.link.delay,
                port=port.name,
            )

    for switch in network.switches:
        add_edges(switch.name, switch.ports)
    for host in network.hosts:
        if host.nic is not None:
            add_edges(host.name, [host.nic])
    return graph


def validate_topology(network: "Network") -> None:
    """Raise if the fabric is not strongly connected over its hosts.

    Every host must be able to reach every other host through the link
    graph; topology-builder bugs (missing reverse ports, unrouted hosts)
    surface here long before a simulation silently drops traffic.
    """
    graph = to_networkx(network)
    host_names = [h.name for h in network.hosts]
    for src in host_names:
        reachable = nx.descendants(graph, src)
        missing = [dst for dst in host_names
                   if dst != src and dst not in reachable]
        if missing:
            raise ValueError(
                f"{src} cannot reach {missing} through the link graph"
            )


def validate_routes(network: "Network") -> None:
    """Raise unless every switch's next-hop table delivers every host.

    Walks each (switch, destination) pair through *all* ECMP branches:
    a route must exist, must not loop, and every branch must terminate
    at the destination host.  This is the correctness contract the
    generated-topology route derivation
    (:meth:`~repro.net.topology.ClosGenerator.build`) must satisfy on
    any shape, so generator bugs surface here rather than as silently
    blackholed traffic.
    """
    status: Dict[Tuple[int, int], str] = {}

    def check(switch: Switch, dst: int) -> None:
        key = (id(switch), dst)
        state = status.get(key)
        if state == "ok":
            return
        if state == "visiting":
            raise ValueError(
                f"routing loop toward host {dst} through {switch.name}")
        status[key] = "visiting"
        group = switch.routes.get(dst)
        if not group:
            raise ValueError(f"{switch.name} has no route to host {dst}")
        for index in group:
            nxt = switch.ports[index].link.dst
            if isinstance(nxt, Host):
                if nxt.host_id != dst:
                    raise ValueError(
                        f"{switch.name} port {switch.ports[index].name} "
                        f"routes host {dst} into host {nxt.host_id}")
            elif isinstance(nxt, Switch):
                check(nxt, dst)
            else:
                raise ValueError(
                    f"{switch.name} port {switch.ports[index].name} toward "
                    f"host {dst} has no connected device")
        status[key] = "ok"

    for switch in network.switches:
        for host in network.hosts:
            check(switch, host.host_id)
