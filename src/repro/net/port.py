"""Switch output port: buffer accounting, marking hooks, transmission.

The port owns

- a :class:`~repro.scheduling.base.Scheduler` providing per-queue storage
  and the service discipline,
- an optional :class:`~repro.ecn.base.Marker` consulted at enqueue and
  dequeue,
- the outgoing :class:`~repro.net.link.Link`.

Occupancy is tracked in both packets and bytes at port and queue
granularity; the paper quotes all thresholds in packets, so markers read
``port.packet_count`` / ``port.queue_packet_count(i)``.

Semantics: a packet occupies the buffer until it is **fully serialized**
onto the wire (store-and-forward).  This matters: a busy port always
counts at least the in-service packet, so a single line-rate flow sees
occupancy 2 at every enqueue — which is exactly why the paper's Fig. 2
per-queue *fractional* thresholds (K=2) throttle a lone flow while K=16
does not.  Marking at dequeue is evaluated when transmission starts,
while the packet still counts toward occupancy.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..ecn.base import Marker, NullMarker
from ..scheduling.base import Scheduler
from ..sim.engine import Simulator
from .link import Link
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..ecn.service_pool import BufferPool

__all__ = ["Port"]

#: Signature of per-departure listeners: (port, queue_index, packet).
DequeueListener = Callable[["Port", int, Packet], None]


class Port:
    """One output interface of a host or switch."""

    __slots__ = (
        "sim",
        "link",
        "scheduler",
        "marker",
        "name",
        "buffer_packets",
        "pool",
        "_packet_count",
        "_byte_count",
        "_queue_packets",
        "_queue_bytes",
        "busy",
        "_tx_event",
        "drops",
        "queue_drops",
        "tx_packets",
        "tx_bytes",
        "queue_tx_bytes",
        "last_departure",
        "dequeue_listeners",
        "enqueue_listeners",
        "drop_listeners",
    )

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        scheduler: Scheduler,
        marker: Optional[Marker] = None,
        buffer_packets: Optional[int] = None,
        name: str = "port",
        pool: Optional["BufferPool"] = None,
    ):
        self.sim = sim
        self.link = link
        self.scheduler = scheduler
        self.marker = marker if marker is not None else NullMarker()
        self.name = name
        #: Drop-tail capacity in packets (None = unbounded).
        self.buffer_packets = buffer_packets
        #: Optional shared service pool this port's buffer draws from.
        self.pool = pool
        self._packet_count = 0
        self._byte_count = 0
        self._queue_packets = [0] * scheduler.n_queues
        self._queue_bytes = [0] * scheduler.n_queues
        self.busy = False
        self._tx_event = None
        self.drops = 0
        self.queue_drops = [0] * scheduler.n_queues
        self.tx_packets = 0
        self.tx_bytes = 0
        self.queue_tx_bytes = [0] * scheduler.n_queues
        #: Simulation time of the most recent transmission completion.
        self.last_departure = 0.0
        self.dequeue_listeners: List[DequeueListener] = []
        self.enqueue_listeners: List[DequeueListener] = []
        self.drop_listeners: List[DequeueListener] = []
        self.marker.attach(self)

    # -- occupancy views (what markers read) -----------------------------

    @property
    def n_queues(self) -> int:
        return self.scheduler.n_queues

    @property
    def packet_count(self) -> int:
        """Instantaneous port buffer occupancy in packets."""
        return self._packet_count

    @property
    def byte_count(self) -> int:
        """Instantaneous port buffer occupancy in bytes."""
        return self._byte_count

    def queue_packet_count(self, queue_index: int) -> int:
        """Instantaneous occupancy of one queue in packets."""
        return self._queue_packets[queue_index]

    def queue_byte_count(self, queue_index: int) -> int:
        """Instantaneous occupancy of one queue in bytes."""
        return self._queue_bytes[queue_index]

    @property
    def weights(self) -> List[float]:
        """Scheduler weight vector (markers use it for per-queue shares)."""
        return self.scheduler.weights

    # -- datapath ---------------------------------------------------------

    def enqueue(self, packet: Packet, queue_index: int = 0) -> bool:
        """Admit a packet into ``queue_index``.

        Returns False when the packet was dropped (buffer full).
        """
        if (
            self.buffer_packets is not None
            and self._packet_count >= self.buffer_packets
        ):
            return self._drop(queue_index, packet)
        if self.pool is not None and not self.pool.admits(self._packet_count):
            # ``admits`` is a pure query; the pool's rejection statistic
            # is charged here, at the drop site, so speculative callers
            # (metrics probes, the auditor) cannot corrupt it.  A port
            # whose own buffer was already full never reaches this point
            # — buffer drops are not pool rejections.
            self.pool.rejections += 1
            return self._drop(queue_index, packet)
        self._packet_count += 1
        self._byte_count += packet.size
        self._queue_packets[queue_index] += 1
        self._queue_bytes[queue_index] += packet.size
        if self.pool is not None:
            self.pool.add(packet.size)
        packet.enqueue_time = self.sim.now
        self.scheduler.enqueue(queue_index, packet)
        self.marker.on_enqueue(self, queue_index, packet)
        for listener in self.enqueue_listeners:
            listener(self, queue_index, packet)
        if not self.busy:
            self._transmit_next()
        return True

    def _drop(self, queue_index: int, packet: Packet) -> bool:
        self.drops += 1
        self.queue_drops[queue_index] += 1
        for listener in self.drop_listeners:
            listener(self, queue_index, packet)
        return False

    def _transmit_next(self) -> None:
        item = self.scheduler.dequeue()
        if item is None:
            self.busy = False
            return
        queue_index, packet = item
        # Dequeue marking sees occupancy that still includes this packet.
        self.marker.on_dequeue(self, queue_index, packet)
        self.busy = True
        tx_time = self.link.tx_time(packet.size)
        self._tx_event = self.sim.schedule(
            tx_time, self._transmission_done, queue_index, packet
        )

    def _transmission_done(self, queue_index: int, packet: Packet) -> None:
        # The packet has left the buffer only now that it is on the wire.
        self._tx_event = None
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.count("tx")
        self._packet_count -= 1
        self._byte_count -= packet.size
        self._queue_packets[queue_index] -= 1
        self._queue_bytes[queue_index] -= packet.size
        if self.pool is not None:
            self.pool.remove(packet.size)
        self.link.deliver(packet)
        self.tx_packets += 1
        self.tx_bytes += packet.size
        self.queue_tx_bytes[queue_index] += packet.size
        self.last_departure = self.sim.now
        for listener in self.dequeue_listeners:
            listener(self, queue_index, packet)
        self._transmit_next()

    # -- teardown ---------------------------------------------------------

    def reset(self) -> None:
        """Return the port to an empty, idle state.

        Required after :meth:`repro.sim.engine.Simulator.clear` (or any
        teardown that discards pending events): a cleared simulator drops
        the in-flight ``_transmission_done`` event, which would otherwise
        leave ``busy`` latched forever — the port would never transmit
        again — and leak buffer/pool occupancy.  ``reset`` cancels the
        in-flight transmission, discards all queued packets, zeroes the
        occupancy accounting, credits any shared pool, clears the
        marker's per-port state (:meth:`~repro.ecn.base.Marker.on_reset`)
        and re-anchors ``last_departure`` at the current time so idle
        detection does not compare against a pre-reset departure.
        Cumulative statistics (``tx_packets``, ``drops``, …) are
        preserved.
        """
        if self._tx_event is not None:
            self._tx_event.cancel()
            self._tx_event = None
        self.busy = False
        if self.pool is not None and self._packet_count:
            self.pool.packet_count -= self._packet_count
            self.pool.byte_count -= self._byte_count
        # Occupancy counters are zeroed before the scheduler drops its
        # packets so observers of ``scheduler.clear`` (the auditor) never
        # see the port counting packets the scheduler already discarded.
        self._packet_count = 0
        self._byte_count = 0
        for queue_index in range(self.scheduler.n_queues):
            self._queue_packets[queue_index] = 0
            self._queue_bytes[queue_index] = 0
        self.scheduler.clear()
        self.marker.on_reset(self)
        self.last_departure = self.sim.now
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.on_port_reset(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Port({self.name}, {self._packet_count}pkts/"
            f"{self.scheduler.n_queues}q, busy={self.busy})"
        )
