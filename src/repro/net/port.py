"""Switch output port: buffer accounting, marking hooks, transmission.

The port owns

- a :class:`~repro.scheduling.base.Scheduler` providing per-queue storage
  and the service discipline,
- an optional :class:`~repro.ecn.base.Marker` consulted at enqueue and
  dequeue,
- the outgoing :class:`~repro.net.link.Link`.

Occupancy is tracked in both packets and bytes at port and queue
granularity; the paper quotes all thresholds in packets, so markers read
``port.packet_count`` / ``port.queue_packet_count(i)``.

Semantics: a packet occupies the buffer until it is **fully serialized**
onto the wire (store-and-forward).  This matters: a busy port always
counts at least the in-service packet, so a single line-rate flow sees
occupancy 2 at every enqueue — which is exactly why the paper's Fig. 2
per-queue *fractional* thresholds (K=2) throttle a lone flow while K=16
does not.  Marking at dequeue is evaluated when transmission starts,
while the packet still counts toward occupancy.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..ecn.base import Marker, NullMarker
from ..scheduling.base import Scheduler
from ..sim.engine import Simulator
from .interfaces import DequeueListener, DropListener, EnqueueListener
from .link import Link
from .packet import DATA, POOL, Packet, release, split_train
from .soa import marker_port_threshold

if TYPE_CHECKING:  # pragma: no cover
    from ..ecn.service_pool import BufferPool

__all__ = ["Port"]

#: A marking port admits train units of at most ``threshold // divisor``
#: segments.  Whole trains would step the occupancy past the entire
#: marking operating range in one event (a 16-segment train against
#: K=12 jumps from empty to fully-marked), which distorts the closed
#: loop the threshold regulates; quarter-threshold units keep occupancy
#: granular enough that DCTCP dynamics stay within a few percent of the
#: per-packet tier while still batching several segments per event.
_TRAIN_CHUNK_DIVISOR = 4


class Port:
    """One output interface of a host or switch."""

    __slots__ = (
        "sim",
        "link",
        "scheduler",
        "marker",
        "name",
        "buffer_packets",
        "pool",
        "_packet_count",
        "_byte_count",
        "_queue_packets",
        "_queue_bytes",
        "busy",
        "_tx_event",
        "drops",
        "queue_drops",
        "tx_packets",
        "tx_bytes",
        "queue_tx_bytes",
        "last_departure",
        "dequeue_listeners",
        "enqueue_listeners",
        "drop_listeners",
        # Hot-path method bindings, resolved once at construction: the
        # datapath fires them hundreds of thousands of times per run and
        # repeated attribute chains (self.scheduler.enqueue, …) would pay
        # two lookups per call.  Scheduler/marker/link identities are
        # fixed for the port's lifetime.
        "_sched_enqueue",
        "_sched_dequeue",
        "_marker_on_enqueue",
        "_marker_on_dequeue",
        "_tx_time",
        "_sim_at",
        "_sim_at_ff",
        # Reset generation for fire-and-forget completions (see
        # _transmission_done_ff): bumped by reset() so in-flight
        # completions scheduled before the reset are ignored.
        "_tx_epoch",
    )

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        scheduler: Scheduler,
        marker: Optional[Marker] = None,
        buffer_packets: Optional[int] = None,
        name: str = "port",
        pool: Optional["BufferPool"] = None,
    ):
        self.sim = sim
        self.link = link
        self.scheduler = scheduler
        self.marker = marker if marker is not None else NullMarker()
        self.name = name
        #: Drop-tail capacity in packets (None = unbounded).
        self.buffer_packets = buffer_packets
        #: Optional shared service pool this port's buffer draws from.
        self.pool = pool
        self._packet_count = 0
        self._byte_count = 0
        self._queue_packets = [0] * scheduler.n_queues
        self._queue_bytes = [0] * scheduler.n_queues
        self.busy = False
        self._tx_event = None
        self.drops = 0
        self.queue_drops = [0] * scheduler.n_queues
        self.tx_packets = 0
        self.tx_bytes = 0
        self.queue_tx_bytes = [0] * scheduler.n_queues
        #: Simulation time of the most recent transmission completion,
        #: anchored at construction time: a port built mid-run has not
        #: been idle since t=0, and idle-detecting markers (MQ-ECN's
        #: T_round reset) must not treat "never transmitted" as "long
        #: idle" on the first packet.
        self.last_departure = sim._now
        self.dequeue_listeners: List[DequeueListener] = []
        self.enqueue_listeners: List[EnqueueListener] = []
        self.drop_listeners: List[DropListener] = []
        self._sched_enqueue = scheduler.enqueue
        self._sched_dequeue = scheduler.dequeue
        self._marker_on_enqueue = self.marker.on_enqueue
        self._marker_on_dequeue = self.marker.on_dequeue
        self._tx_time = link.tx_time
        self._sim_at = sim.at
        self._sim_at_ff = sim.at_ff
        self._tx_epoch = 0
        self.marker.attach(self)

    # -- occupancy views (what markers read) -----------------------------

    @property
    def n_queues(self) -> int:
        return self.scheduler.n_queues

    @property
    def packet_count(self) -> int:
        """Instantaneous port buffer occupancy in packets."""
        return self._packet_count

    @property
    def byte_count(self) -> int:
        """Instantaneous port buffer occupancy in bytes."""
        return self._byte_count

    def queue_packet_count(self, queue_index: int) -> int:
        """Instantaneous occupancy of one queue in packets."""
        return self._queue_packets[queue_index]

    def queue_byte_count(self, queue_index: int) -> int:
        """Instantaneous occupancy of one queue in bytes."""
        return self._queue_bytes[queue_index]

    @property
    def weights(self) -> List[float]:
        """Scheduler weight vector (markers use it for per-queue shares)."""
        return self.scheduler.weights

    # -- datapath ---------------------------------------------------------

    def enqueue(self, packet: Packet, queue_index: int = 0) -> bool:
        """Admit a packet into ``queue_index``.

        Returns False when the packet was dropped (buffer full).  A
        packet train (``packet.train > 1``) is admitted as one buffer
        unit when that provably reproduces per-packet marking — see
        :meth:`_enqueue_train` — and split into individual packets
        otherwise.
        """
        if packet.train > 1:
            return self._enqueue_train(packet, queue_index)
        count = self._packet_count
        if self.buffer_packets is not None and count >= self.buffer_packets:
            return self._drop(queue_index, packet)
        pool = self.pool
        if pool is not None and not pool.admits(count):
            # ``admits`` is a pure query; the pool's rejection statistic
            # is charged here, at the drop site, so speculative callers
            # (metrics probes, the auditor) cannot corrupt it.  A port
            # whose own buffer was already full never reaches this point
            # — buffer drops are not pool rejections.
            pool.rejections += 1
            return self._drop(queue_index, packet)
        size = packet.size
        self._packet_count = count + 1
        self._byte_count += size
        self._queue_packets[queue_index] += 1
        self._queue_bytes[queue_index] += size
        if pool is not None:
            pool.add(size)
        packet.enqueue_time = self.sim._now
        self._sched_enqueue(queue_index, packet)
        self._marker_on_enqueue(self, queue_index, packet)
        listeners = self.enqueue_listeners
        if listeners:
            for listener in listeners:
                listener(self, queue_index, packet)
        if not self.busy:
            self._transmit_next()
        return True

    def _enqueue_train(self, packet: Packet, queue_index: int) -> bool:
        """Admit a packet train, preserving marking fidelity.

        The train stays one buffer unit only when every per-segment
        decision is provably reproduced in closed form; otherwise it is
        split into individual packets (:meth:`_enqueue_split`), which
        *is* the per-packet datapath.  Full-split triggers:

        - an attached shared-buffer pool (admission is a per-packet
          policy decision),
        - enqueue listeners (the fabric auditor, metrics probes — their
          ledgers are per-packet),
        - a drop-tail boundary inside the train (each segment must win
          or lose admission individually),
        - a marker without a closed form for this train
          (:meth:`~repro.ecn.base.Marker.train_split` returned None).

        When the marking-threshold crossing falls inside the train the
        unmarked prefix and CE-marked suffix are enqueued as two units —
        the automatic drop to per-packet marking granularity near a
        threshold.
        """
        n = packet.train
        count = self._packet_count
        if (
            self.pool is not None
            or self.enqueue_listeners
            or (self.buffer_packets is not None
                and count + n > self.buffer_packets)
        ):
            return self._enqueue_split(packet, queue_index)
        unmarked = self.marker.train_split(
            self, queue_index, packet, count,
            self._queue_packets[queue_index])
        if unmarked is None:
            return self._enqueue_split(packet, queue_index)
        if unmarked >= n:
            units = [packet]
        elif unmarked == 0:
            packet.ce = True
            units = [packet]
        else:
            tail = split_train(packet, unmarked)
            tail.ce = True
            units = [packet, tail]
        threshold = marker_port_threshold(self)
        if threshold == threshold:  # marking port (threshold is not NaN)
            chunk = max(1, int(threshold) // _TRAIN_CHUNK_DIVISOR)
            if chunk < n:
                pieces = []
                for unit in units:
                    while unit.train > chunk:
                        rest = split_train(unit, chunk)
                        pieces.append(unit)
                        unit = rest
                    pieces.append(unit)
                units = pieces
        now = self.sim._now
        queue_packets = self._queue_packets
        queue_bytes = self._queue_bytes
        for unit in units:
            size = unit.size
            self._packet_count += unit.train
            self._byte_count += size
            queue_packets[queue_index] += unit.train
            queue_bytes[queue_index] += size
            unit.enqueue_time = now
            self._sched_enqueue(queue_index, unit)
        if not self.busy:
            self._transmit_next()
        return True

    def _enqueue_split(self, packet: Packet, queue_index: int) -> bool:
        """Demote a train to individual packets and enqueue each one.

        The original object becomes the first segment (keeping its uid);
        the rest are pool-backed clones with consecutive sequence
        numbers.  Returns False only when *every* segment was dropped.
        """
        n = packet.train
        segment = packet.size // n
        flow_id = packet.flow_id
        src = packet.src
        dst = packet.dst
        base_seq = packet.seq
        service = packet.service
        ect = packet.ect
        ce = packet.ce
        sent_time = packet.sent_time
        retransmit = packet.retransmit
        packet.train = 1
        packet.size = segment
        admitted = self.enqueue(packet, queue_index)
        for i in range(1, n):
            seg = POOL.acquire(DATA, flow_id, src, dst, base_seq + i,
                               segment, service, ect)
            seg.ce = ce
            seg.sent_time = sent_time
            seg.retransmit = retransmit
            if self.enqueue(seg, queue_index):
                admitted = True
        return admitted

    def _drop(self, queue_index: int, packet: Packet) -> bool:
        self.drops += 1
        self.queue_drops[queue_index] += 1
        listeners = self.drop_listeners
        if listeners:
            for listener in listeners:
                listener(self, queue_index, packet)
        # The drop site is the packet's terminal consumer (listeners have
        # observed it above; pinned packets are left untouched).
        release(packet)
        return False

    def _transmit_next(self) -> None:
        item = self._sched_dequeue()
        if item is None:
            self.busy = False
            return
        queue_index, packet = item
        # Dequeue marking sees occupancy that still includes this packet.
        self._marker_on_dequeue(self, queue_index, packet)
        self.busy = True
        sim = self.sim
        if sim.auditor is None:
            # Unaudited ports ride the engine's fire-and-forget lane: no
            # Event object per transmission.  reset() cannot cancel such
            # a completion, so it carries the current reset epoch and
            # _transmission_done_ff discards stale generations.
            self._sim_at_ff(
                sim._now + self._tx_time(packet.size),
                self._transmission_done_ff, queue_index, packet,
                self._tx_epoch,
            )
            return
        # With a FabricAuditor installed the completion must be a live,
        # inspectable Event: the auditor's engine-hygiene and in-service
        # cross-checks read port._tx_event.
        self._tx_event = self._sim_at(
            sim._now + self._tx_time(packet.size),
            self._transmission_done, queue_index, packet,
        )

    def _transmission_done_ff(self, queue_index: int, packet: Packet,
                              epoch: int) -> None:
        # Stale generation: the port was reset while this completion was
        # in flight (the fire-and-forget lane has no cancel).
        if epoch != self._tx_epoch:
            return
        sim = self.sim
        profiler = sim.profiler
        if profiler is not None:
            profiler.count("tx")
        size = packet.size
        train = packet.train
        self._packet_count -= train
        self._byte_count -= size
        self._queue_packets[queue_index] -= train
        self._queue_bytes[queue_index] -= size
        pool = self.pool
        if pool is not None:
            pool.remove(size)
        self.link.deliver(packet)
        self.tx_packets += train
        self.tx_bytes += size
        self.queue_tx_bytes[queue_index] += size
        self.last_departure = sim._now
        listeners = self.dequeue_listeners
        if listeners:
            for listener in listeners:
                listener(self, queue_index, packet)
        self._transmit_next()

    def _transmission_done(self, queue_index: int, packet: Packet) -> None:
        # The packet has left the buffer only now that it is on the wire.
        self._tx_event = None
        self._transmission_done_ff(queue_index, packet, self._tx_epoch)

    # -- teardown ---------------------------------------------------------

    def reset(self) -> None:
        """Return the port to an empty, idle state.

        Required after :meth:`repro.sim.engine.Simulator.clear` (or any
        teardown that discards pending events): a cleared simulator drops
        the in-flight ``_transmission_done`` event, which would otherwise
        leave ``busy`` latched forever — the port would never transmit
        again — and leak buffer/pool occupancy.  ``reset`` cancels the
        in-flight transmission, discards all queued packets, zeroes the
        occupancy accounting, credits any shared pool, clears the
        marker's per-port state (:meth:`~repro.ecn.base.Marker.on_reset`)
        and re-anchors ``last_departure`` at the current time so idle
        detection does not compare against a pre-reset departure.
        Cumulative statistics (``tx_packets``, ``drops``, …) are
        preserved.
        """
        if self._tx_event is not None:
            self._tx_event.cancel()
            self._tx_event = None
        # Invalidate any fire-and-forget completion still in flight.
        self._tx_epoch += 1
        self.busy = False
        if self.pool is not None and self._packet_count:
            # Through the pool's credit API — never by mutating its
            # counters directly — so the negative-accounting guard and
            # any policy bookkeeping (shared-buffer per-port accounts)
            # see the bulk return like any other credit.
            self.pool.credit(self._packet_count, self._byte_count)
        # Occupancy counters are zeroed before the scheduler drops its
        # packets so observers of ``scheduler.clear`` (the auditor) never
        # see the port counting packets the scheduler already discarded.
        self._packet_count = 0
        self._byte_count = 0
        for queue_index in range(self.scheduler.n_queues):
            self._queue_packets[queue_index] = 0
            self._queue_bytes[queue_index] = 0
        self.scheduler.clear()
        self.marker.on_reset(self)
        self.last_departure = self.sim.now
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.on_port_reset(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Port({self.name}, {self._packet_count}pkts/"
            f"{self.scheduler.n_queues}q, busy={self.busy})"
        )
