"""Minimal structural interfaces shared across the network substrate.

We use :class:`typing.Protocol` rather than abstract base classes so the
hot-path objects (ports, hosts, switches) stay plain slotted classes with
no ABC machinery, while tests and type checkers can still express "this
argument is anything with a ``receive`` method".
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable, TYPE_CHECKING

from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .port import Port

__all__ = ["Device", "EnqueueListener", "DequeueListener", "DropListener"]


@runtime_checkable
class Device(Protocol):
    """Anything that can terminate a link: a host or a switch."""

    name: str

    def receive(self, packet: Packet) -> None:
        """Handle a packet arriving from a link."""
        ...


class EnqueueListener(Protocol):
    """Observer invoked after a packet is admitted into a port queue."""

    def __call__(self, port: "Port", queue_index: int, packet: Packet) -> None:
        ...


class DequeueListener(Protocol):
    """Observer invoked after a packet finishes serializing (departure)."""

    def __call__(self, port: "Port", queue_index: int, packet: Packet) -> None:
        ...


class DropListener(Protocol):
    """Observer invoked when a port drops a packet at admission."""

    def __call__(self, port: "Port", queue_index: int, packet: Packet) -> None:
        ...
