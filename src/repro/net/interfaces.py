"""Minimal structural interfaces shared across the network substrate.

We use :class:`typing.Protocol` rather than abstract base classes so the
hot-path objects (ports, hosts, switches) stay plain slotted classes with
no ABC machinery, while tests and type checkers can still express "this
argument is anything with a ``receive`` method".
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .packet import Packet

__all__ = ["Device"]


@runtime_checkable
class Device(Protocol):
    """Anything that can terminate a link: a host or a switch."""

    name: str

    def receive(self, packet: Packet) -> None:
        """Handle a packet arriving from a link."""
        ...
