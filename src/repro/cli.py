"""Command-line interface: run any paper experiment from the shell.

::

    python -m repro list
    python -m repro fig3                  # per-port victim (Fig. 3)
    python -m repro fig9 --duration 0.06  # RTT distributions
    python -m repro sweep --scheduler wfq --loads 0.3 0.5 --json out.json
    python -m repro sweep --profile tiny --cache-dir .repro-cache --resume
    python -m repro runs list --cache-dir .repro-cache
    python -m repro table1
    python -m repro theorem
    python -m repro pool                  # §II-B service-pool conjecture
    python -m repro coexist               # §V-B incremental deployment
    python -m repro chaos3 --loss-rates 0 0.001 0.01
    python -m repro chaos-sweep --profile tiny --model gilbert-elliott
    python -m repro fig3 --faults iid-loss:rate=0.001,links=bottleneck
    python -m repro sweep --topology clos:tiers=2,ports=16,oversub=2
    python -m repro xscale --profile tiny     # victim error, 48-1024 hosts

Every experiment command accepts the same execution flags —
``--json/--csv/--duration/--profile/--jobs/--audit`` — spelled
identically (they come from one shared parent parser).  ``--profile``
selects the scale profile (tiny/bench/paper; ``--scale`` is an alias)
and, for static experiments, sets the default simulated duration.

The sweep additionally understands the content-addressed run store:
``--cache-dir`` keys every point by its
:class:`~repro.store.ExperimentSpec` hash, ``--resume`` (the default
behaviour once a cache dir is given) skips completed points, and
``--force`` recomputes them.  ``repro runs list|show|diff|gc`` inspects
and maintains the store.

Each command prints the same rows the corresponding paper figure plots;
``--json``/``--csv`` additionally export machine-readable results.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, List, Optional

from .control.controller import ControllerSpec, set_controller_default
from .core.capabilities import capability_table
from .experiments import (ablations, analysis_validation, autotune, chaos,
                          extensions, largescale, marking_point, motivation,
                          sharedbuf, static_flows, xscale)
from .experiments.scale import BENCH, PAPER, TINY
from .metrics.export import rows_to_csv, to_json
from .metrics.fct import SizeClass
from .net.sharedbuf import SharedBufferSpec, set_shared_buffer_default
from .net.topology import TopologySpec, set_topology_default
from .sim.audit import set_audit_default
from .sim.faults import FaultSpec, set_fault_default
from .store import RunConfig, RunStore, diff_records

__all__ = ["main"]

PROFILES = {"tiny": TINY, "bench": BENCH, "paper": PAPER}

#: Where ``repro runs`` looks when ``--cache-dir`` is not given — the
#: same directory a bare ``sweep --cache-dir .repro-cache`` writes.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class SpecFlag:
    """One ``--flag name:key=val,…`` spec option every experiment
    command shares.

    Each instance declares the argparse option, parses its text into
    the spec object, and flips the matching process-wide default around
    the command (restored in a ``finally``), so every simulation the
    command builds — however deep inside experiment helpers — sees the
    requested spec.  Parse failures surface uniformly as
    ``--flag: <reason>`` via ``parser.error``.
    """

    flag: str
    dest: str
    help: str
    parse: Callable[[str], Any]
    set_default: Callable[[Any], None]
    #: ``append`` flags collect a tuple of specs; the rest hold one.
    repeatable: bool = False
    #: Value handed to ``set_default`` when restoring.
    cleared: Any = None

    def add_to(self, parser: argparse.ArgumentParser) -> None:
        if self.repeatable:
            parser.add_argument(self.flag, action="append",
                                metavar="SPEC", help=self.help)
        else:
            parser.add_argument(self.flag, metavar="SPEC", default=None,
                                help=self.help)

    def resolve(self, args) -> Any:
        """Parse this flag's text(s) off ``args`` (ValueError on bad
        input); None / () when the flag was not given."""
        value = getattr(args, self.dest, None)
        if self.repeatable:
            return tuple(self.parse(text) for text in (value or ()))
        return self.parse(value) if value else None

    def apply(self, spec: Any) -> bool:
        """Install ``spec`` as the process default; True if installed."""
        if spec is None or spec == ():
            return False
        self.set_default(spec)
        return True

    def clear(self) -> None:
        self.set_default(self.cleared)


SPEC_FLAGS = (
    SpecFlag(
        flag="--shared-buffer", dest="shared_buffer",
        parse=SharedBufferSpec.parse,
        set_default=set_shared_buffer_default,
        help="give every switch the command builds a shared memory all "
             "its ports draw from; SPEC is policy:key=val,key=val with "
             "policies complete / static / dt / bshare, e.g. "
             "'dt:capacity=200,alpha=2' or "
             "'bshare:capacity=128,target_delay=100e-6'",
    ),
    SpecFlag(
        flag="--faults", dest="faults", repeatable=True, cleared=(),
        parse=FaultSpec.parse, set_default=set_fault_default,
        help="inject a fault into every fabric the command builds; SPEC "
             "is model:key=val,key=val with models iid-loss / "
             "gilbert-elliott / crc-corrupt / flap, e.g. "
             "'iid-loss:rate=0.001,links=leaf*->spine*' or "
             "'flap:links=bottleneck,down=0.01,up=0.02' (repeatable)",
    ),
    SpecFlag(
        flag="--controller", dest="controller",
        parse=ControllerSpec.parse, set_default=set_controller_default,
        help="attach a closed-loop threshold controller to every fabric "
             "the command builds; SPEC is name:key=val,key=val with "
             "controllers theorem / cem, e.g. "
             "'theorem:period=0.0005,margin=1.5' or "
             "'cem:t1=0.01,k0=12,k1=24'",
    ),
    SpecFlag(
        flag="--topology", dest="topology",
        parse=TopologySpec.parse, set_default=set_topology_default,
        help="build every fabric the command uses from this declarative "
             "spec; SPEC is preset:key=val,key=val with presets "
             "single-bottleneck / leaf-spine / fat-tree / clos, e.g. "
             "'clos:tiers=2,ports=16,oversub=2' (256 hosts), "
             "'clos:tiers=3,ports=16' (1024 hosts) or 'fat-tree:k=8'",
    ),
)


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:8.1f}us"


def _profile(args):
    """The ScaleProfile selected by ``--profile``, or None."""
    name = getattr(args, "profile", None)
    return PROFILES[name] if name else None


def _trains(args) -> Optional[int]:
    """Packet-train width from ``--trains``, or None (per-packet)."""
    return getattr(args, "trains", None)


def _duration(args, fallback: float = 0.03) -> float:
    """Simulated seconds for a static experiment.

    Explicit ``--duration`` wins; otherwise the selected profile's
    static duration; otherwise ``fallback``.
    """
    if args.duration is not None:
        return args.duration
    profile = _profile(args)
    if profile is not None:
        return profile.static_duration
    return fallback


def _maybe_export(args, payload: Any) -> None:
    if getattr(args, "json", None):
        to_json(payload, args.json)
        print(f"\n[written {args.json}]")
    if getattr(args, "csv", None):
        if isinstance(payload, list) and payload:
            rows_to_csv(payload, args.csv)
            print(f"\n[written {args.csv}]")
        else:
            print("\n[--csv supported only for row-list results]",
                  file=sys.stderr)


# -- command implementations -------------------------------------------------

def cmd_fig1(args) -> Any:
    results = motivation.per_queue_standard_rtt(duration=_duration(args))
    print(f"{'queues':>6s} {'mean':>10s} {'p99':>10s}")
    for n_queues, stats in sorted(results.items()):
        print(f"{n_queues:6d} {_us(stats.mean)} {_us(stats.p99)}")
    return {str(k): asdict(v) for k, v in results.items()}


def cmd_fig2(args) -> Any:
    results = motivation.per_queue_fractional_throughput(
        duration=_duration(args))
    for threshold, gbps in sorted(results.items()):
        print(f"K={threshold:4.0f} pkts -> {gbps:5.2f} Gbps")
    return {str(k): v for k, v in results.items()}


def _victim(args, threshold: float, flows: int) -> Any:
    result = motivation.per_port_victim(threshold, flows,
                                        duration=_duration(args),
                                        trains=_trains(args))
    print(f"per-port K={threshold:.0f}, 1 flow vs {flows} flows:")
    print(f"  queue 1: {result.queue1_gbps:5.2f} Gbps")
    print(f"  queue 2: {result.queue2_gbps:5.2f} Gbps")
    print(f"  fair-share error: {result.fair_share_error:.2f}")
    return asdict(result)


def cmd_fig3(args) -> Any:
    return _victim(args, 16.0, 8)


def cmd_fig6(args) -> Any:
    return _victim(args, 65.0, 8)


def cmd_fig7(args) -> Any:
    return _victim(args, 65.0, 40)


def _trace_pair(traces) -> Any:
    enq, deq = traces["enqueue"], traces["dequeue"]
    print(f"  enqueue peak {enq.peak:3d} pkts | dequeue peak {deq.peak:3d} "
          f"pkts | reduction {100 * (1 - deq.peak / enq.peak):4.1f}%")
    return {"enqueue_peak": enq.peak, "dequeue_peak": deq.peak}


def cmd_fig4(args) -> Any:
    print("DCTCP marking point (4 flows, 1 Gbps):")
    return _trace_pair(marking_point.dctcp_enqueue_dequeue())


def cmd_fig5(args) -> Any:
    trace = marking_point.tcn_trace()
    print(f"TCN (dequeue-only): peak {trace.peak} pkts, "
          f"steady mean {trace.steady_mean:.1f}")
    return {"peak": trace.peak}


def cmd_fig8(args) -> Any:
    result = static_flows.weighted_fair_sharing("pmsb",
                                                duration=_duration(args),
                                                trains=_trains(args))
    print(f"PMSB DWRR 1:4 -> q1 {result.queue_gbps[0]:.2f} G, "
          f"q2 {result.queue_gbps[1]:.2f} G")
    return result.queue_gbps


def cmd_fig9(args) -> Any:
    results = static_flows.rtt_distribution(duration=_duration(args))
    print(f"{'scheme':18s} {'mean':>10s} {'p99':>10s}")
    for name, stats in results.items():
        print(f"{name:18s} {_us(stats.mean)} {_us(stats.p99)}")
    return {k: asdict(v) for k, v in results.items()}


def cmd_fig10(args) -> Any:
    result = static_flows.weighted_fair_sharing(
        "pmsb", flows_queue2=100, duration=max(_duration(args), 0.03),
        warmup_fraction=0.5, stagger=5e-3)
    print(f"PMSB DWRR 1:100 -> q1 {result.queue_gbps[0]:.2f} G, "
          f"q2 {result.queue_gbps[1]:.2f} G")
    return result.queue_gbps


def cmd_fig11(args) -> Any:
    print("PMSB marking point (4 flows, 1 Gbps):")
    return _trace_pair(marking_point.pmsb_trace())


def cmd_fig12(args) -> Any:
    print("PMSB(e) marking point (4 flows, 1 Gbps):")
    return _trace_pair(marking_point.pmsbe_trace())


def _policy(result) -> Any:
    for _t0, _t1, label in result.phases:
        rates = result.phase_gbps[label]
        cells = "  ".join(f"q{q + 1}={rates[q]:5.2f}G" for q in sorted(rates))
        print(f"  {label:12s} {cells}")
    return {label: result.phase_gbps[label]
            for _t0, _t1, label in result.phases}


def cmd_fig13(args) -> Any:
    print("PMSB over SP+WFQ (expect 5 / 2.5 / 2.5 G settled):")
    return _policy(static_flows.scheduler_sp_wfq(duration=_duration(args)))


def cmd_fig14(args) -> Any:
    print("PMSB over SP (expect 5 / 3 / 2 G settled):")
    return _policy(static_flows.scheduler_sp(duration=_duration(args)))


def cmd_fig15(args) -> Any:
    print("PMSB over WFQ (expect 10 G -> 5 / 5 G):")
    return _policy(static_flows.scheduler_wfq(duration=_duration(args)))


def cmd_sweep(args) -> Any:
    profile = _profile(args) or BENCH
    if args.loads:
        profile = replace(profile, loads=tuple(args.loads))
    config = RunConfig(
        profile=profile,
        seed=args.seed,
        jobs=args.jobs,
        audit=True if args.audit else None,
        profile_events=args.profile_events,
        cache_dir=args.cache_dir,
        force=args.force,
        shards=args.shards,
        trains=_trains(args),
    )
    rows = largescale.run_fct_sweep(scheduler_name=args.scheduler,
                                    config=config)
    print(f"{'scheme':10s} {'load':>5s} {'overall':>9s} {'sm avg':>9s} "
          f"{'sm p99':>9s} {'lg avg':>9s}")
    for row in rows:
        def fmt(size_class, stat):
            value = row.stat(size_class, stat)
            return f"{value * 1e3:8.3f}m" if value is not None else "      --"
        print(f"{row.scheme:10s} {row.load:5.1f} {fmt(None, 'mean')} "
              f"{fmt(SizeClass.SMALL, 'mean')} {fmt(SizeClass.SMALL, 'p99')} "
              f"{fmt(SizeClass.LARGE, 'mean')}")
    return rows


def cmd_table1(args) -> Any:
    print(capability_table())
    return None


def cmd_theorem(args) -> Any:
    rows = analysis_validation.threshold_bound_sweep(
        duration=_duration(args))
    print(f"{'k_i/bound':>9s} {'predicted ok':>13s} {'utilization':>12s}")
    for row in rows:
        print(f"{row.queue_threshold / row.bound:9.2f} "
              f"{str(row.predicted_underflow_free):>13s} "
              f"{row.utilization:12.3f}")
    return rows


def cmd_ablation(args) -> Any:
    print("blindness scale sweep (1:8 victim scenario):")
    rows = ablations.blindness_aggressiveness(duration=_duration(args))
    for row in rows:
        print(f"  scale {row.parameter:4.2f}: q1 {row.queue1_gbps:5.2f} G, "
              f"err {row.fair_share_error:4.2f}, "
              f"RTT p99 {row.rtt_p99_us:4.0f} us")
    return rows


def cmd_pool(args) -> Any:
    result = extensions.service_pool_victim(
        config=RunConfig(duration=_duration(args)))
    print(f"shared-pool marking, disjoint links:")
    print(f"  port A (1 flow):  {result.port_a_gbps:5.2f} G "
          f"({result.port_a_utilization * 100:.0f}% of its own link)")
    print(f"  port B (8 flows): {result.port_b_gbps:5.2f} G")
    return asdict(result)


def cmd_burst(args) -> Any:
    print("32-way micro-burst vs buffer-sharing policy (DT alpha=2):")
    config = RunConfig(duration=max(_duration(args), 0.04))
    rows = []
    for hog in (True, False):
        for policy in extensions.BUFFER_POLICIES:
            rows.append(extensions.microburst_absorption(
                policy=policy, hog_active=hog, dt_alpha=2.0, config=config))
    for row in rows:
        p99 = (f"{row.burst_fct_p99 * 1e3:6.2f}ms"
               if row.burst_fct_p99 else "    n/a")
        print(f"  hog={str(row.hog_active):5s} {row.policy:7s} "
              f"drops={row.burst_drops:4d} p99={p99}")
    return rows


def cmd_transports(args) -> Any:
    print("1:8 victim scenario across transports:")
    config = RunConfig(duration=_duration(args))
    rows = []
    for transport in ("dctcp", "dcqcn"):
        for marker in ("per-port", "pmsb"):
            rows.append(extensions.transport_agnostic_victim(
                transport=transport, marker=marker, config=config))
    for row in rows:
        print(f"  {row.transport:6s} {row.marker:9s} "
              f"victim={row.victim_gbps:5.2f}G "
              f"others={row.others_gbps:5.2f}G "
              f"err={row.fair_share_error:.2f}")
    return rows


def _chaos_rates(args) -> List[float]:
    return list(args.loss_rates) if args.loss_rates else list(
        chaos.DEFAULT_LOSS_RATES)


def _print_victim_rows(rows) -> None:
    print(f"{'scheme':16s} {'loss':>8s} {'q1':>6s} {'q2':>6s} "
          f"{'err':>5s} {'drops':>7s}")
    for row in rows:
        dropped = sum(row.drops.values())
        print(f"{row.scheme:16s} {row.loss_rate:8.4f} "
              f"{row.queue1_gbps:5.2f}G {row.queue2_gbps:5.2f}G "
              f"{row.fair_share_error:5.2f} {dropped:7d}")


def cmd_chaos3(args) -> Any:
    print(f"1:8 victim scenario under {args.model} loss "
          f"(bottleneck wire):")
    config = RunConfig(duration=_duration(args))
    rows = []
    for scheme in ("per-port", "pmsb"):
        for rate in _chaos_rates(args):
            rows.append(chaos.chaos_victim(
                scheme, loss_rate=rate, model=args.model, config=config))
    _print_victim_rows(rows)
    return rows


def cmd_chaos8(args) -> Any:
    print(f"PMSB DWRR 1:4 fair sharing under {args.model} loss:")
    config = RunConfig(duration=_duration(args))
    rows = [chaos.chaos_fair_share("pmsb", loss_rate=rate,
                                   model=args.model, config=config)
            for rate in _chaos_rates(args)]
    _print_victim_rows(rows)
    return rows


def cmd_chaos_sweep(args) -> Any:
    profile = _profile(args) or BENCH
    if args.loads:
        profile = replace(profile, loads=tuple(args.loads))
    config = RunConfig(
        profile=profile,
        seed=args.seed,
        jobs=args.jobs,
        audit=True if args.audit else None,
        cache_dir=args.cache_dir,
        force=args.force,
        shards=args.shards,
    )
    rows = chaos.run_chaos_sweep(
        scheme_names=tuple(args.schemes),
        scheduler_name=args.scheduler,
        loss_rates=tuple(_chaos_rates(args)),
        model=args.model,
        config=config,
    )
    print(f"{'scheme':16s} {'load':>5s} {'loss':>8s} {'overall':>9s} "
          f"{'sm p99':>9s} {'drops':>8s}")
    for row in rows:
        def fmt(size_class, stat):
            value = row.stat(size_class, stat)
            return f"{value * 1e3:8.3f}m" if value is not None else "      --"
        print(f"{row.fct.scheme:16s} {row.fct.load:5.1f} "
              f"{row.loss_rate:8.4f} {fmt(None, 'mean')} "
              f"{fmt(SizeClass.SMALL, 'p99')} "
              f"{sum(row.drops.values()):8d}")
    return rows


def cmd_sharedbuf(args) -> Any:
    profile = _profile(args) or BENCH
    config = RunConfig(
        profile=profile,
        seed=args.seed,
        jobs=args.jobs,
        audit=True if args.audit else None,
        cache_dir=args.cache_dir,
        force=args.force,
    )
    policies = sharedbuf.default_policies(
        capacity=args.capacity,
        alphas=tuple(args.alphas),
        target_delays=tuple(args.target_delays),
    )
    rows = sharedbuf.run_sharedbuf_sweep(
        scheme_names=tuple(args.schemes),
        scheduler_name=args.scheduler,
        policies=policies,
        config=config,
    )
    print(f"{'scheme':16s} {'policy':7s} {'knob':>8s} {'victim':>7s} "
          f"{'hogs':>7s} {'err':>6s} {'bdrops':>6s} {'bloss':>6s} "
          f"{'peak':>5s}")
    for row in rows:
        knob = (f"a={row.alpha:g}" if row.policy == "dt"
                else f"{row.target_delay * 1e6:.0f}us"
                if row.policy == "bshare" else "--")
        print(f"{row.scheme:16s} {row.policy:7s} {knob:>8s} "
              f"{row.victim_gbps:6.2f}G {row.hogs_gbps:6.2f}G "
              f"{row.victim_err:6.3f} {row.burst_drops:6d} "
              f"{row.burst_loss_fraction:6.3f} {row.pool_peak:5d}")
    return rows


def cmd_autotune(args) -> Any:
    profile = _profile(args) or BENCH
    report = autotune.run_autotune(
        grid=tuple(args.grid),
        scheduler_name=args.scheduler,
        load_lo=args.load_lo,
        load_hi=args.load_hi,
        profile=profile,
        seed=args.seed,
        chaos=args.chaos,
        rounds=args.rounds,
        population=args.population,
        jobs=args.jobs,
        store=args.cache_dir,
        audit=bool(args.audit),
        force=args.force,
    )
    chaos_note = " + uplink flap" if args.chaos else ""
    print(f"X-AUTOTUNE: load shift {args.load_lo:.2f} -> "
          f"{args.load_hi:.2f}{chaos_note}, small-flow p99 FCT "
          f"(t_shift {report.best_static.t_shift * 1e3:.2f} ms)")
    print(f"{'K static':>9s} {'sm p99':>10s} {'sm mean':>10s} "
          f"{'overall':>10s}")
    for row in report.static_rows:
        small_mean = (f"{row.small_mean * 1e6:9.1f}u"
                      if row.small_mean is not None else "        --")
        print(f"{row.k0:9.0f} {row.objective * 1e6:9.1f}u {small_mean} "
              f"{row.overall_mean * 1e6:9.1f}u")
    best = report.best_tuned
    print(f"best static  K={report.best_static.k0:<4.0f}"
          f" -> {report.best_static.objective * 1e6:9.1f}u")
    print(f"best tuned   K={best.k0:.0f}->{best.k1:<4.0f}"
          f" -> {best.objective * 1e6:9.1f}u "
          f"({report.improvement_percent:+.1f}% vs static, "
          f"{report.n_evaluations} candidates)")
    return report.to_payload()


def cmd_xscale(args) -> Any:
    profile = _profile(args) or BENCH
    config = RunConfig(
        profile=profile,
        seed=args.seed,
        jobs=args.jobs,
        audit=True if args.audit else None,
        cache_dir=args.cache_dir,
        force=args.force,
        shards=args.shards,
    )
    rows = xscale.run_xscale_sweep(
        scheme_names=tuple(args.schemes),
        scheduler_name=args.scheduler,
        ladder=tuple(args.ladder) if args.ladder else xscale.SCALE_LADDER,
        hogs=args.hogs,
        config=config,
    )
    print(f"{'hosts':>6s} {'fabric':30s} {'scheme':10s} {'victim':>7s} "
          f"{'hogs':>7s} {'err':>6s} {'build':>8s}")
    for row in rows:
        print(f"{row.n_hosts:6d} {row.topology:30s} {row.scheme:10s} "
              f"{row.victim_gbps:6.2f}G {row.hogs_gbps:6.2f}G "
              f"{row.victim_err:6.3f} {row.build_s * 1e3:6.1f}ms")
    return rows


def cmd_coexist(args) -> Any:
    config = RunConfig(duration=_duration(args))
    baseline = extensions.pmsbe_coexistence(False, config=config)
    upgraded = extensions.pmsbe_coexistence(True, config=config)
    print("incremental PMSB(e) deployment (per-port switch, DCTCP peers):")
    print(f"  stock DCTCP victim: {baseline.victim_gbps:5.2f} G "
          f"(err {baseline.fair_share_error:.2f})")
    print(f"  upgraded victim:    {upgraded.victim_gbps:5.2f} G "
          f"(err {upgraded.fair_share_error:.2f})")
    return {"baseline": asdict(baseline), "upgraded": asdict(upgraded)}


COMMANDS = {
    "fig1": (cmd_fig1, "Fig. 1 — per-queue standard threshold RTT"),
    "fig2": (cmd_fig2, "Fig. 2 — fractional threshold throughput"),
    "fig3": (cmd_fig3, "Fig. 3 — per-port victim (K=16, 1:8)"),
    "fig4": (cmd_fig4, "Fig. 4 — DCTCP enqueue vs dequeue marking"),
    "fig5": (cmd_fig5, "Fig. 5 — TCN marking point"),
    "fig6": (cmd_fig6, "Fig. 6 — per-port K=65, 1:8"),
    "fig7": (cmd_fig7, "Fig. 7 — per-port K=65, 1:40"),
    "fig8": (cmd_fig8, "Fig. 8 — PMSB DWRR fair sharing (1:4)"),
    "fig9": (cmd_fig9, "Fig. 9 — RTT distribution by scheme"),
    "fig10": (cmd_fig10, "Fig. 10 — PMSB fair sharing (1:100)"),
    "fig11": (cmd_fig11, "Fig. 11 — PMSB marking point"),
    "fig12": (cmd_fig12, "Fig. 12 — PMSB(e) marking point"),
    "fig13": (cmd_fig13, "Fig. 13 — SP+WFQ policy"),
    "fig14": (cmd_fig14, "Fig. 14 — SP policy"),
    "fig15": (cmd_fig15, "Fig. 15 — WFQ policy"),
    "sweep": (cmd_sweep, "Figs. 16-27 — large-scale FCT sweep"),
    "table1": (cmd_table1, "Table I — scheme capabilities"),
    "theorem": (cmd_theorem, "Theorem IV.1 — threshold bound validation"),
    "ablation": (cmd_ablation, "AB1 — blindness aggressiveness sweep"),
    "pool": (cmd_pool, "E-POOL — service-pool conjecture (§II-B)"),
    "coexist": (cmd_coexist, "E-COEXIST — incremental deployment (§V-B)"),
    "burst": (cmd_burst, "E-BURST — micro-burst vs buffer policy"),
    "transports": (cmd_transports,
                   "E-TRANSPORT — PMSB across DCTCP and DCQCN"),
    "chaos3": (cmd_chaos3, "C-FIG3 — victim scenario under wire loss"),
    "chaos8": (cmd_chaos8, "C-FIG8 — PMSB fair sharing under wire loss"),
    "chaos-sweep": (cmd_chaos_sweep,
                    "C-SWEEP — FCT sweep across loss rates"),
    "sharedbuf": (cmd_sharedbuf,
                  "X-SHAREDBUF — buffer-contention sweep (DT + BShare)"),
    "autotune": (cmd_autotune,
                 "X-AUTOTUNE — static vs closed-loop PMSB thresholds"),
    "xscale": (cmd_xscale,
               "X-SCALE — victim-flow error vs fabric size (48-1024)"),
}

#: Commands that understand the run-store cache flags.
_STORE_BACKED = ("sweep", "chaos-sweep", "sharedbuf", "autotune", "xscale")


# -- run-store maintenance commands ------------------------------------------

def _record_json(record) -> str:
    return json.dumps(
        {"key": record.key, "spec": record.spec, "result": record.result,
         "provenance": record.provenance},
        indent=2, sort_keys=True)


def _resolve_record(store: RunStore, key_prefix: str):
    """The unique record matching ``key_prefix``, or None (with a
    message on stderr) on a miss or an ambiguous prefix."""
    matches = store.find(key_prefix)
    if not matches:
        print(f"no record matching {key_prefix!r} under {store.root}",
              file=sys.stderr)
        return None
    if len(matches) > 1:
        print(f"{key_prefix!r} is ambiguous ({len(matches)} matches):",
              file=sys.stderr)
        for record in matches:
            print(f"  {record.key}", file=sys.stderr)
        return None
    return matches[0]


def _elide_params(params: Any, budget: int = 44) -> str:
    """Render a spec's params as key-sorted ``k=v`` cells that fit
    ``budget`` columns.

    Entries are dropped whole — never cut mid-key or mid-value — and
    the elision is explicit: ``alpha=2,policy=dt +3 more``.  The first
    entry always prints, even when it alone blows the budget, so every
    row names at least one parameter.
    """
    if isinstance(params, (list, tuple)):
        params = dict(params)
    if not params:
        return "-"
    items = [f"{key}={params[key]}" for key in sorted(params)]
    cell = items[0]
    shown = 1
    for item in items[1:]:
        trial = f"{cell},{item}"
        # Reserve room for a worst-case " +NN more" tail.
        if len(trial) + 9 > budget:
            break
        cell = trial
        shown += 1
    if shown < len(items):
        cell += f" +{len(items) - shown} more"
    return cell


def cmd_runs_list(args) -> int:
    store = RunStore(args.cache_dir)
    records = list(store.records())
    if not records:
        print(f"[no records under {store.root}]")
        return 0
    print(f"{'key':12s} {'experiment':12s} {'scheme':10s} {'sched':5s} "
          f"{'load':>5s} {'seed':>10s} {'profile':8s} {'elapsed':>9s} "
          f"{'params':s}")
    for record in records:
        spec = record.spec
        elapsed = record.provenance.get("elapsed_s")
        print(f"{record.key[:12]:12s} {spec.get('experiment', '?'):12s} "
              f"{spec.get('scheme', '-'):10s} "
              f"{spec.get('scheduler', '-'):5s} "
              f"{spec.get('load', 0.0):5.2f} {spec.get('seed', 0):10d} "
              f"{record.provenance.get('profile', '-'):8s} "
              f"{f'{elapsed:8.2f}s' if elapsed is not None else '       --'} "
              f"{_elide_params(spec.get('params'))}")
    print(f"[{len(records)} record(s) under {store.root}]")
    return 0


def cmd_runs_show(args) -> int:
    record = _resolve_record(RunStore(args.cache_dir), args.key)
    if record is None:
        return 1
    print(_record_json(record))
    return 0


def cmd_runs_diff(args) -> int:
    store = RunStore(args.cache_dir)
    record_a = _resolve_record(store, args.key_a)
    record_b = _resolve_record(store, args.key_b)
    if record_a is None or record_b is None:
        return 1
    delta = diff_records(record_a, record_b)
    if not delta["spec"] and not delta["result"]:
        print("records are identical")
        return 0
    for section in ("spec", "result"):
        for field_name, (va, vb) in delta[section].items():
            print(f"{section}.{field_name}: {va!r} -> {vb!r}")
    return 0


def cmd_runs_gc(args) -> int:
    removed = RunStore(args.cache_dir).gc(
        older_than_days=args.older_than_days)
    total = sum(removed.values())
    detail = ", ".join(f"{k}={v}" for k, v in sorted(removed.items()) if v)
    print(f"removed {total} file(s)" + (f" ({detail})" if detail else ""))
    return 0


RUNS_COMMANDS = {
    "list": (cmd_runs_list, "list stored run records"),
    "show": (cmd_runs_show, "print one record (by key prefix) as JSON"),
    "diff": (cmd_runs_diff, "field-level diff of two records"),
    "gc": (cmd_runs_gc, "reclaim temp files and stale/aged records"),
}


def build_parser() -> argparse.ArgumentParser:
    # One shared parent so every experiment command spells the common
    # flags identically (and `fig3 --help` documents the same contract
    # as `sweep --help`).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--json", help="write results as JSON")
    common.add_argument("--csv", help="write row results as CSV")
    common.add_argument("--duration", type=float, default=None,
                        help="simulated seconds for static experiments "
                             "(default: the profile's static duration, "
                             "else 0.03)")
    common.add_argument("--profile", "--scale", dest="profile",
                        choices=tuple(PROFILES), default=None,
                        help="scale profile (tiny/bench/paper): sweep "
                             "fabric size and static default duration; "
                             "--scale is an alias")
    common.add_argument("--jobs", type=int, default=None,
                        help="worker processes (1 = serial, 0 = all "
                             "cores; points are independent, results "
                             "are identical at any jobs level)")
    common.add_argument("--audit", action="store_true",
                        help="run under the fabric invariant auditor "
                             "(cross-layer conservation checks; raises "
                             "on the first violation)")
    common.add_argument("--shards", type=int, default=None,
                        help="split each scenario across N conservative-"
                             "lookahead shard processes (leaf/pod "
                             "partition, deterministic merge; needs a "
                             "multi-switch fabric — see docs/API.md)")
    common.add_argument("--trains", type=int, default=None,
                        help="coalesce long-flow bursts into packet "
                             "trains of up to N MTU segments (one event "
                             "per train; tolerance-accurate, ports fall "
                             "back per-packet near marking thresholds — "
                             "see EXPERIMENTS.md)")
    for spec_flag in SPEC_FLAGS:
        spec_flag.add_to(common)

    store_dir = argparse.ArgumentParser(add_help=False)
    store_dir.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                           help="run-store root directory "
                                f"(default: {DEFAULT_CACHE_DIR})")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMSB (ICDCS 2018) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, (_fn, help_text) in COMMANDS.items():
        cmd = sub.add_parser(name, help=help_text, parents=[common])
        if name in _STORE_BACKED:
            cmd.add_argument("--scheduler", choices=("dwrr", "wfq"),
                             default="dwrr")
            cmd.add_argument("--loads", type=float, nargs="+",
                             help="override the profile's load points")
            cmd.add_argument("--seed", type=int, default=1)
            cmd.add_argument("--cache-dir", default=None,
                             help="content-addressed run store: completed "
                                  "points are persisted here and skipped "
                                  "on re-run")
            cmd.add_argument("--resume", action="store_true",
                             help="resume an interrupted sweep from "
                                  "--cache-dir (this is the default "
                                  "behaviour whenever a cache dir is "
                                  "given)")
            cmd.add_argument("--force", action="store_true",
                             help="recompute cached points and overwrite "
                                  "their records")
        if name == "sweep":
            cmd.add_argument("--profile-events", action="store_true",
                             help="print a per-run event/heap profile "
                                  "(events/sec, category counters, heap "
                                  "size over time)")
        if name in ("chaos3", "chaos8", "chaos-sweep"):
            cmd.add_argument("--model",
                             choices=("iid-loss", "gilbert-elliott",
                                      "crc-corrupt"),
                             default="iid-loss",
                             help="loss model to inject")
            cmd.add_argument("--loss-rates", type=float, nargs="+",
                             help="average per-packet loss rates "
                                  f"(default: "
                                  f"{' '.join(str(r) for r in chaos.DEFAULT_LOSS_RATES)})")
        if name == "chaos-sweep":
            cmd.add_argument("--schemes", nargs="+",
                             default=list(chaos.CHAOS_SCHEMES),
                             help="schemes to compare "
                                  f"(default: {' '.join(chaos.CHAOS_SCHEMES)})")
        if name == "sharedbuf":
            cmd.add_argument("--schemes", nargs="+",
                             default=list(sharedbuf.SHAREDBUF_SCHEMES),
                             help="marking schemes to compare "
                                  f"(default: "
                                  f"{' '.join(sharedbuf.SHAREDBUF_SCHEMES)})")
            cmd.add_argument("--capacity", type=int,
                             default=sharedbuf.DEFAULT_CAPACITY,
                             help="switch-wide shared memory in packets "
                                  f"(default: {sharedbuf.DEFAULT_CAPACITY})")
            cmd.add_argument("--alphas", type=float, nargs="+",
                             default=list(sharedbuf.DEFAULT_ALPHAS),
                             help="dynamic-threshold alpha grid "
                                  f"(default: "
                                  f"{' '.join(str(a) for a in sharedbuf.DEFAULT_ALPHAS)})")
            cmd.add_argument("--target-delays", type=float, nargs="+",
                             default=list(sharedbuf.DEFAULT_TARGET_DELAYS),
                             help="BShare queueing-delay targets in "
                                  "seconds (default: "
                                  f"{' '.join(str(d) for d in sharedbuf.DEFAULT_TARGET_DELAYS)})")
        if name == "xscale":
            cmd.add_argument("--schemes", nargs="+",
                             default=list(xscale.XSCALE_SCHEMES),
                             help="marking schemes to compare "
                                  f"(default: "
                                  f"{' '.join(xscale.XSCALE_SCHEMES)})")
            cmd.add_argument("--hogs", type=int, default=8,
                             help="hog flows crushing the victim's "
                                  "downlink (default: 8)")
            cmd.add_argument("--ladder", nargs="+", metavar="SPEC",
                             help="topology specs to walk instead of "
                                  "the built-in 48-1024 host Clos "
                                  "ladder, e.g. "
                                  "'clos:tiers=2,ports=16,oversub=2'")
        if name == "autotune":
            cmd.add_argument("--grid", type=float, nargs="+",
                             default=list(autotune.DEFAULT_GRID),
                             help="port-threshold grid in packets "
                                  f"(default: "
                                  f"{' '.join(str(k) for k in autotune.DEFAULT_GRID)})")
            cmd.add_argument("--load-lo", type=float, default=0.3,
                             help="phase-A offered load (default: 0.3)")
            cmd.add_argument("--load-hi", type=float, default=0.7,
                             help="phase-B offered load after the shift "
                                  "(default: 0.7)")
            cmd.add_argument("--chaos", action="store_true",
                             help="also flap a spine uplink for 2 ms "
                                  "right after the load shift")
            cmd.add_argument("--rounds", type=int, default=3,
                             help="cross-entropy rounds (default: 3)")
            cmd.add_argument("--population", type=int, default=6,
                             help="candidates drawn per round "
                                  "(default: 6)")

    runs = sub.add_parser("runs",
                          help="inspect the content-addressed run store")
    runs_sub = runs.add_subparsers(dest="runs_command")
    for name, (_fn, help_text) in RUNS_COMMANDS.items():
        runs_cmd = runs_sub.add_parser(name, help=help_text,
                                       parents=[store_dir])
        if name == "show":
            runs_cmd.add_argument("key", help="record key (prefix ok)")
        elif name == "diff":
            runs_cmd.add_argument("key_a", help="first key (prefix ok)")
            runs_cmd.add_argument("key_b", help="second key (prefix ok)")
        elif name == "gc":
            runs_cmd.add_argument("--older-than-days", type=float,
                                  default=None,
                                  help="also remove records older than "
                                       "this many days")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # `repro runs show … | head` closes our stdout mid-print; exit
        # quietly instead of dumping a traceback.  Point the fd at
        # /dev/null so the interpreter's shutdown flush stays silent.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(argv: Optional[List[str]]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        for name, (_fn, help_text) in COMMANDS.items():
            print(f"  {name:10s} {help_text}")
        print(f"  {'runs':10s} run-store maintenance "
              f"({'/'.join(RUNS_COMMANDS)})")
        return 0
    if args.command == "runs":
        if args.runs_command is None:
            for name, (_fn, help_text) in RUNS_COMMANDS.items():
                print(f"  runs {name:5s} {help_text}")
            return 0
        fn, _help = RUNS_COMMANDS[args.runs_command]
        return fn(args)
    if args.command in _STORE_BACKED:
        if (args.resume or args.force) and not args.cache_dir:
            parser.error("--resume/--force require --cache-dir")
    fn, _help = COMMANDS[args.command]
    resolved = []
    for spec_flag in SPEC_FLAGS:
        try:
            resolved.append((spec_flag, spec_flag.resolve(args)))
        except ValueError as exc:
            parser.error(f"{spec_flag.flag}: {exc}")
    audit_on = getattr(args, "audit", False)
    # Flip the process-wide defaults so every simulation the command
    # builds — including ones created deep inside experiment helpers —
    # attaches a FabricAuditor / injects the requested faults / builds
    # the requested fabric / draws every switch's ports from a shared
    # buffer.
    if audit_on:
        set_audit_default(True)
    applied = [spec_flag for spec_flag, value in resolved
               if spec_flag.apply(value)]
    try:
        payload = fn(args)
    finally:
        if audit_on:
            set_audit_default(False)
        for spec_flag in applied:
            spec_flag.clear()
    if payload is not None:
        _maybe_export(args, payload)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
