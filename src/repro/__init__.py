"""PMSB: per-Port ECN Marking with Selective Blindness.

A packet-level reproduction of "Support ECN in Multi-Queue Datacenter
Networks via per-Port Marking with Selective Blindness" (ICDCS 2018),
including the complete simulation substrate it runs on: a discrete-event
network simulator, multi-queue schedulers, all baseline ECN marking
schemes (per-queue, per-port, service-pool, MQ-ECN, TCN), a DCTCP
transport, datacenter workloads, and the paper's experiment harness.

Quickstart::

    from repro import (Simulator, TopologySpec, PmsbMarker,
                       DwrrScheduler, Flow, open_flow)

    sim = Simulator()
    net = TopologySpec.parse("single-bottleneck:senders=9").build(
        sim,
        scheduler_factory=lambda: DwrrScheduler(2),
        marker_factory=lambda: PmsbMarker(port_threshold_packets=16),
    )
    handles = [open_flow(net, Flow(src=i, dst=9, service=0 if i == 0 else 1))
               for i in range(9)]
    sim.run(until=0.1)

Any folded-Clos fabric is one spec away — e.g.
``TopologySpec.parse("clos:tiers=3,ports=16")`` builds a 1024-host
fat-tree with derived ECMP routes.
"""

from .core import (
    AcceptAllFilter,
    CAPABILITIES,
    EcnFilter,
    PmsbMarker,
    RttEcnFilter,
    SchemeCapabilities,
    SteadyStateModel,
    bdp_packets,
    capability_table,
    port_threshold_lower_bound,
    queue_threshold_lower_bound,
)
from .ecn import (
    BufferPool,
    MarkPoint,
    Marker,
    MqEcnMarker,
    NullMarker,
    PerPortMarker,
    PerQueueMarker,
    RedMarker,
    ServicePoolMarker,
    TcnMarker,
    fractional_thresholds,
    standard_thresholds,
)
from .metrics import (
    FctCollector,
    QueueOccupancyTrace,
    SizeClass,
    SummaryStats,
    ThroughputMeter,
    summarize,
)
from .net import (
    ClosGenerator,
    Host,
    Link,
    MTU_BYTES,
    Network,
    Packet,
    Port,
    Switch,
    TopologySpec,
    fat_tree,
    leaf_spine,
    single_bottleneck,
)
from .scheduling import (
    DwrrScheduler,
    FifoScheduler,
    Scheduler,
    SpWfqScheduler,
    StrictPriorityScheduler,
    WfqScheduler,
    WrrScheduler,
)
from .sim import FabricAuditor, InvariantViolation, Simulator, make_rng
from .store import ExperimentSpec, RunConfig, RunRecord, RunStore
from .transport import (
    ClassicEcnSender,
    DctcpConfig,
    DctcpReceiver,
    DctcpSender,
    Flow,
    FlowHandle,
    open_flow,
    open_flows,
)
from .workloads import PAPER_MIX, PoissonFlowGenerator, WEB_SEARCH

__version__ = "1.0.0"

__all__ = [
    "AcceptAllFilter",
    "BufferPool",
    "CAPABILITIES",
    "ClassicEcnSender",
    "ClosGenerator",
    "DctcpConfig",
    "DctcpReceiver",
    "DctcpSender",
    "DwrrScheduler",
    "EcnFilter",
    "ExperimentSpec",
    "FabricAuditor",
    "FctCollector",
    "FifoScheduler",
    "Flow",
    "FlowHandle",
    "Host",
    "InvariantViolation",
    "Link",
    "MTU_BYTES",
    "MarkPoint",
    "Marker",
    "MqEcnMarker",
    "Network",
    "NullMarker",
    "PAPER_MIX",
    "Packet",
    "PerPortMarker",
    "PerQueueMarker",
    "PmsbMarker",
    "PoissonFlowGenerator",
    "Port",
    "QueueOccupancyTrace",
    "RedMarker",
    "RttEcnFilter",
    "RunConfig",
    "RunRecord",
    "RunStore",
    "Scheduler",
    "SchemeCapabilities",
    "ServicePoolMarker",
    "Simulator",
    "SizeClass",
    "SpWfqScheduler",
    "SteadyStateModel",
    "StrictPriorityScheduler",
    "SummaryStats",
    "Switch",
    "TcnMarker",
    "ThroughputMeter",
    "TopologySpec",
    "WEB_SEARCH",
    "WfqScheduler",
    "WrrScheduler",
    "bdp_packets",
    "capability_table",
    "fat_tree",
    "fractional_thresholds",
    "leaf_spine",
    "make_rng",
    "open_flow",
    "open_flows",
    "port_threshold_lower_bound",
    "queue_threshold_lower_bound",
    "single_bottleneck",
    "standard_thresholds",
    "summarize",
]
