"""Content-addressed run store (specs, records, persistence).

The paper's evaluation is dozens of (scheme, scheduler, load, seed)
points taking hours at the PAPER profile; this package makes each point
cacheable, addressable and resumable instead of ephemeral stdout:

- :class:`ExperimentSpec` canonically identifies a point and hashes to
  its content address;
- :class:`RunConfig` carries execution knobs (duration / profile / seed
  / jobs / audit / cache-dir) as one object instead of scattered kwargs;
- :class:`RunStore` persists :class:`RunRecord` results atomically so
  concurrent workers and killed runs never corrupt the cache;
- the ``repro runs`` CLI group lists, shows, diffs and garbage-collects
  stored records.
"""

from .spec import (ExperimentSpec, RunConfig, SPEC_SCHEMA_VERSION, UNSET,
                   resolve_run_config)
from .runstore import (RunRecord, RunStore, diff_records, git_revision,
                       make_provenance)

__all__ = [
    "ExperimentSpec",
    "RunConfig",
    "RunRecord",
    "RunStore",
    "SPEC_SCHEMA_VERSION",
    "UNSET",
    "diff_records",
    "git_revision",
    "make_provenance",
    "resolve_run_config",
]
