"""Content-addressed persistence for experiment results.

Every completed experiment point becomes one :class:`RunRecord` — spec,
result payload, provenance — filed under the SHA-256 key of its
:class:`~repro.store.spec.ExperimentSpec`:

::

    <root>/
        runs/<key>.json      # one single-line JSON record per point
        STORE_FORMAT         # store layout version

Records are single-line JSON (JSON-lines compatible: ``cat runs/*.json``
is a valid ``.jsonl`` stream).  Writes go through a temp file in the
same directory followed by :func:`os.replace`, so a record is either
fully present or absent — concurrent ``run_parallel`` workers and a
``kill -9`` mid-write can never corrupt the store, which is what makes
``--resume`` trustworthy.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from .spec import ExperimentSpec, SPEC_SCHEMA_VERSION, CODE_VERSION

__all__ = ["RunRecord", "RunStore", "diff_records", "git_revision",
           "make_provenance"]

#: Version of the on-disk layout (not of the result schema — that lives
#: in the spec).  Bump only if the directory structure changes.
STORE_FORMAT = 1

_TMP_PREFIX = ".tmp-"

_GIT_REVISION: Optional[str] = None


def git_revision() -> str:
    """The repository revision this process runs from (``"unknown"``
    outside a git checkout).  Cached after the first call — provenance
    stamping must not fork a subprocess per sweep point."""
    global _GIT_REVISION
    if _GIT_REVISION is None:
        try:
            _GIT_REVISION = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True, text=True, timeout=5.0, check=True,
            ).stdout.strip() or "unknown"
        except Exception:
            _GIT_REVISION = "unknown"
    return _GIT_REVISION


def make_provenance(profile_name: Optional[str] = None,
                    elapsed_s: Optional[float] = None,
                    engine: Optional[Dict[str, int]] = None,
                    shards: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The standard provenance block stored with every record.

    Provenance is *descriptive* (where did this number come from), never
    part of the cache key — wall time and host name must not defeat
    content addressing.  When both ``elapsed_s`` and engine counters are
    supplied, a derived ``events_per_second`` rides along so
    ``repro runs show`` can answer "how fast was this run"
    retroactively; ``shards`` carries the per-shard counter block of a
    sharded run (see :func:`repro.sim.shard.aggregate_shard_stats`).
    """
    prov: Dict[str, Any] = {
        "wall_time_unix": time.time(),
        "git_rev": git_revision(),
        "code_version": CODE_VERSION,
        "python": platform.python_version(),
        "host": platform.node(),
    }
    if profile_name is not None:
        prov["profile"] = profile_name
    if elapsed_s is not None:
        prov["elapsed_s"] = elapsed_s
    if engine is not None:
        prov["engine"] = dict(engine)
        events = engine.get("events_processed")
        if elapsed_s and events is not None:
            prov["events_per_second"] = events / elapsed_s
    if shards is not None:
        prov["shards"] = dict(shards)
    return prov


@dataclass(frozen=True)
class RunRecord:
    """One persisted experiment point."""

    #: Content address (``spec.key()``); also the file name.
    key: str
    #: Canonical spec dict (see :meth:`ExperimentSpec.canonical`).
    spec: Dict[str, Any]
    #: Experiment-defined result payload (JSON-able).
    result: Any
    #: Where/when/how the result was produced (see :func:`make_provenance`).
    provenance: Dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        """Serialize as one line of JSON (JSON-lines record)."""
        return json.dumps(
            {"key": self.key, "spec": self.spec, "result": self.result,
             "provenance": self.provenance},
            sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        return cls(key=data["key"], spec=data["spec"],
                   result=data["result"],
                   provenance=data.get("provenance", {}))

    @property
    def experiment_spec(self) -> ExperimentSpec:
        return ExperimentSpec.from_canonical(self.spec)


SpecOrKey = Union[ExperimentSpec, str]


def _key_of(spec_or_key: SpecOrKey) -> str:
    if isinstance(spec_or_key, ExperimentSpec):
        return spec_or_key.key()
    return spec_or_key


class RunStore:
    """A directory of content-addressed :class:`RunRecord` files.

    Safe for concurrent writers: records land via atomic rename, and two
    workers racing on the same key simply write identical bytes.  All
    read paths tolerate (and :meth:`gc` reclaims) leftover temp files
    from killed runs.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)

    @property
    def runs_dir(self) -> str:
        return os.path.join(self.root, "runs")

    def _ensure_layout(self) -> None:
        os.makedirs(self.runs_dir, exist_ok=True)
        marker = os.path.join(self.root, "STORE_FORMAT")
        if not os.path.exists(marker):
            self._atomic_write(marker, f"{STORE_FORMAT}\n")

    def _path(self, key: str) -> str:
        return os.path.join(self.runs_dir, f"{key}.json")

    def _atomic_write(self, path: str, content: str) -> None:
        directory = os.path.dirname(path)
        fd, tmp_path = tempfile.mkstemp(prefix=_TMP_PREFIX, suffix=".part",
                                        dir=directory)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(content)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- record I/O ---------------------------------------------------------

    def put(self, spec: ExperimentSpec, result: Any,
            provenance: Optional[Dict[str, Any]] = None) -> RunRecord:
        """Persist one point atomically; returns the stored record."""
        self._ensure_layout()
        record = RunRecord(key=spec.key(), spec=spec.canonical(),
                           result=result,
                           provenance=provenance or make_provenance())
        self._atomic_write(self._path(record.key), record.to_line() + "\n")
        return record

    def get(self, spec_or_key: SpecOrKey) -> Optional[RunRecord]:
        """The stored record, or None on a cache miss / unreadable file."""
        path = self._path(_key_of(spec_or_key))
        try:
            with open(path) as handle:
                return RunRecord.from_line(handle.read())
        except (OSError, ValueError, KeyError):
            return None

    def __contains__(self, spec_or_key: SpecOrKey) -> bool:
        return os.path.exists(self._path(_key_of(spec_or_key)))

    def delete(self, spec_or_key: SpecOrKey) -> bool:
        """Remove one record; True if it existed."""
        try:
            os.unlink(self._path(_key_of(spec_or_key)))
            return True
        except OSError:
            return False

    def keys(self) -> List[str]:
        """All stored keys, sorted (stable listing order)."""
        try:
            names = os.listdir(self.runs_dir)
        except OSError:
            return []
        return sorted(name[:-len(".json")] for name in names
                      if name.endswith(".json")
                      and not name.startswith(_TMP_PREFIX))

    def records(self) -> Iterator[RunRecord]:
        """All readable records in key order."""
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield record

    def __len__(self) -> int:
        return len(self.keys())

    def find(self, key_prefix: str) -> List[RunRecord]:
        """Records whose key starts with ``key_prefix`` (CLI ``show``)."""
        return [record for key in self.keys() if key.startswith(key_prefix)
                for record in [self.get(key)] if record is not None]

    # -- maintenance --------------------------------------------------------

    def gc(self, older_than_days: Optional[float] = None) -> Dict[str, int]:
        """Reclaim junk: temp files from killed writers, unreadable or
        schema-stale records, and (optionally) records older than
        ``older_than_days``.  Returns per-category removal counts."""
        removed = {"tmp": 0, "unreadable": 0, "stale_schema": 0, "aged": 0}
        try:
            names = os.listdir(self.runs_dir)
        except OSError:
            return removed
        cutoff = (time.time() - older_than_days * 86400.0
                  if older_than_days is not None else None)
        for name in names:
            path = os.path.join(self.runs_dir, name)
            if name.startswith(_TMP_PREFIX):
                os.unlink(path)
                removed["tmp"] += 1
                continue
            if not name.endswith(".json"):
                continue
            record = self.get(name[:-len(".json")])
            if record is None:
                os.unlink(path)
                removed["unreadable"] += 1
            elif record.spec.get("schema_version") != SPEC_SCHEMA_VERSION:
                os.unlink(path)
                removed["stale_schema"] += 1
            elif (cutoff is not None and
                  record.provenance.get("wall_time_unix", 0.0) < cutoff):
                os.unlink(path)
                removed["aged"] += 1
        return removed


def diff_records(a: RunRecord, b: RunRecord) -> Dict[str, Any]:
    """Field-level differences between two records (CLI ``runs diff``).

    Returns ``{"spec": {field: (a, b)}, "result": {path: (a, b)}}`` with
    only differing entries; nested result dicts are flattened with
    dot-separated paths.
    """

    def flatten(value: Any, prefix: str = "") -> Dict[str, Any]:
        if isinstance(value, dict):
            out: Dict[str, Any] = {}
            for key in value:
                out.update(flatten(value[key], f"{prefix}{key}."))
            return out
        return {prefix.rstrip("."): value}

    def diff_maps(ma: Dict[str, Any], mb: Dict[str, Any]) -> Dict[str, Any]:
        delta = {}
        for key in sorted(set(ma) | set(mb)):
            va, vb = ma.get(key), mb.get(key)
            if va != vb:
                delta[key] = (va, vb)
        return delta

    result_a = a.result if isinstance(a.result, dict) else {"result": a.result}
    result_b = b.result if isinstance(b.result, dict) else {"result": b.result}
    return {
        "spec": diff_maps(flatten(a.spec), flatten(b.spec)),
        "result": diff_maps(flatten(result_a), flatten(result_b)),
    }
