"""Experiment identity: :class:`ExperimentSpec` and :class:`RunConfig`.

Two dataclasses carry everything the harness previously threaded through
scattered keyword arguments:

- :class:`RunConfig` — *how* to run: duration, scale profile, seed,
  worker processes, auditing, event profiling, and the run-store knobs
  (``cache_dir`` / ``resume`` / ``force``).  Experiment entry points
  accept ``config=RunConfig(...)``; the old ``duration=`` / ``audit=`` /
  ``jobs=`` keyword spellings still work for one release but emit
  :class:`DeprecationWarning`.
- :class:`ExperimentSpec` — *what* was run: the canonical identity of
  one experiment point (experiment name, scheme, scheduler, load, seed,
  scale-profile physics, audit flag, extra parameters, schema/code
  version).  :meth:`ExperimentSpec.key` hashes the canonical form with
  :func:`repro.sim.rng.stable_digest`, so the same point gets the same
  key in every process, at every ``--jobs`` level, on every platform —
  the content address the run store files records under.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..sim.rng import stable_digest

__all__ = ["ExperimentSpec", "RunConfig", "SPEC_SCHEMA_VERSION", "UNSET",
           "resolve_run_config"]

#: Bump when the meaning of stored results changes (different statistics,
#: different simulation semantics…): old records stop matching and
#: ``repro runs gc`` reclaims them.
SPEC_SCHEMA_VERSION = 1

#: Version stamp baked into every spec so a cache populated by one code
#: release is never silently reused by an incompatible one.
CODE_VERSION = "1.0.0"

#: Sentinel distinguishing "caller did not pass this kwarg" from None.
UNSET: Any = object()

#: ScaleProfile fields that change the *identity* of a point.  ``loads``
#: is the sweep set (each point already carries its own ``load``) and
#: ``jobs`` is pure execution mechanics — including either would make
#: cache keys depend on how the sweep was launched instead of what it
#: simulated, defeating resume at a different ``--jobs`` level.
_PROFILE_IDENTITY_FIELDS = ("name", "link_rate", "static_duration",
                            "fabric", "largescale_flows", "size_scale",
                            "time_cap")


@dataclass(frozen=True)
class RunConfig:
    """How to execute an experiment (vs. *what* it is — see
    :class:`ExperimentSpec`).

    Every field is optional; ``None`` means "use the callee's default",
    so one ``RunConfig`` can be threaded through heterogeneous entry
    points without clobbering their individual defaults.
    """

    #: Simulated seconds for static experiments.
    duration: Optional[float] = None
    #: Scale profile (TINY/BENCH/PAPER or a custom ScaleProfile).
    profile: Optional[Any] = None
    #: Base workload seed.
    seed: Optional[int] = None
    #: Worker processes for sweeps (1 = serial, 0 = all cores).
    jobs: Optional[int] = None
    #: Attach the fabric invariant auditor.
    audit: Optional[bool] = None
    #: Print a per-run event/heap profile.
    profile_events: bool = False
    #: Root directory of the content-addressed run store (None = off).
    cache_dir: Optional[str] = None
    #: Reuse completed points found in the store.
    resume: bool = True
    #: Recompute (and overwrite) even when a stored record exists.
    force: bool = False
    #: Shards for conservative-lookahead parallel execution of a single
    #: scenario (None / 1 = classic single-process run).
    shards: Optional[int] = None
    #: Packet-train width for long-flow senders (None / 1 = exact
    #: per-packet datapath).  N > 1 coalesces window-limited bursts into
    #: single train units — one event per train — with automatic
    #: per-packet fallback near marking thresholds; results are
    #: tolerance-accurate, not byte-identical (see EXPERIMENTS.md).
    trains: Optional[int] = None

    def evolve(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return replace(self, **changes)


def resolve_run_config(config: Optional[RunConfig], caller: str,
                       **legacy: Any) -> RunConfig:
    """Merge deprecated keyword arguments into a :class:`RunConfig`.

    ``legacy`` maps field name → value-or-:data:`UNSET`.  Every value
    actually supplied emits a :class:`DeprecationWarning` naming the
    caller and wins over the corresponding ``config`` field (preserving
    the pre-RunConfig behaviour of the explicit kwarg).
    """
    config = config if config is not None else RunConfig()
    supplied = {name: value for name, value in legacy.items()
                if value is not UNSET}
    if supplied:
        names = ", ".join(f"{name}=" for name in sorted(supplied))
        warnings.warn(
            f"{caller}: keyword argument(s) {names} are deprecated; pass "
            f"config=RunConfig(...) instead",
            DeprecationWarning, stacklevel=3,
        )
        config = replace(config, **supplied)
    return config


def _profile_identity(profile: Any) -> Dict[str, Any]:
    """The identity-relevant slice of a ScaleProfile as a plain dict."""
    if profile is None:
        return {}
    if is_dataclass(profile) and not isinstance(profile, type):
        data = asdict(profile)
    elif isinstance(profile, Mapping):
        data = dict(profile)
    else:
        raise TypeError(f"profile must be a dataclass or mapping, got "
                        f"{type(profile)!r}")
    return {name: data[name] for name in _PROFILE_IDENTITY_FIELDS
            if name in data}


@dataclass(frozen=True)
class ExperimentSpec:
    """Canonical identity of one experiment point.

    Everything that determines the simulation's output belongs here;
    anything that merely determines *how fast* it runs (worker count,
    profiler, cache location) must not.  Two specs with equal
    :meth:`canonical` forms are the same experiment and share one
    :meth:`key` — the contract the resumable sweep machinery is built on.
    """

    #: Experiment family, e.g. ``"fct-point"`` or ``"incast-sweep"``.
    experiment: str
    #: Marking scheme name (``"pmsb"``, ``"tcn"``…).
    scheme: str = ""
    #: Scheduler name (``"dwrr"``, ``"wfq"``…).
    scheduler: str = ""
    #: Offered load fraction (0 when not applicable).
    load: float = 0.0
    #: Workload seed.
    seed: int = 0
    #: Identity slice of the ScaleProfile (see ``_PROFILE_IDENTITY_FIELDS``).
    profile: Tuple[Tuple[str, Any], ...] = ()
    #: Whether the fabric invariant auditor rode along.
    audit: bool = False
    #: Extra experiment-specific parameters (topology, fan-in…).
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Result-schema version (see :data:`SPEC_SCHEMA_VERSION`).
    schema_version: int = SPEC_SCHEMA_VERSION
    #: Code release that produced matching results.
    code_version: str = CODE_VERSION

    @classmethod
    def create(
        cls,
        experiment: str,
        scheme: str = "",
        scheduler: str = "",
        load: float = 0.0,
        seed: int = 0,
        profile: Any = None,
        audit: bool = False,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "ExperimentSpec":
        """Build a spec from rich arguments (ScaleProfile, dicts…)."""
        profile_items = tuple(sorted(_profile_identity(profile).items()))
        param_items = tuple(sorted((params or {}).items()))
        return cls(
            experiment=experiment,
            scheme=scheme,
            scheduler=scheduler,
            load=float(load),
            seed=int(seed),
            profile=profile_items,
            audit=bool(audit),
            params=param_items,
        )

    def canonical(self) -> Dict[str, Any]:
        """The spec as a plain, JSON-able, key-sorted dict."""
        data: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name in ("profile", "params"):
                value = {name: item for name, item in value}
            data[spec_field.name] = value
        return data

    def key(self) -> str:
        """The content address: a stable SHA-256 over :meth:`canonical`."""
        return stable_digest(self.canonical())

    @classmethod
    def from_canonical(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`canonical` dict (store reads)."""
        kwargs = dict(data)
        for name in ("profile", "params"):
            mapping = kwargs.get(name) or {}
            kwargs[name] = tuple(
                sorted((key, _untuple(value))
                       for key, value in dict(mapping).items()))
        # JSON turns the fabric tuple into a list; normalize back.
        return cls(**kwargs)


def _untuple(value: Any) -> Any:
    """JSON round-trips tuples as lists; fold them back for equality."""
    if isinstance(value, list):
        return tuple(_untuple(item) for item in value)
    return value
