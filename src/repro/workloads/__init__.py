"""Workloads: flow-size distributions, Poisson arrivals, service mapping."""

from .distributions import (
    DATA_MINING,
    EmpiricalCdf,
    LogUniform,
    Mixture,
    PAPER_MIX,
    Pareto,
    SizeDistribution,
    Uniform,
    WEB_SEARCH,
)
from .generator import PoissonFlowGenerator
from .services import assign_service, service_weights

__all__ = [
    "DATA_MINING",
    "EmpiricalCdf",
    "LogUniform",
    "Mixture",
    "PAPER_MIX",
    "Pareto",
    "PoissonFlowGenerator",
    "SizeDistribution",
    "Uniform",
    "WEB_SEARCH",
    "assign_service",
    "service_weights",
]
