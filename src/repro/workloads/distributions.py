"""Flow-size distributions.

The paper evaluates with a "realistic workload" in which small flows are
60% of flows and large flows 10% (§VI-B).  :data:`PAPER_MIX` implements
exactly that mixture; :data:`WEB_SEARCH` and :data:`DATA_MINING` are the
two classic datacenter traces from the DCTCP lineage (also used by MQ-ECN
and TCN) for users who want heavier tails.

All distributions expose ``sample(rng) -> int`` (bytes) and
``mean_bytes()`` so the Poisson generator can translate a load fraction
into an arrival rate.
"""

from __future__ import annotations

import bisect
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "SizeDistribution",
    "EmpiricalCdf",
    "LogUniform",
    "Uniform",
    "Mixture",
    "Pareto",
    "PAPER_MIX",
    "WEB_SEARCH",
    "DATA_MINING",
]


class SizeDistribution:
    """Interface: a sampler over flow sizes in bytes."""

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def mean_bytes(self) -> float:
        raise NotImplementedError

    def scaled(self, factor: float) -> "SizeDistribution":
        """A copy with all sizes multiplied by ``factor`` (scale profiles)."""
        return _Scaled(self, factor)


class _Scaled(SizeDistribution):
    def __init__(self, inner: SizeDistribution, factor: float):
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        self._inner = inner
        self._factor = factor

    def sample(self, rng: np.random.Generator) -> int:
        return max(1, int(round(self._inner.sample(rng) * self._factor)))

    def mean_bytes(self) -> float:
        return self._inner.mean_bytes() * self._factor


class Uniform(SizeDistribution):
    """Uniform over ``[low, high]`` bytes."""

    def __init__(self, low: int, high: int):
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def mean_bytes(self) -> float:
        return (self.low + self.high) / 2.0


class LogUniform(SizeDistribution):
    """Log-uniform over ``[low, high]`` bytes — flat across size decades,
    the usual model for 'medium' flows spanning orders of magnitude."""

    def __init__(self, low: int, high: int):
        if not 0 < low < high:
            raise ValueError("need 0 < low < high")
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator) -> int:
        value = np.exp(rng.uniform(np.log(self.low), np.log(self.high)))
        return max(self.low, min(self.high, int(round(value))))

    def mean_bytes(self) -> float:
        span = np.log(self.high) - np.log(self.low)
        return float((self.high - self.low) / span)


class Pareto(SizeDistribution):
    """Bounded Pareto — the classic heavy-tail model for flow sizes.

    Shape ``alpha`` < 2 gives the "elephants and mice" regime datacenter
    traffic studies report; the upper bound keeps the mean finite and the
    simulations tractable.
    """

    def __init__(self, minimum: int, maximum: int, alpha: float = 1.2):
        if not 0 < minimum < maximum:
            raise ValueError("need 0 < minimum < maximum")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.minimum = minimum
        self.maximum = maximum
        self.alpha = alpha

    def sample(self, rng: np.random.Generator) -> int:
        # Inverse transform of the bounded Pareto CDF.
        u = rng.random()
        low_a = self.minimum ** self.alpha
        high_a = self.maximum ** self.alpha
        value = (-(u * high_a - u * low_a - high_a)
                 / (high_a * low_a)) ** (-1.0 / self.alpha)
        return max(self.minimum, min(self.maximum, int(round(value))))

    def mean_bytes(self) -> float:
        a, low, high = self.alpha, self.minimum, self.maximum
        if a == 1.0:
            return low * np.log(high / low) / (1.0 - low / high)
        ratio = (low / high) ** a
        return (low * a / (a - 1.0)) * (
            (1.0 - (low / high) ** (a - 1.0)) / (1.0 - ratio)
        )


class Mixture(SizeDistribution):
    """Weighted mixture of component distributions."""

    def __init__(self, components: Sequence[Tuple[float, SizeDistribution]]):
        if not components:
            raise ValueError("a mixture needs at least one component")
        total = sum(weight for weight, _dist in components)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self._probs = [weight / total for weight, _dist in components]
        self._dists = [dist for _weight, dist in components]
        self._cum = list(np.cumsum(self._probs))

    def sample(self, rng: np.random.Generator) -> int:
        u = rng.random()
        index = bisect.bisect_left(self._cum, u)
        index = min(index, len(self._dists) - 1)
        return self._dists[index].sample(rng)

    def mean_bytes(self) -> float:
        return float(
            sum(p * d.mean_bytes() for p, d in zip(self._probs, self._dists))
        )


class EmpiricalCdf(SizeDistribution):
    """Piecewise-linear inverse-CDF sampler from ``(size, cum_prob)`` points."""

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [float(s) for s, _p in points]
        probs = [float(p) for _s, p in points]
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("sizes must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("cumulative probabilities must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("the last cumulative probability must be 1.0")
        self._sizes = sizes
        self._probs = probs

    def sample(self, rng: np.random.Generator) -> int:
        u = rng.random()
        index = bisect.bisect_left(self._probs, u)
        if index == 0:
            return max(1, int(round(self._sizes[0])))
        p0, p1 = self._probs[index - 1], self._probs[index]
        s0, s1 = self._sizes[index - 1], self._sizes[index]
        if p1 == p0:
            return max(1, int(round(s1)))
        fraction = (u - p0) / (p1 - p0)
        return max(1, int(round(s0 + fraction * (s1 - s0))))

    def mean_bytes(self) -> float:
        mean = self._probs[0] * self._sizes[0]
        for i in range(1, len(self._sizes)):
            mass = self._probs[i] - self._probs[i - 1]
            mean += mass * (self._sizes[i - 1] + self._sizes[i]) / 2.0
        return float(mean)


#: The paper's workload: 60% small (≤100 KB), 30% medium, 10% large
#: (≥10 MB), by flow count.
PAPER_MIX = Mixture(
    [
        (0.60, Uniform(5 * 1000, 100 * 1000)),
        (0.30, LogUniform(100 * 1000 + 1, 10 * 1000 * 1000 - 1)),
        (0.10, Uniform(10 * 1000 * 1000, 30 * 1000 * 1000)),
    ]
)

#: Web-search workload (DCTCP paper, Fig. — the standard points used by
#: the MQ-ECN/TCN evaluations).  Sizes in bytes.
WEB_SEARCH = EmpiricalCdf(
    [
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_467_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 1.00),
    ]
)

#: Data-mining workload (Greenberg et al. VL2 trace, as reused by MQ-ECN).
DATA_MINING = EmpiricalCdf(
    [
        (100, 0.50),
        (1_000, 0.60),
        (10_000, 0.78),
        (100_000, 0.85),
        (1_000_000, 0.92),
        (10_000_000, 0.96),
        (100_000_000, 1.00),
    ]
)
