"""Poisson flow generation.

Flows arrive as a Poisson process whose rate realizes a target *load*:
the fraction of each host link's capacity consumed on average.  With
``n`` hosts, mean flow size ``S`` bytes and host links of ``C`` bits/s,

    arrival_rate = load × C × n / (8 × S)        [flows per second]

so each host link carries ``load × C`` bits/s of offered traffic on
average (the convention of the MQ-ECN/TCN evaluations).  Sources and
destinations are drawn uniformly among distinct host pairs and each pair
is pinned to one of the 8 services (→ switch queues).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..transport.flow import Flow
from .distributions import SizeDistribution
from .services import assign_service

__all__ = ["PoissonFlowGenerator"]


class PoissonFlowGenerator:
    """Generates a randomized flow arrival schedule."""

    def __init__(
        self,
        rng: np.random.Generator,
        host_ids: Sequence[int],
        size_distribution: SizeDistribution,
        load: float,
        link_rate_bps: float,
        n_services: int = 8,
        start_time: float = 0.0,
    ):
        if not 0.0 < load < 1.0:
            raise ValueError("load must be in (0, 1)")
        if len(host_ids) < 2:
            raise ValueError("need at least two hosts")
        self.rng = rng
        self.host_ids = list(host_ids)
        self.size_distribution = size_distribution
        self.load = load
        self.link_rate_bps = link_rate_bps
        self.n_services = n_services
        self.start_time = start_time

    @property
    def arrival_rate(self) -> float:
        """Flows per second realizing the target load."""
        mean_bits = self.size_distribution.mean_bytes() * 8.0
        return self.load * self.link_rate_bps * len(self.host_ids) / mean_bits

    def generate(
        self,
        n_flows: Optional[int] = None,
        duration: Optional[float] = None,
    ) -> List[Flow]:
        """Build the arrival schedule.

        Exactly one of ``n_flows`` (fixed count) or ``duration`` (fixed
        time horizon) must be given.
        """
        if (n_flows is None) == (duration is None):
            raise ValueError("specify exactly one of n_flows or duration")
        rate = self.arrival_rate
        flows: List[Flow] = []
        now = self.start_time
        while True:
            now += float(self.rng.exponential(1.0 / rate))
            if duration is not None and now > self.start_time + duration:
                break
            if n_flows is not None and len(flows) >= n_flows:
                break
            src, dst = self.rng.choice(self.host_ids, size=2, replace=False)
            src, dst = int(src), int(dst)
            flows.append(
                Flow(
                    src=src,
                    dst=dst,
                    size_bytes=self.size_distribution.sample(self.rng),
                    service=assign_service(src, dst, self.n_services),
                    start_time=now,
                    # Explicit sequential ids: ECMP hashes on the flow id,
                    # so ids must be a pure function of the schedule — the
                    # process-global default counter would make path
                    # choices depend on how many flows other scenarios
                    # created earlier.  Ids only need uniqueness within
                    # one network, which sequential numbering provides.
                    flow_id=len(flows) + 1,
                )
            )
        return flows
