"""Service classification.

Datacenter operators isolate services into switch queues via DSCP.  The
paper classifies all 48×47 host communications "into 8 services evenly";
we reproduce that with a deterministic hash of the (src, dst) pair, so a
given communication always lands in the same service (and hence queue) on
every switch, across runs.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.rng import stable_hash

__all__ = ["assign_service", "service_weights"]


def assign_service(src: int, dst: int, n_services: int = 8) -> int:
    """Deterministic, even mapping of a communication pair to a service."""
    if n_services < 1:
        raise ValueError("need at least one service")
    return stable_hash(src, dst) % n_services


def service_weights(n_services: int = 8) -> Sequence[float]:
    """The paper's queue weights: all services equal."""
    return [1.0] * n_services
