"""Buffer-contention experiments: marking schemes over shared memory.

The paper evaluates every marking scheme against private per-port
buffers deep enough that ECN — not loss — is the operative signal.
Real switch chips share one memory across all ports under a
buffer-sharing policy, and the interesting regimes are exactly the ones
our fig3/fig8 scenarios measure: a *victim* flow squeezed while hogs
hold the buffer, and an incast *burst* that needs headroom the hogs
would otherwise consume.  This family re-asks both questions with the
buffer as the contended resource, across:

- **sharing policy** — classic Dynamic Threshold over a grid of alphas,
  and the BShare-style queueing-delay-driven variant
  (:mod:`repro.net.sharedbuf`);
- **marking scheme** — PMSB / per-port / per-queue / MQ-ECN;
- **scheduler** — DWRR by default, WFQ selectable.

Each point runs two scenarios on a deliberately shallow shared buffer:

- **victim** (:func:`sharedbuf_point`, first half): the 1-vs-8 incast —
  how far does the lone queue-0 flow land from its DWRR fair share when
  hogs contend for the same switch memory?
- **burst absorption** (second half): the queue-0 flow runs alone for
  half the run, then a 16-flow incast bursts into queue 1 — how many of
  the burst's packets does the policy absorb instead of drop?

Rows carry the pool's own ledger (peak occupancy, policy rejections),
and the sweep is store-backed exactly like the FCT sweeps: every point
keys on its :class:`~repro.net.sharedbuf.SharedBufferSpec` params, so a
policy-parameter change re-keys only the affected points.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Tuple,
                    Union)

from ..net.packet import MTU_BYTES
from ..net.sharedbuf import SharedBufferSpec
from ..net.topology import TopologySpec, as_topology, topology_enabled
from ..store.runstore import RunStore, make_provenance
from ..store.spec import (ExperimentSpec, RunConfig, UNSET,
                          resolve_run_config)
from . import largescale
from .scale import BENCH, ScaleProfile
from .scenario import incast_flows, make_scheme, run_incast

__all__ = [
    "DEFAULT_ALPHAS",
    "DEFAULT_CAPACITY",
    "DEFAULT_TARGET_DELAYS",
    "SHAREDBUF_EXPERIMENT",
    "SHAREDBUF_SCHEMES",
    "SharedBufRow",
    "default_policies",
    "run_sharedbuf_sweep",
    "sharedbuf_point",
    "sharedbuf_point_spec",
]

#: Experiment family name in the run store.
SHAREDBUF_EXPERIMENT = "sharedbuf"

#: Marking schemes compared over the shared memory (≥ 3 per the
#: experiment brief: PMSB against the conventional alternatives).
SHAREDBUF_SCHEMES = ("pmsb", "per-port", "per-queue-standard", "mq-ecn")

#: Dynamic-threshold aggressiveness grid.
DEFAULT_ALPHAS = (0.5, 1.0, 2.0, 4.0)

#: BShare queueing-delay targets (seconds).
DEFAULT_TARGET_DELAYS = (100e-6, 200e-6)

#: Switch-wide memory in packets — shallow on purpose, so admission
#: (not marking) is the binding constraint and policies differentiate.
DEFAULT_CAPACITY = 64


def default_policies(
    capacity: int = DEFAULT_CAPACITY,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    target_delays: Sequence[float] = DEFAULT_TARGET_DELAYS,
) -> Tuple[SharedBufferSpec, ...]:
    """The default policy grid: DT across ``alphas`` + BShare across
    ``target_delays``, all at the same switch capacity."""
    return tuple(
        [SharedBufferSpec(policy="dt", capacity=capacity, alpha=alpha)
         for alpha in alphas]
        + [SharedBufferSpec(policy="bshare", capacity=capacity,
                            target_delay=delay)
           for delay in target_delays]
    )


@dataclass
class SharedBufRow:
    """One (scheme, scheduler, sharing policy) buffer-contention point."""

    scheme: str
    scheduler: str
    policy: str
    capacity: int
    alpha: float
    target_delay: float
    #: Victim scenario: the lone queue-0 flow vs 8 queue-1 hogs.
    victim_gbps: float
    hogs_gbps: float
    victim_err: float
    victim_drops: int
    #: Burst scenario: 16-flow incast into queue 1 mid-run.
    burst_drops: int
    burst_loss_fraction: float
    #: Pool ledger over the burst run.
    pool_peak: int
    pool_rejections: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme, "scheduler": self.scheduler,
            "policy": self.policy, "capacity": self.capacity,
            "alpha": self.alpha, "target_delay": self.target_delay,
            "victim_gbps": self.victim_gbps, "hogs_gbps": self.hogs_gbps,
            "victim_err": self.victim_err,
            "victim_drops": self.victim_drops,
            "burst_drops": self.burst_drops,
            "burst_loss_fraction": self.burst_loss_fraction,
            "pool_peak": self.pool_peak,
            "pool_rejections": self.pool_rejections,
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "SharedBufRow":
        return cls(**{name: data[name] for name in (
            "scheme", "scheduler", "policy", "capacity", "alpha",
            "target_delay", "victim_gbps", "hogs_gbps", "victim_err",
            "victim_drops", "burst_drops", "burst_loss_fraction",
            "pool_peak", "pool_rejections")})


def _scheduler_factory(scheduler_name: str, n_queues: int):
    if scheduler_name == "dwrr":
        from ..scheduling.dwrr import DwrrScheduler
        return lambda: DwrrScheduler(n_queues)
    if scheduler_name == "wrr":
        from ..scheduling.wrr import WrrScheduler
        return lambda: WrrScheduler(n_queues)
    if scheduler_name == "wfq":
        from ..scheduling.wfq import WfqScheduler
        return lambda: WfqScheduler(n_queues)
    raise ValueError(
        f"unknown scheduler {scheduler_name!r} (use 'dwrr', 'wrr' or 'wfq')")


def _pool_stats(result) -> Tuple[int, int]:
    pools = [sw.shared_buffer for sw in result.network.switches
             if sw.shared_buffer is not None]
    if not pools:
        return 0, 0
    return (max(buf.peak_packets for buf in pools),
            sum(buf.rejections for buf in pools))


def sharedbuf_point(
    scheme_name: str,
    scheduler_name: str = "dwrr",
    shared_buffer: Optional[SharedBufferSpec] = None,
    hog_flows: int = 8,
    burst_flows: int = 16,
    link_rate: float = 10e9,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
    topology: Union[str, TopologySpec, None] = None,
) -> SharedBufRow:
    """Measure one (scheme, scheduler, policy) buffer-contention point.

    Two audited-capable incast runs on a single bottleneck whose switch
    memory is ``shared_buffer`` (pass None for the private-buffer
    baseline):

    - *victim*: 1 queue-0 flow vs ``hog_flows`` queue-1 flows from t=0;
      ``victim_err`` is the queue-0 distance from its DWRR fair share.
    - *burst*: the queue-0 flow warms up alone, then ``burst_flows``
      flows slam queue 1 at the half-way point; ``burst_loss_fraction``
      is the dropped share of everything queue 1 offered the port.
    """
    config = resolve_run_config(config, "sharedbuf_point",
                                duration=duration, audit=audit)
    duration = config.duration if config.duration is not None else 0.04
    spec = shared_buffer
    scheme = make_scheme(scheme_name, link_rate=link_rate, n_queues=2)
    run_cfg = RunConfig(duration=duration, audit=config.audit)
    # A synchronized start with the default init_cwnd=16 slams
    # (1 + hog_flows) × 16 packets into the shallow shared memory at
    # t=0: every flow loses its whole window and sits out min_rto
    # (10 ms) — the run measures one synchronized collapse, not buffer
    # sharing.  Start small; congestion avoidance regrows the windows
    # into whatever the policy actually allows.
    init_cwnd = 4.0

    victim = run_incast(
        scheme, _scheduler_factory(scheduler_name, 2),
        incast_flows([1, hog_flows]),
        link_rate=link_rate, config=run_cfg, shared_buffer=spec,
        init_cwnd=init_cwnd, topology=topology,
    )
    q0, q1 = victim.queue_gbps[0], victim.queue_gbps[1]
    total = q0 + q1
    fair = total / 2.0
    victim_err = abs(q0 - fair) / fair if total else 0.0
    victim_drops = victim.network.observed_ports("bottleneck")[0].drops

    burst_scheme = make_scheme(scheme_name, link_rate=link_rate, n_queues=2)
    burst = run_incast(
        burst_scheme, _scheduler_factory(scheduler_name, 2),
        incast_flows([1, burst_flows],
                     start_times=[0.0, duration * 0.5]),
        link_rate=link_rate, config=run_cfg, shared_buffer=spec,
        init_cwnd=init_cwnd, topology=topology,
    )
    port = burst.network.observed_ports("bottleneck")[0]
    burst_drops = port.queue_drops[1]
    # Everything queue 1 offered the port: what it dropped plus what it
    # serialized (data packets are MTU-sized) plus what is still queued.
    offered = (burst_drops + round(port.queue_tx_bytes[1] / MTU_BYTES)
               + port.queue_packet_count(1))
    burst_loss = burst_drops / offered if offered else 0.0
    pool_peak, pool_rejections = _pool_stats(burst)

    return SharedBufRow(
        scheme=victim.scheme, scheduler=scheduler_name,
        policy=spec.policy if spec is not None else "none",
        capacity=spec.capacity if spec is not None else 0,
        alpha=spec.alpha if spec is not None else 0.0,
        target_delay=spec.target_delay if spec is not None else 0.0,
        victim_gbps=q0, hogs_gbps=q1, victim_err=victim_err,
        victim_drops=victim_drops, burst_drops=burst_drops,
        burst_loss_fraction=burst_loss, pool_peak=pool_peak,
        pool_rejections=pool_rejections,
    )


def sharedbuf_point_spec(
    scheme_name: str,
    scheduler_name: str,
    shared_buffer: Optional[SharedBufferSpec],
    profile: ScaleProfile,
    seed: int,
    audit: bool = False,
    topology: Union[str, TopologySpec, None] = None,
) -> ExperimentSpec:
    """The canonical identity of one shared-buffer point (cache key).

    The full :class:`~repro.net.sharedbuf.SharedBufferSpec` is rendered
    into the params, so a changed alpha, capacity or delay target
    re-keys exactly the affected points.  ``topology=None`` renders the
    historical ``single-bottleneck`` param, leaving old cache keys
    intact; non-default specs re-key via
    :meth:`~repro.net.topology.TopologySpec.cache_params`.
    """
    topo = as_topology(topology)
    params: Dict[str, Any] = dict(
        topo.cache_params() if topo is not None
        else {"topology": "single-bottleneck"})
    params["shared_buffer"] = (shared_buffer.to_param()
                               if shared_buffer is not None else "none")
    return ExperimentSpec.create(
        SHAREDBUF_EXPERIMENT, scheme=scheme_name, scheduler=scheduler_name,
        load=0.0, seed=seed, profile=profile, audit=audit, params=params,
    )


def _sharedbuf_worker(point) -> SharedBufRow:
    """Module-level (picklable) worker for one sweep point.

    Same cache contract as the FCT sweeps: store hits are answered
    without simulating, fresh results persist atomically before
    returning."""
    (scheme_name, scheduler_name, shared_buffer, profile, seed, audit,
     cache_dir, force, topology) = point
    store = RunStore(cache_dir) if cache_dir else None
    spec = sharedbuf_point_spec(scheme_name, scheduler_name, shared_buffer,
                                profile, seed, audit=audit,
                                topology=topology)
    if store is not None and not force:
        record = store.get(spec)
        if record is not None:
            return SharedBufRow.from_payload(record.result)
    started = time.perf_counter()
    row = sharedbuf_point(
        scheme_name, scheduler_name, shared_buffer,
        link_rate=profile.link_rate,
        config=RunConfig(duration=profile.static_duration, audit=audit),
        topology=topology,
    )
    if store is not None:
        store.put(spec, row.to_payload(), make_provenance(
            profile_name=profile.name,
            elapsed_s=time.perf_counter() - started,
        ))
        largescale._note_point_computed()
    return row


def run_sharedbuf_sweep(
    scheme_names: Sequence[str] = SHAREDBUF_SCHEMES,
    scheduler_name: str = "dwrr",
    policies: Optional[Sequence[SharedBufferSpec]] = None,
    include_baseline: bool = True,
    profile: Optional[ScaleProfile] = None,
    seed: Optional[int] = None,
    config: Optional[RunConfig] = None,
    store: Optional[Union[RunStore, str]] = None,
    topology: Union[str, TopologySpec, None] = None,
) -> List[SharedBufRow]:
    """The buffer-contention matrix: every scheme × sharing policy.

    ``policies`` defaults to :func:`default_policies` (DT across
    :data:`DEFAULT_ALPHAS` plus BShare across
    :data:`DEFAULT_TARGET_DELAYS`); ``include_baseline`` prepends the
    private-buffer control point per scheme.  Points fan out over
    worker processes and cache/resume exactly like
    :func:`~repro.experiments.largescale.run_fct_sweep`.
    """
    from .runner import run_parallel

    config = resolve_run_config(config, "run_sharedbuf_sweep")
    if profile is None:
        profile = config.profile if config.profile is not None else BENCH
    if seed is None:
        seed = config.seed if config.seed is not None else 1
    jobs = config.jobs if config.jobs is not None else profile.jobs
    if store is None and config.cache_dir:
        store = config.cache_dir
    cache_dir = (store.root if isinstance(store, RunStore)
                 else os.fspath(store) if store else None)
    force = config.force or not config.resume
    if policies is None:
        policies = default_policies()

    largescale._points_computed = 0
    from ..sim.audit import audit_enabled
    audit = audit_enabled(config.audit)
    policy_points: List[Optional[SharedBufferSpec]] = list(policies)
    if include_baseline:
        policy_points = [None] + policy_points
    topology_spec = topology_enabled(as_topology(topology))
    points = [
        (name, scheduler_name, policy, profile, seed, audit, cache_dir,
         force, topology_spec)
        for policy in policy_points
        for name in scheme_names
        if not (scheduler_name == "wfq" and name == "mq-ecn")
    ]
    return run_parallel(points, _sharedbuf_worker, jobs=jobs)
