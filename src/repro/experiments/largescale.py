"""Large-scale FCT experiments (paper §VI-B, Figs. 16–27).

A leaf-spine fabric carries a Poisson arrival of realistically-sized
flows (60% small / 10% large) spread over 8 services → 8 switch queues
with equal weights.  For each scheme and each load point we collect flow
completion times and report the paper's statistics:

- overall average FCT                          (Figs. 16 / 22)
- large-flow average and 99th percentile       (Figs. 17–18 / 23–24)
- small-flow average, 95th and 99th percentile (Figs. 19–21 / 25–27)

Scheme parameters follow §VI-B: PMSB/PMSB(e) port threshold 12 packets
(from Theorem IV.1), PMSB(e) RTT threshold 85.2 µs, MQ-ECN standard
threshold 65 packets, TCN threshold 78.2 µs; PMSB, PMSB(e) and MQ-ECN
mark at enqueue, TCN at dequeue.  MQ-ECN is automatically excluded under
WFQ (it raises — no round concept), matching the paper.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..control.controller import (ControllerRuntime, ControllerSpec,
                                  controller_enabled)
from ..metrics.fct import FctCollector, SizeClass
from ..metrics.stats import SummaryStats
from ..net.topology import TopologySpec, as_topology, topology_enabled
from ..scheduling.dwrr import DwrrScheduler
from ..scheduling.wfq import WfqScheduler
from ..sim.audit import FabricAuditor, audit_enabled
from ..sim.engine import Simulator
from ..sim.faults import FaultScheduler, FaultSpec, faults_enabled
from ..sim.rng import make_rng
from ..store.runstore import RunStore, make_provenance
from ..store.spec import (ExperimentSpec, RunConfig, UNSET,
                          resolve_run_config)
from ..transport.endpoints import open_flow
from ..workloads.distributions import PAPER_MIX, SizeDistribution
from ..workloads.generator import PoissonFlowGenerator
from .scale import BENCH, ScaleProfile
from .scenario import SchemeSpec, make_scheme

__all__ = ["FctRow", "fct_point_spec", "topology_params", "largescale_scheme",
           "resolve_fct_topology", "run_fct_point", "run_fct_sweep",
           "reduction_percent", "LARGESCALE_SCHEMES"]

#: Test/CI hook: when set to N > 0, a store-backed sweep raises after
#: this process has computed (and persisted) N fresh points — a
#: deterministic stand-in for "the job was killed mid-sweep" that the
#: resume tests and the CI resume job rely on.  Cached points do not
#: count, so a resumed run completes even with the variable still set
#: lower than the remaining work.
CRASH_AFTER_ENV = "REPRO_SWEEP_CRASH_AFTER"

_points_computed = 0


def _note_point_computed() -> None:
    global _points_computed
    _points_computed += 1
    limit = int(os.environ.get(CRASH_AFTER_ENV, "0") or "0")
    if limit and _points_computed >= limit:
        raise RuntimeError(
            f"injected crash: {CRASH_AFTER_ENV}={limit} and this process "
            f"computed {_points_computed} points")

#: Scheme line-up of the DWRR figures; WFQ drops "mq-ecn".
LARGESCALE_SCHEMES = ("pmsb", "pmsb-e", "mq-ecn", "tcn")

N_SERVICES = 8
PORT_THRESHOLD_PACKETS = 12.0


def fabric_base_rtt(link_rate: float, hops: int = 4,
                    link_delay: float = 5e-6) -> float:
    """Unloaded RTT across ``hops`` store-and-forward links each way.

    The longest path is 4 hops in the leaf-spine fabric
    (host→leaf→spine→leaf→host) and 6 in a fat-tree
    (host→edge→agg→core→agg→edge→host); the data packet pays MTU
    serialization per hop, the ACK 40 bytes.
    """
    from ..net.packet import ACK_BYTES, MTU_BYTES
    data_path = hops * (link_delay + MTU_BYTES * 8.0 / link_rate)
    ack_path = hops * (link_delay + ACK_BYTES * 8.0 / link_rate)
    return data_path + ack_path


def leaf_spine_base_rtt(link_rate: float, link_delay: float = 5e-6) -> float:
    """Unloaded inter-rack RTT of the leaf-spine fabric."""
    return fabric_base_rtt(link_rate, hops=4, link_delay=link_delay)


def largescale_scheme(name: str, link_rate: float = 10e9,
                      base_rtt_hops: int = 4) -> SchemeSpec:
    """The §VI-B parameterization of one scheme.

    The paper's absolute numbers (PMSB(e) RTT threshold 85.2 µs, TCN
    threshold 78.2 µs) encode *their* fabric's base RTT and a 65-packet
    standard threshold; we recompute both from our fabric so the
    dimensionless design stays the paper's: the PMSB(e) filter triggers
    one port-threshold's worth of queueing above the base RTT, and TCN's
    sojourn threshold is the drain time of the standard threshold.
    """
    base_rtt = fabric_base_rtt(link_rate, hops=base_rtt_hops)
    port_drain = PORT_THRESHOLD_PACKETS * 1500 * 8.0 / link_rate
    return make_scheme(
        name,
        link_rate=link_rate,
        n_queues=N_SERVICES,
        port_threshold_packets=PORT_THRESHOLD_PACKETS,
        standard_threshold_packets=65.0,
        rtt_threshold=base_rtt + port_drain,
    )


@dataclass
class FctRow:
    """One (scheme, scheduler, load) measurement."""

    scheme: str
    scheduler: str
    load: float
    n_flows: int
    completed: int
    overall: SummaryStats
    small: Optional[SummaryStats]
    medium: Optional[SummaryStats]
    large: Optional[SummaryStats]

    def stat(self, size_class: Optional[SizeClass], name: str) -> Optional[float]:
        """Fetch one statistic, e.g. ``row.stat(SizeClass.SMALL, 'p99')``."""
        summary = {
            None: self.overall,
            SizeClass.SMALL: self.small,
            SizeClass.MEDIUM: self.medium,
            SizeClass.LARGE: self.large,
        }[size_class]
        if summary is None:
            return None
        return getattr(summary, name)

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-able dict for run-store persistence (inverse of
        :meth:`from_payload`; floats survive the round trip exactly)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "FctRow":
        def stats(block: Optional[Mapping[str, Any]]) -> Optional[SummaryStats]:
            return None if block is None else SummaryStats(**block)

        return cls(
            scheme=data["scheme"],
            scheduler=data["scheduler"],
            load=data["load"],
            n_flows=data["n_flows"],
            completed=data["completed"],
            overall=stats(data["overall"]),
            small=stats(data["small"]),
            medium=stats(data["medium"]),
            large=stats(data["large"]),
        )


def topology_params(topology: Union[str, TopologySpec, None],
                    fat_tree_k: int = 4) -> Dict[str, Any]:
    """Topology contribution to a point spec's params.

    Renders default fabrics to the *historical* param shapes (a plain
    ``topology`` name, plus ``fat_tree_k`` for fat-trees), so every
    pre-redesign run-store key is unchanged; non-default
    :class:`~repro.net.topology.TopologySpec` instances add a canonical
    ``topology_params`` tuple.
    """
    if topology is None:
        return {"topology": "leaf-spine"}
    if isinstance(topology, TopologySpec):
        return topology.cache_params()
    params: Dict[str, Any] = {"topology": topology}
    if topology == "fat-tree":
        params["fat_tree_k"] = fat_tree_k
    return params


def fct_point_spec(
    scheme_name: str,
    scheduler_name: str,
    load: float,
    profile: ScaleProfile,
    seed: int,
    audit: bool = False,
    topology: Union[str, TopologySpec, None] = "leaf-spine",
    fat_tree_k: int = 4,
    faults: Sequence[FaultSpec] = (),
    controller: Optional[ControllerSpec] = None,
    shards: int = 1,
    trains: int = 1,
) -> ExperimentSpec:
    """The canonical identity of one §VI-B FCT point (store cache key).

    Everything that determines the row's numbers is in here — including
    the fabric (``topology`` accepts the legacy ``"leaf-spine"`` /
    ``"fat-tree"`` strings or a
    :class:`~repro.net.topology.TopologySpec`, rendered through
    :func:`topology_params` so default fabrics keep their historical
    keys), any injected :class:`~repro.sim.faults.FaultSpec` set and any
    :class:`~repro.control.ControllerSpec`, rendered to canonical tuples
    so chaos and closed-loop points key differently from clean ones
    (and a disabled controller keys exactly as before this layer
    existed); execution mechanics (worker count, profiler, cache
    location) deliberately are not — see
    :class:`~repro.store.ExperimentSpec`.
    """
    params = topology_params(topology, fat_tree_k)
    if faults:
        params["faults"] = tuple(spec.to_param() for spec in faults)
    if controller is not None:
        params["controller"] = controller.to_param()
    # Sharded points key separately (incast ties make them
    # tolerance-equal, not byte-equal); shards=1 keys are untouched.
    if shards and shards > 1:
        params["shards"] = int(shards)
    # Same contract for packet trains: the train tier is
    # tolerance-accurate, so trained points must never resume from (or
    # pollute) exact per-packet records; trains=1 keys are untouched.
    if trains and trains > 1:
        params["trains"] = int(trains)
    return ExperimentSpec.create(
        "fct-point", scheme=scheme_name, scheduler=scheduler_name,
        load=load, seed=seed, profile=profile, audit=audit, params=params,
    )


def resolve_fct_topology(
    topology: Union[str, TopologySpec, None],
    fat_tree_k: int = 4,
) -> TopologySpec:
    """Resolve a runner's ``topology`` argument to a built spec.

    None defers to the process default (the CLI's ``--topology`` flag),
    then to the paper's leaf-spine; the legacy ``"fat-tree"`` string
    picks up ``fat_tree_k``.
    """
    if topology is None:
        resolved = topology_enabled(None)
        return resolved if resolved is not None else TopologySpec()
    if isinstance(topology, str) and topology == "fat-tree":
        return TopologySpec(preset="fat-tree", k=fat_tree_k)
    spec = as_topology(topology)
    assert spec is not None
    if spec.preset == "single-bottleneck":
        raise ValueError(
            "FCT experiments need a multi-host fabric; "
            "single-bottleneck is for incast scenarios")
    return spec


def _make_scheduler_factory(scheduler_name: str):
    if scheduler_name == "dwrr":
        return lambda: DwrrScheduler(N_SERVICES)
    if scheduler_name == "wrr":
        from ..scheduling.wrr import WrrScheduler
        return lambda: WrrScheduler(N_SERVICES)
    if scheduler_name == "wfq":
        return lambda: WfqScheduler(N_SERVICES)
    raise ValueError(
        f"unknown scheduler {scheduler_name!r} (use 'dwrr', 'wrr' or 'wfq')")


def run_fct_point(
    scheme_name: str,
    scheduler_name: str = "dwrr",
    load: float = 0.5,
    profile: Optional[ScaleProfile] = None,
    seed: Optional[int] = None,
    size_distribution: Optional[SizeDistribution] = None,
    topology: Union[str, TopologySpec, None] = None,
    fat_tree_k: int = 4,
    size_scale: Optional[float] = None,
    profile_events: bool = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
    provenance_out: Optional[Dict[str, Any]] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
    fault_stats_out: Optional[Dict[str, Any]] = None,
    controller: Optional[ControllerSpec] = None,
    controller_stats_out: Optional[Dict[str, Any]] = None,
) -> FctRow:
    """Run one load point for one scheme and collect FCT statistics.

    ``topology`` selects the fabric: a
    :class:`~repro.net.topology.TopologySpec` (or its
    ``preset:key=val`` string spelling), the legacy ``"leaf-spine"`` /
    ``"fat-tree"`` strings (the latter of arity ``fat_tree_k``), or
    None to defer to the process default the CLI's ``--topology`` flag
    sets — falling back to the paper's leaf-spine with its shape from
    the scale profile.  When passing a custom
    ``size_distribution`` that is already scaled, pass the matching
    ``size_scale`` so the small/large class boundaries scale with it.
    Execution knobs come from ``config``
    (:class:`~repro.store.RunConfig`): with ``config.profile_events`` a
    :class:`~repro.sim.profile.SimProfiler` rides along and its
    plain-text report is printed after the run; ``config.audit``
    attaches a :class:`~repro.sim.audit.FabricAuditor` across the whole
    fabric (None defers to the process default).  The ``audit=`` /
    ``profile_events=`` keyword spellings are deprecated aliases.
    ``provenance_out``, when given, is filled with wall time and engine
    counters for run-store provenance.  ``faults`` injects a chaos
    layer (:mod:`repro.sim.faults`) over the fabric's links, seeded
    from the point's ``seed`` (None defers to the process default the
    CLI's ``--faults`` flag sets); ``fault_stats_out`` receives the
    per-link drop breakdown afterwards.  ``controller`` attaches a
    closed-loop :class:`~repro.control.ControllerRuntime` retuning
    marker thresholds on the spec's period (None defers to the process
    default the CLI's ``--controller`` flag sets);
    ``controller_stats_out`` receives its tick/change counters.
    """
    config = resolve_run_config(config, "run_fct_point",
                                profile_events=profile_events, audit=audit)
    if profile is None:
        profile = config.profile if config.profile is not None else BENCH
    if seed is None:
        seed = config.seed if config.seed is not None else 1
    profile_events = config.profile_events
    audit = config.audit
    shards = config.shards if config.shards is not None else 1
    trains = config.trains if config.trains is not None else 1
    if trains > 1:
        if shards > 1:
            raise ValueError("--trains cannot combine with --shards "
                             "(train units cross shard boundaries as one "
                             "event)")
        if faults_enabled(faults):
            raise ValueError("--trains cannot combine with fault injection "
                             "(per-link loss draws are per-packet; a train "
                             "would consume one draw for N packets)")
    if shards > 1:
        from .sharded import sharded_fct_point
        if controller_enabled(controller) is not None:
            raise ValueError("closed-loop controllers are not supported "
                             "under --shards (global state)")
        if size_distribution is not None:
            raise ValueError("custom size distributions are not supported "
                             "under --shards")
        if profile_events:
            raise ValueError("--profile-events is not supported under "
                             "--shards; per-shard counters land in "
                             "provenance instead")
        return sharded_fct_point(
            scheme_name, scheduler_name, load, profile, seed, shards,
            topo=resolve_fct_topology(topology, fat_tree_k),
            audit=audit_enabled(audit),
            faults=faults_enabled(faults) or (),
            provenance_out=provenance_out,
            fault_stats_out=fault_stats_out,
        )
    wall_start = time.perf_counter()
    topo = resolve_fct_topology(topology, fat_tree_k)
    scheme = largescale_scheme(scheme_name, profile.link_rate,
                               base_rtt_hops=topo.base_rtt_hops)
    rng = make_rng(seed)
    sim = Simulator()
    auditor = FabricAuditor(sim) if audit_enabled(audit) else None
    profiler = None
    if profile_events:
        from ..sim.profile import SimProfiler
        profiler = SimProfiler(sim, sample_interval=profile.time_cap / 200.0)
        profiler.start()
    network = topo.build(
        sim, _make_scheduler_factory(scheduler_name), scheme.marker_factory,
        default_fabric=profile.fabric, link_rate=profile.link_rate,
    )
    if auditor is not None:
        auditor.attach_network(network)
    fault_specs = faults_enabled(faults)
    chaos = None
    if fault_specs:
        chaos = FaultScheduler(sim, fault_specs, seed=seed)
        chaos.apply(network)
    controller = controller_enabled(controller)
    runtime = None
    if controller is not None:
        runtime = ControllerRuntime(sim, network.all_marked_ports(),
                                    controller.build(), controller.period)
    if size_distribution is None:
        size_distribution = PAPER_MIX.scaled(profile.size_scale)
        size_scale = profile.size_scale
    elif size_scale is None:
        size_scale = 1.0
    generator = PoissonFlowGenerator(
        rng, [h.host_id for h in network.hosts], size_distribution,
        load=load, link_rate_bps=profile.link_rate, n_services=N_SERVICES,
    )
    flows = generator.generate(n_flows=profile.largescale_flows)

    collector = FctCollector(size_scale=size_scale)
    want_rtt = runtime is not None and controller.wants_rtt
    for flow in flows:
        config = scheme.transport_config(
            init_cwnd=16.0, record_rtt=want_rtt, train_packets=trains,
            # Train mode coalesces ACKs too (delayed-ACK CE state
            # machine, one ACK per two units, PSH flushes) — see
            # run_incast.
            ack_every=2 if trains > 1 else 1,
            delack_timeout=5e-6 if trains > 1 else 1e-3)
        handle = open_flow(network, flow, config,
                           on_complete=collector.on_complete)
        if want_rtt:
            runtime.add_rtt_source(handle.sender)
    if runtime is not None:
        runtime.start()

    deadline = flows[-1].start_time + profile.time_cap
    chunk = max(profile.time_cap / 100.0, 1e-3)
    while len(collector) < len(flows) and sim.now < deadline:
        sim.run(until=min(sim.now + chunk, deadline))
    if auditor is not None:
        auditor.verify_fabric()
    if chaos is not None and fault_stats_out is not None:
        fault_stats_out.update(chaos.stats())
    if runtime is not None:
        runtime.stop()
        if controller_stats_out is not None:
            controller_stats_out.update(runtime.stats())

    if profiler is not None:
        profiler.stop()
        print(f"\n[{scheme_name} / {scheduler_name} / load {load:.2f} / "
              f"seed {seed}]")
        print(profiler.report())

    if provenance_out is not None:
        provenance_out["elapsed_s"] = time.perf_counter() - wall_start
        provenance_out["engine"] = {
            "events_processed": sim.events_processed,
            "wheel_events_processed": sim.wheel_events_processed,
            "heap_events_processed": sim.heap_events_processed,
            "cancelled_pending": sim.cancelled_pending,
            "compactions": sim.compactions,
        }

    by_class = collector.summary_by_class()
    return FctRow(
        scheme=scheme.name,
        scheduler=scheduler_name,
        load=load,
        n_flows=len(flows),
        completed=len(collector),
        overall=collector.summary(),
        small=by_class[SizeClass.SMALL],
        medium=by_class[SizeClass.MEDIUM],
        large=by_class[SizeClass.LARGE],
    )


def run_fct_point_multi(
    scheme_name: str,
    scheduler_name: str = "dwrr",
    load: float = 0.5,
    profile: Optional[ScaleProfile] = None,
    seeds: Sequence[int] = (1, 2, 3),
) -> FctRow:
    """One load point averaged over several workload seeds.

    Each seed generates an independent arrival sequence; the per-class
    summaries are averaged point-wise (counts summed), smoothing the
    sampling noise a single 10²-flow run carries.
    """
    from ..metrics.export import mean_of_summaries

    rows = [run_fct_point(scheme_name, scheduler_name, load, profile, seed)
            for seed in seeds]

    def merge(pick):
        values = [pick(row) for row in rows if pick(row) is not None]
        return mean_of_summaries(values) if values else None

    return FctRow(
        scheme=rows[0].scheme,
        scheduler=scheduler_name,
        load=load,
        n_flows=sum(row.n_flows for row in rows),
        completed=sum(row.completed for row in rows),
        overall=merge(lambda r: r.overall),
        small=merge(lambda r: r.small),
        medium=merge(lambda r: r.medium),
        large=merge(lambda r: r.large),
    )


def _sweep_worker(point) -> FctRow:
    """Module-level (picklable) worker for one sweep point.

    With a ``cache_dir`` the worker is the cache boundary: it answers
    hits from the store without simulating, and persists fresh results
    atomically *before* returning, so a crash between points — real or
    injected via :data:`CRASH_AFTER_ENV` — loses at most the point in
    flight.  Workers on different points write different keys; workers
    racing on the same key write identical bytes.  Either way the store
    stays consistent at any ``--jobs`` level.
    """
    (scheme_name, scheduler_name, load, profile, seed, profile_events,
     audit, cache_dir, force, faults, controller, topology, shards,
     trains) = point
    store = RunStore(cache_dir) if cache_dir else None
    spec = fct_point_spec(scheme_name, scheduler_name, load, profile, seed,
                          audit=audit, topology=topology, faults=faults,
                          controller=controller, shards=shards,
                          trains=trains)
    if store is not None and not force:
        record = store.get(spec)
        if record is not None:
            return FctRow.from_payload(record.result)
    provenance_out: Dict[str, Any] = {}
    row = run_fct_point(
        scheme_name, scheduler_name, load, profile, seed,
        topology=topology,
        config=RunConfig(profile_events=profile_events, audit=audit,
                         shards=shards if shards > 1 else None,
                         trains=trains if trains > 1 else None),
        provenance_out=provenance_out, faults=faults, controller=controller,
    )
    if store is not None:
        store.put(spec, row.to_payload(), make_provenance(
            profile_name=profile.name,
            elapsed_s=provenance_out.get("elapsed_s"),
            engine=provenance_out.get("engine"),
            shards=provenance_out.get("shards"),
        ))
        _note_point_computed()
    return row


def run_fct_sweep(
    scheme_names: Sequence[str] = LARGESCALE_SCHEMES,
    scheduler_name: str = "dwrr",
    profile: Optional[ScaleProfile] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = UNSET,
    profile_events: bool = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
    store: Optional[Union[RunStore, str]] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
    controller: Optional[ControllerSpec] = None,
    topology: Union[str, TopologySpec, None] = None,
) -> List[FctRow]:
    """The full figure set: every scheme × every load point.

    Under WFQ, MQ-ECN is skipped (round-based only, as in the paper).
    All schemes at a given (load, seed) see the *same* flow arrival
    sequence, so comparisons are paired.

    The points are independent simulations, each fully determined by its
    ``(scheme, scheduler, load, profile, seed)`` tuple, so they fan out
    over worker processes (``config.jobs``: ``None`` → the profile's
    default, ``0`` → all cores, ``1`` → serial) with results identical
    to the serial run — in value and in order — at every jobs level.

    With ``store`` (a :class:`~repro.store.RunStore` or its root path) or
    ``config.cache_dir``, each point is keyed by its
    :func:`fct_point_spec` content address: completed points are read
    back instead of re-simulated, an interrupted sweep resumes from
    whatever its workers persisted, and ``config.force`` (or
    ``config.resume=False``) recomputes and overwrites.  The ``jobs=`` /
    ``profile_events=`` / ``audit=`` keyword spellings are deprecated
    aliases for the corresponding :class:`~repro.store.RunConfig`
    fields.
    """
    from .runner import run_parallel

    config = resolve_run_config(config, "run_fct_sweep", jobs=jobs,
                                profile_events=profile_events, audit=audit)
    if profile is None:
        profile = config.profile if config.profile is not None else BENCH
    if seed is None:
        seed = config.seed if config.seed is not None else 1
    jobs = config.jobs if config.jobs is not None else profile.jobs
    if store is None and config.cache_dir:
        store = config.cache_dir
    cache_dir = (store.root if isinstance(store, RunStore)
                 else os.fspath(store) if store else None)
    force = config.force or not config.resume

    global _points_computed
    _points_computed = 0
    # The audit, fault and topology choices are resolved here and
    # shipped inside each point so worker processes need not share this
    # process's defaults.
    fault_specs = faults_enabled(faults)
    controller_spec = controller_enabled(controller)
    topology_spec = resolve_fct_topology(topology)
    shards = config.shards if config.shards is not None else 1
    trains = config.trains if config.trains is not None else 1
    points = [
        (name, scheduler_name, load, profile, seed,
         config.profile_events, audit_enabled(config.audit),
         cache_dir, force, fault_specs, controller_spec, topology_spec,
         shards, trains)
        for load in profile.loads
        for name in scheme_names
        if not (scheduler_name == "wfq" and name == "mq-ecn")
    ]
    return run_parallel(points, _sweep_worker, jobs=jobs)


def reduction_percent(
    rows: Sequence[FctRow],
    scheme: str,
    baseline: str,
    size_class: Optional[SizeClass],
    stat: str,
) -> Dict[float, float]:
    """Per-load FCT reduction of ``scheme`` vs ``baseline`` in percent
    (positive = scheme is faster) — the paper's headline numbers."""
    by_key = {(row.scheme, row.load): row for row in rows}
    loads = sorted({row.load for row in rows})
    result: Dict[float, float] = {}
    for load in loads:
        ours = by_key.get((scheme, load))
        theirs = by_key.get((baseline, load))
        if ours is None or theirs is None:
            continue
        value = ours.stat(size_class, stat)
        base = theirs.stat(size_class, stat)
        if value is None or base is None or base == 0:
            continue
        result[load] = (1.0 - value / base) * 100.0
    return result
