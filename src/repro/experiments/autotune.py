"""X-AUTOTUNE: static-optimal vs auto-tuned PMSB under load shifts.

The paper sets PMSB's port threshold once, from Theorem IV.1, for one
design load.  This family asks what that costs when the load *moves*:
each point runs a two-phase workload on the §VI-B leaf-spine fabric —
a Poisson arrival at ``load_lo``, then (starting at the shift time
``t_shift``, the last phase-A arrival) a second, independent arrival
process at ``load_hi`` — and measures small-flow tail FCT across both
phases.

A candidate is a two-phase threshold schedule ``(k0, k1)``: a
:class:`~repro.control.CemController` holds the port threshold at
``k0`` until ``t_shift`` and ``k1`` after.  The *static* family is the
diagonal ``k0 == k1`` (a controller committing an unchanged value
changes no marking decision, so diagonal dynamics are identical to an
uncontrolled run at that threshold).  :func:`run_autotune` evaluates
the whole diagonal, then lets
:func:`~repro.control.cross_entropy_search` explore the off-diagonal
plane with the diagonal pre-seeded into its memo table — the tuned
winner therefore can never score worse than the best static threshold,
and every candidate evaluation is cached in the content-addressed run
store, so interrupted searches resume and repeated searches are free
at any ``--jobs`` level.

``chaos=True`` adds the load shift's ugly cousin: a spine uplink flap
(down for 2 ms right after the shift), exercising the controller under
capacity loss as well as load change.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..control.cem import CemResult, cross_entropy_search
from ..control.controller import ControllerRuntime, ControllerSpec
from ..metrics.fct import FctCollector, SizeClass
from ..net.topology import TopologySpec
from ..sim.audit import FabricAuditor
from ..sim.engine import Simulator
from ..sim.faults import FaultScheduler, FaultSpec
from ..sim.rng import make_rng, stable_hash
from ..store.runstore import RunStore, make_provenance
from ..store.spec import ExperimentSpec
from ..transport.endpoints import open_flow
from ..workloads.distributions import PAPER_MIX
from ..workloads.generator import PoissonFlowGenerator
from .largescale import (N_SERVICES, _make_scheduler_factory,
                         largescale_scheme, resolve_fct_topology,
                         topology_params)
from .scale import BENCH, ScaleProfile

__all__ = ["AutotuneRow", "AutotuneReport", "autotune_point_spec",
           "run_autotune_point", "run_autotune", "DEFAULT_GRID",
           "CONTROLLER_PERIOD"]

#: Port-threshold grid (packets) the search runs over — brackets the
#: paper's Theorem IV.1 design point of 12.
DEFAULT_GRID = (4.0, 8.0, 12.0, 16.0, 24.0, 32.0)

#: Controller evaluation period used by every autotune candidate.
CONTROLLER_PERIOD = 500e-6

#: The chaos leg's flap: one spine uplink goes down for 2 ms shortly
#: after the load shift (``start`` is offset to ``t_shift`` at run
#: time, keeping the spec itself seed-independent).
_FLAP_DOWN = 0.5e-3
_FLAP_UP = 2.5e-3


@dataclass
class AutotuneRow:
    """One evaluated schedule ``(k0, k1)`` on one load-shift scenario."""

    k0: float
    k1: float
    scheduler: str
    load_lo: float
    load_hi: float
    chaos: bool
    seed: int
    n_flows: int
    completed: int
    #: Load-shift time (last phase-A arrival, seconds).
    t_shift: float
    #: The search objective: small-flow p99 FCT (seconds; falls back to
    #: overall p99 when the sample has no small class).
    objective: float
    small_mean: Optional[float]
    small_p99: Optional[float]
    overall_mean: float
    overall_p99: float
    #: Controller activity (ticks, changes staged) for provenance.
    controller: Dict[str, int]

    @property
    def static(self) -> bool:
        return self.k0 == self.k1

    def to_payload(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "AutotuneRow":
        return cls(**data)


def autotune_point_spec(
    k0: float,
    k1: float,
    scheduler_name: str,
    load_lo: float,
    load_hi: float,
    profile: ScaleProfile,
    seed: int,
    chaos: bool = False,
    audit: bool = False,
    topology: "Union[str, TopologySpec, None]" = None,
) -> ExperimentSpec:
    """Content address of one candidate evaluation.

    ``t_shift`` is *derived* (from the seed's phase-A arrivals), so it
    deliberately stays out of the key; the controller period is pinned
    here so a future period change invalidates old cache entries.  The
    historical default fabric (the profile's leaf-spine) adds no
    topology params, so pre-existing cache keys are untouched; any
    explicit non-default :class:`~repro.net.topology.TopologySpec`
    re-keys its points.
    """
    params: Dict[str, Any] = {"k0": float(k0), "k1": float(k1),
                              "load_hi": float(load_hi),
                              "chaos": bool(chaos),
                              "period": CONTROLLER_PERIOD}
    if topology is not None:
        topo = resolve_fct_topology(topology)
        if not topo.is_default:
            params.update(topology_params(topo))
    return ExperimentSpec.create(
        "autotune-point", scheme="pmsb", scheduler=scheduler_name,
        load=load_lo, seed=seed, profile=profile, audit=audit,
        params=params,
    )


def run_autotune_point(
    k0: float,
    k1: float,
    scheduler_name: str = "dwrr",
    load_lo: float = 0.3,
    load_hi: float = 0.7,
    profile: Optional[ScaleProfile] = None,
    seed: int = 1,
    chaos: bool = False,
    audit: bool = False,
    provenance_out: Optional[Dict[str, Any]] = None,
    topology: "Union[str, TopologySpec, None]" = None,
) -> AutotuneRow:
    """Simulate one schedule candidate on the two-phase workload."""
    if profile is None:
        profile = BENCH
    wall_start = time.perf_counter()
    topo = resolve_fct_topology(topology)
    scheme = largescale_scheme("pmsb", profile.link_rate,
                               base_rtt_hops=topo.base_rtt_hops)
    sim = Simulator()
    auditor = FabricAuditor(sim) if audit else None
    network = topo.build(
        sim, _make_scheduler_factory(scheduler_name), scheme.marker_factory,
        default_fabric=profile.fabric, link_rate=profile.link_rate,
    )
    if auditor is not None:
        auditor.attach_network(network)

    # Two independent arrival processes; phase B starts where phase A's
    # arrivals end.  Phase-B flow ids are renumbered past phase A's so
    # ECMP path choices stay a pure function of the combined schedule.
    hosts = [h.host_id for h in network.hosts]
    size_distribution = PAPER_MIX.scaled(profile.size_scale)
    flows_a = PoissonFlowGenerator(
        make_rng(seed), hosts, size_distribution, load=load_lo,
        link_rate_bps=profile.link_rate, n_services=N_SERVICES,
    ).generate(n_flows=profile.largescale_flows)
    t_shift = flows_a[-1].start_time
    flows_b = PoissonFlowGenerator(
        make_rng(stable_hash(seed, 1)), hosts, size_distribution,
        load=load_hi, link_rate_bps=profile.link_rate,
        n_services=N_SERVICES, start_time=t_shift,
    ).generate(n_flows=profile.largescale_flows)
    flows = flows_a + [
        replace(flow, flow_id=flow.flow_id + len(flows_a))
        for flow in flows_b
    ]

    if chaos:
        flap = FaultSpec(model="flap", links="leaf0->spine0",
                         down=_FLAP_DOWN, up=_FLAP_UP, start=t_shift)
        FaultScheduler(sim, [flap], seed=seed).apply(network)

    controller = ControllerSpec(name="cem", period=CONTROLLER_PERIOD,
                                t1=t_shift, k0=k0, k1=k1)
    runtime = ControllerRuntime(sim, network.all_marked_ports(),
                                controller.build(), controller.period)
    collector = FctCollector(size_scale=profile.size_scale)
    for flow in flows:
        open_flow(network, flow, scheme.transport_config(init_cwnd=16.0),
                  on_complete=collector.on_complete)
    runtime.start()

    deadline = flows[-1].start_time + profile.time_cap
    chunk = max(profile.time_cap / 100.0, 1e-3)
    while len(collector) < len(flows) and sim.now < deadline:
        sim.run(until=min(sim.now + chunk, deadline))
    runtime.stop()
    if auditor is not None:
        auditor.verify_fabric()

    if provenance_out is not None:
        provenance_out["elapsed_s"] = time.perf_counter() - wall_start
        provenance_out["engine"] = {
            "events_processed": sim.events_processed,
        }

    overall = collector.summary()
    small = collector.summary_by_class()[SizeClass.SMALL]
    objective = small.p99 if small is not None else overall.p99
    return AutotuneRow(
        k0=float(k0), k1=float(k1), scheduler=scheduler_name,
        load_lo=load_lo, load_hi=load_hi, chaos=chaos, seed=seed,
        n_flows=len(flows), completed=len(collector), t_shift=t_shift,
        objective=objective,
        small_mean=small.mean if small is not None else None,
        small_p99=small.p99 if small is not None else None,
        overall_mean=overall.mean, overall_p99=overall.p99,
        controller=runtime.stats(),
    )


def _autotune_worker(point) -> AutotuneRow:
    """Module-level (picklable) cache-boundary worker for one candidate.

    Same contract as ``largescale._sweep_worker``: store hits skip the
    simulation, fresh results persist before returning, racing workers
    on one key write identical bytes.
    """
    (k0, k1, scheduler_name, load_lo, load_hi, profile, seed, chaos,
     audit, cache_dir, force, topology) = point
    store = RunStore(cache_dir) if cache_dir else None
    spec = autotune_point_spec(k0, k1, scheduler_name, load_lo, load_hi,
                               profile, seed, chaos=chaos, audit=audit,
                               topology=topology)
    if store is not None and not force:
        record = store.get(spec)
        if record is not None:
            return AutotuneRow.from_payload(record.result)
    provenance_out: Dict[str, Any] = {}
    row = run_autotune_point(
        k0, k1, scheduler_name, load_lo, load_hi, profile, seed,
        chaos=chaos, audit=audit, provenance_out=provenance_out,
        topology=topology,
    )
    if store is not None:
        store.put(spec, row.to_payload(), make_provenance(
            profile_name=profile.name,
            elapsed_s=provenance_out.get("elapsed_s"),
            engine=provenance_out.get("engine"),
        ))
    return row


@dataclass
class AutotuneReport:
    """Outcome of one full static-vs-tuned comparison."""

    grid: Tuple[float, ...]
    #: Diagonal (static) evaluations, in grid order.
    static_rows: List[AutotuneRow]
    #: Best static threshold and its objective.
    best_static: AutotuneRow
    #: Best schedule over everything the search evaluated.
    best_tuned: AutotuneRow
    #: Distinct candidates evaluated (diagonal + CEM exploration).
    n_evaluations: int
    #: Percent improvement of tuned over static best (>= 0 by
    #: construction — the diagonal is in the search's memo table).
    improvement_percent: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "grid": list(self.grid),
            "static_rows": [row.to_payload() for row in self.static_rows],
            "best_static": self.best_static.to_payload(),
            "best_tuned": self.best_tuned.to_payload(),
            "n_evaluations": self.n_evaluations,
            "improvement_percent": self.improvement_percent,
        }


def run_autotune(
    grid: Sequence[float] = DEFAULT_GRID,
    scheduler_name: str = "dwrr",
    load_lo: float = 0.3,
    load_hi: float = 0.7,
    profile: Optional[ScaleProfile] = None,
    seed: int = 1,
    chaos: bool = False,
    rounds: int = 3,
    population: int = 6,
    jobs: Optional[int] = None,
    store: Optional[Union[RunStore, str]] = None,
    audit: bool = False,
    force: bool = False,
    topology: Union[str, TopologySpec, None] = None,
) -> AutotuneReport:
    """Static sweep + cross-entropy search over the schedule plane.

    Phase 1 evaluates the static diagonal ``(k, k)`` for every grid
    threshold (in parallel across ``jobs`` workers — each point is an
    independent simulation).  Phase 2 runs
    :func:`~repro.control.cross_entropy_search` over ``grid × grid``
    with the diagonal pre-seeded, so the returned ``best_tuned`` is the
    best of *everything* evaluated and can only match or beat
    ``best_static``.  With a ``store`` every candidate is cached by
    :func:`autotune_point_spec`, making the whole search resumable.
    """
    from .runner import run_parallel

    if profile is None:
        profile = BENCH
    cache_dir = (store.root if isinstance(store, RunStore)
                 else os.fspath(store) if store else None)
    grid = tuple(sorted(set(float(k) for k in grid)))
    topology_spec = resolve_fct_topology(topology)

    def point(k0: float, k1: float):
        return (k0, k1, scheduler_name, load_lo, load_hi, profile, seed,
                chaos, audit, cache_dir, force, topology_spec)

    diagonal = [point(k, k) for k in grid]
    static_rows = run_parallel(diagonal, _autotune_worker, jobs=jobs)
    rows: Dict[Tuple[float, float], AutotuneRow] = {
        (row.k0, row.k1): row for row in static_rows
    }

    def evaluate(k0: float, k1: float) -> float:
        row = _autotune_worker(point(k0, k1))
        rows[(k0, k1)] = row
        return row.objective

    result: CemResult = cross_entropy_search(
        evaluate, grid, seed=stable_hash(seed, 0xCE),
        rounds=rounds, population=population,
        evaluated={(row.k0, row.k1): row.objective for row in static_rows},
    )
    best_static = min(static_rows,
                      key=lambda row: (row.objective, row.k0))
    best_tuned = rows[result.best]
    improvement = 0.0
    if best_static.objective > 0:
        improvement = (1.0 - best_tuned.objective / best_static.objective) \
            * 100.0
    return AutotuneReport(
        grid=grid, static_rows=static_rows, best_static=best_static,
        best_tuned=best_tuned, n_evaluations=result.n_evaluations,
        improvement_percent=improvement,
    )
