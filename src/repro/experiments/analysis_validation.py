"""Empirical validation of Theorem IV.1 (bench T4).

The theorem says a queue's filter threshold must exceed
``γ_i·C·RTT/7`` or the queue underflows and throughput is lost.  We sweep
the PMSB port threshold across the bound predicted for one of two equal
queues, run the worst-case flow count from Eq. 11, and measure link
utilization: below the bound utilization should dip, above it the link
should stay full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.analysis import SteadyStateModel, worst_case_flow_count
from ..scheduling.dwrr import DwrrScheduler
from ..store.spec import RunConfig
from .scenario import incast_flows, make_scheme, run_incast

__all__ = ["BoundSweepRow", "threshold_bound_sweep", "estimate_rtt"]


def estimate_rtt(link_rate: float = 10e9, link_delay: float = 5e-6) -> float:
    """Base RTT of the single-bottleneck fabric (2 links each way)."""
    # Four propagation crossings plus two store-and-forward hops for the
    # data packet and two for the (small) ACK.
    from ..net.packet import ACK_BYTES, MTU_BYTES
    data_tx = 2 * MTU_BYTES * 8.0 / link_rate
    ack_tx = 2 * ACK_BYTES * 8.0 / link_rate
    return 4 * link_delay + data_tx + ack_tx


@dataclass(frozen=True)
class BoundSweepRow:
    """One point of the Theorem IV.1 sweep."""

    port_threshold: float
    queue_threshold: float
    bound: float
    n_flows: int
    predicted_underflow_free: bool
    utilization: float


def threshold_bound_sweep(
    threshold_factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    link_rate: float = 10e9,
    duration: float = 0.04,
) -> List[BoundSweepRow]:
    """Sweep ``k_i`` around the theorem bound and measure utilization.

    Two equal-weight queues, each carrying the worst-case number of flows
    for the configured threshold (Eq. 11, at least 2).  The PMSB port
    threshold is ``2·k_i`` so each queue's filter threshold is ``k_i``.
    """
    rtt = estimate_rtt(link_rate)
    model = SteadyStateModel(link_rate, rtt, weights=[1.0, 1.0])
    bound = model.threshold_bound(0)
    rows: List[BoundSweepRow] = []
    for factor in threshold_factors:
        k_i = bound * factor
        port_threshold = 2.0 * k_i
        n_flows = max(2, round(worst_case_flow_count(0.5, model.bdp_pkts, k_i)))
        scheme = make_scheme(
            "pmsb", link_rate=link_rate, n_queues=2,
            port_threshold_packets=port_threshold,
        )
        result = run_incast(
            scheme, lambda: DwrrScheduler(2),
            incast_flows([n_flows, n_flows]), link_rate=link_rate,
            config=RunConfig(duration=duration),
        )
        rows.append(
            BoundSweepRow(
                port_threshold=port_threshold,
                queue_threshold=k_i,
                bound=bound,
                n_flows=n_flows,
                predicted_underflow_free=model.underflow_free(0, k_i),
                utilization=result.total_gbps * 1e9 / link_rate,
            )
        )
    return rows
