"""Scale profiles.

The paper's testbed is NS-3 at 10 Gbps × 48 hosts × seconds of simulated
time.  A pure-Python event loop processes ~10⁵ events/second, so the
experiment harness exposes three profiles that shrink wall-clock cost
while preserving the dimensionless quantities that determine the results:
thresholds in BDP units, load fractions, weight ratios and flow-count
ratios are identical across profiles.

- ``TINY``  — smoke-test scale: used by the integration test suite.
- ``BENCH`` — the default for ``pytest benchmarks/``: minutes, not hours.
- ``PAPER`` — the paper's dimensions (48-host leaf-spine, unscaled flow
  sizes, full load sweep); hours of wall time, for offline runs.

EXPERIMENTS.md records which profile produced each reported number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["ScaleProfile", "TINY", "BENCH", "PAPER"]


@dataclass(frozen=True)
class ScaleProfile:
    """Knobs that trade fidelity for wall-clock time."""

    name: str
    #: Link rate everywhere (bits/s).
    link_rate: float
    #: Duration of static throughput/fairness experiments (seconds).
    static_duration: float
    #: Leaf-spine shape: (n_leaf, n_spine, hosts_per_leaf).
    fabric: Tuple[int, int, int]
    #: Flows generated per load point in the FCT experiments.
    largescale_flows: int
    #: Multiplier applied to every flow size in the FCT experiments.
    size_scale: float
    #: Load sweep points for the FCT experiments.
    loads: Tuple[float, ...]
    #: Hard cap on simulated time per FCT run (seconds).
    time_cap: float
    #: Default worker processes for sweep parallelism (1 = serial;
    #: 0 = all cores).  ``--jobs`` on the CLI overrides per run.
    jobs: int = 1


TINY = ScaleProfile(
    name="tiny",
    link_rate=10e9,
    static_duration=0.015,
    fabric=(2, 2, 3),
    largescale_flows=30,
    size_scale=0.05,
    loads=(0.5,),
    time_cap=0.5,
)

BENCH = ScaleProfile(
    name="bench",
    link_rate=10e9,
    static_duration=0.04,
    fabric=(2, 2, 4),
    largescale_flows=120,
    size_scale=0.15,
    loads=(0.3, 0.5, 0.7),
    time_cap=2.0,
)

PAPER = ScaleProfile(
    name="paper",
    link_rate=10e9,
    static_duration=0.5,
    fabric=(4, 4, 12),
    largescale_flows=2000,
    size_scale=1.0,
    loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    time_cap=30.0,
)
