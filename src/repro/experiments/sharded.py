"""Sharded runners: one scenario spread over N conservative shards.

Each family (FCT, incast, X-SCALE) gets a ``sharded_*`` twin of its
single-process runner.  The twin's per-shard *builder* reconstructs the
full fabric and all flow descriptors deterministically (so every RNG
stream, device name, and flow id matches the single-process run), cuts
the fabric with :class:`~repro.sim.shard.CutFabric`, wires only the
flows whose endpoints this shard owns, and hands a
:class:`~repro.sim.shard.ShardScenario` to the round driver.

Determinism contract (see ``docs/API.md``):

* FCT rows merge byte-identically at any shard count — Poisson start
  times are continuous, so cross-shard same-timestamp ties have measure
  zero, and the parent re-sorts completion records into chronological
  ``(completion_time, flow_id)`` order;
* incast starts every flow at ``t=0``, so equal-timestamp arrivals at
  the convergence port can interleave differently across shard counts;
  per-queue throughput is compared under a documented ~5% tolerance;
* fault streams are keyed per link name and consumed at ``deliver()``
  time in the link's owning shard only, so loss sequences are
  byte-identical (timed flap in-flight kills are the one documented
  divergence source).
"""

from __future__ import annotations

import time
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..metrics.fct import FctCollector, FctRecord, SizeClass
from ..metrics.throughput import ThroughputMeter
from ..net.topology import Network, TopologySpec
from ..sim.audit import FabricAuditor
from ..sim.engine import Simulator
from ..sim.faults import FaultScheduler, FaultSpec
from ..sim.rng import make_rng
from ..sim.shard import (CutFabric, ShardResult, ShardScenario,
                         ShardedSimulator, aggregate_shard_stats,
                         plan_shards)
from ..transport.base import DctcpConfig
from ..transport.endpoints import open_flow
from ..transport.flow import Flow
from ..transport.receiver import DctcpReceiver
from ..workloads.distributions import PAPER_MIX
from ..workloads.generator import PoissonFlowGenerator
from .scale import ScaleProfile
from .scenario import SchemeSpec

__all__ = [
    "sharded_fct_point",
    "sharded_incast_run",
    "sharded_xscale_point",
    "wire_local_flows",
]


def _wire_receiver(network: Network, flow: Flow,
                   config: DctcpConfig) -> DctcpReceiver:
    """Receiver-only wiring: the sender lives in another shard."""
    sim = network.sim
    dst_host = network.host(flow.dst)
    receiver = DctcpReceiver(sim, dst_host, flow,
                             ack_every=config.ack_every,
                             delack_timeout=config.delack_timeout)
    if sim.auditor is not None:
        sim.auditor.watch_receiver(flow, receiver)
    else:
        dst_host.register_flow(flow.flow_id, data_handler=receiver.on_data)
    return receiver


def wire_local_flows(
    network: Network,
    fabric: CutFabric,
    flows: Sequence[Flow],
    make_config: Callable[[Flow], DctcpConfig],
    on_complete=None,
) -> List[Any]:
    """Open each flow the way this shard sees it.

    * source local → full :func:`open_flow` (the remote-host receiver
      object it creates is inert — nothing is routed to it);
    * only destination local → receiver-only wiring, so data arriving
      over the boundary finds its endpoint;
    * neither local → skipped (transit shards need no endpoints).

    Returns the local sender handles (source-local flows only).
    """
    local = fabric.local_host_ids
    handles: List[Any] = []
    for flow in flows:
        if flow.src in local:
            config = make_config(flow)
            handles.append(open_flow(network, flow, config,
                                     on_complete=on_complete))
        elif flow.dst in local:
            _wire_receiver(network, flow, make_config(flow))
    return handles


def _merge_fault_stats(per_shard: List[Optional[Dict[str, Any]]]
                       ) -> Dict[str, Any]:
    """Sum per-link chaos stats across shards.

    Each link delivers (and classifies losses) in exactly one shard —
    the one owning its transmitter — so summing reproduces the
    single-process breakdown.
    """
    merged: Dict[str, Any] = {"links": {}, "drops": {}}
    for stats in per_shard:
        if not stats:
            continue
        for name, link_stats in stats.get("links", {}).items():
            into = merged["links"].setdefault(
                name, {"delivered": 0, "lost": 0, "breakdown": {}})
            into["delivered"] += link_stats.get("delivered", 0)
            into["lost"] += link_stats.get("lost", 0)
            for reason, count in link_stats.get("breakdown", {}).items():
                into["breakdown"][reason] = (
                    into["breakdown"].get(reason, 0) + count)
        for reason, count in stats.get("drops", {}).items():
            merged["drops"][reason] = merged["drops"].get(reason, 0) + count
    merged["links"] = dict(sorted(merged["links"].items()))
    return merged


def _engine_totals(results: List[ShardResult]) -> Dict[str, int]:
    totals = {"events_processed": 0, "wheel_events_processed": 0,
              "heap_events_processed": 0, "cancelled_pending": 0,
              "compactions": 0}
    for result in results:
        for key in totals:
            totals[key] += result.stats.get(key, 0)
    return totals


# ---------------------------------------------------------------------------
# FCT (§VI-B large-scale points)


def _build_fct_shard(shard_id: int, n_shards: int, scheme_name: str,
                     scheduler_name: str, load: float,
                     profile: ScaleProfile, seed: int, topo: TopologySpec,
                     audit: bool,
                     fault_specs: Tuple[FaultSpec, ...]) -> ShardScenario:
    from .largescale import (N_SERVICES, _make_scheduler_factory,
                             largescale_scheme)

    scheme = largescale_scheme(scheme_name, profile.link_rate,
                               base_rtt_hops=topo.base_rtt_hops)
    rng = make_rng(seed)
    sim = Simulator()
    auditor = FabricAuditor(sim) if audit else None
    network = topo.build(
        sim, _make_scheduler_factory(scheduler_name), scheme.marker_factory,
        default_fabric=profile.fabric, link_rate=profile.link_rate,
    )
    plan = plan_shards(network, n_shards)
    fabric = CutFabric(sim, network, plan, shard_id)
    if auditor is not None:
        auditor.attach_network(network)
        # Publish host locality before flows open, so the transport
        # validators know which receivers are remote mirrors.
        fabric.sync_auditor()
    chaos = None
    if fault_specs:
        chaos = FaultScheduler(sim, fault_specs, seed=seed)
        chaos.apply(network)

    size_distribution = PAPER_MIX.scaled(profile.size_scale)
    generator = PoissonFlowGenerator(
        rng, [h.host_id for h in network.hosts], size_distribution,
        load=load, link_rate_bps=profile.link_rate, n_services=N_SERVICES,
    )
    flows = generator.generate(n_flows=profile.largescale_flows)
    collector = FctCollector(size_scale=profile.size_scale)
    wire_local_flows(network, fabric, flows,
                     lambda _flow: scheme.transport_config(init_cwnd=16.0),
                     on_complete=collector.on_complete)
    deadline = flows[-1].start_time + profile.time_cap

    def finalize() -> Dict[str, Any]:
        fabric.sync_auditor()
        if auditor is not None:
            auditor.verify_fabric()
        return {
            "records": [(r.flow_id, r.size_bytes, r.service,
                         r.start_time, r.fct) for r in collector.records],
            "n_flows": len(flows),
            "fault_stats": chaos.stats() if chaos is not None else None,
        }

    return ShardScenario(sim=sim, fabric=fabric, deadline=deadline,
                         total_units=len(flows),
                         completed=lambda: len(collector),
                         finalize=finalize)


def sharded_fct_point(
    scheme_name: str,
    scheduler_name: str,
    load: float,
    profile: ScaleProfile,
    seed: int,
    shards: int,
    topo: TopologySpec,
    audit: bool = False,
    faults: Sequence[FaultSpec] = (),
    executor: str = "auto",
    provenance_out: Optional[Dict[str, Any]] = None,
    fault_stats_out: Optional[Dict[str, Any]] = None,
) -> "Any":
    """Sharded twin of :func:`~repro.experiments.largescale.run_fct_point`.

    Returns the same :class:`FctRow`; completion records from all shards
    are merged in chronological ``(completion_time, flow_id)`` order, so
    the row is byte-identical to the single-process run.
    """
    from .largescale import FctRow

    wall_start = time.perf_counter()
    builder = partial(_build_fct_shard, scheme_name=scheme_name,
                      scheduler_name=scheduler_name, load=load,
                      profile=profile, seed=seed, topo=topo, audit=audit,
                      fault_specs=tuple(faults))
    results = ShardedSimulator(shards, builder, executor=executor).run()

    records: List[Tuple[Any, ...]] = []
    n_flows = 0
    for result in results:
        records.extend(result.payload["records"])
        n_flows = max(n_flows, result.payload["n_flows"])
    records.sort(key=lambda r: (r[3] + r[4], r[0]))
    collector = FctCollector(size_scale=profile.size_scale)
    for rec in records:
        collector.records.append(FctRecord(*rec))

    if fault_stats_out is not None and any(
            result.payload.get("fault_stats") for result in results):
        fault_stats_out.update(_merge_fault_stats(
            [result.payload.get("fault_stats") for result in results]))
    if provenance_out is not None:
        provenance_out["elapsed_s"] = time.perf_counter() - wall_start
        provenance_out["engine"] = _engine_totals(results)
        provenance_out["shards"] = aggregate_shard_stats(results)

    by_class = collector.summary_by_class()
    from .largescale import largescale_scheme
    scheme = largescale_scheme(scheme_name, profile.link_rate,
                               base_rtt_hops=topo.base_rtt_hops)
    return FctRow(
        scheme=scheme.name,
        scheduler=scheduler_name,
        load=load,
        n_flows=n_flows,
        completed=len(collector),
        overall=collector.summary(),
        small=by_class[SizeClass.SMALL],
        medium=by_class[SizeClass.MEDIUM],
        large=by_class[SizeClass.LARGE],
    )


# ---------------------------------------------------------------------------
# Incast (static convergence scenarios)


def _build_incast_shard(shard_id: int, n_shards: int, scheme: SchemeSpec,
                        scheduler_factory, flows: Sequence[Flow],
                        duration: float, link_rate: float,
                        rate_limits: Optional[Dict[int, float]],
                        init_cwnd: float, buffer_packets: int,
                        audit: bool, fault_specs: Tuple[FaultSpec, ...],
                        fault_seed: int, shared_buffer,
                        topo: TopologySpec) -> ShardScenario:
    n_senders = max(flow.src for flow in flows) + 1
    sim = Simulator()
    auditor = FabricAuditor(sim) if audit else None
    network = topo.build(
        sim, scheduler_factory, scheme.marker_factory,
        shared_buffer=shared_buffer, default_senders=n_senders,
        link_rate=link_rate, buffer_packets=buffer_packets,
    )
    receiver_id = n_senders
    plan = plan_shards(network, n_shards)
    fabric = CutFabric(sim, network, plan, shard_id)
    if auditor is not None:
        auditor.attach_network(network)
        fabric.sync_auditor()
    chaos = None
    if fault_specs:
        chaos = FaultScheduler(sim, fault_specs, seed=fault_seed)
        chaos.apply(network)

    observes = plan.host_owner[receiver_id] == shard_id
    meter = None
    observed = None
    if observes:
        bottleneck = network.observed_ports("bottleneck")
        observed = bottleneck[0] if bottleneck else None
        if observed is None:
            observed = network.host_facing_port(receiver_id)
        if observed is None:
            raise ValueError(
                f"fabric has no port facing the receiver (host "
                f"{receiver_id})")
        meter = ThroughputMeter(sim, bin_width=duration / 100.0)
        meter.attach_port(observed)

    def make_config(flow: Flow) -> DctcpConfig:
        rate = None if rate_limits is None else rate_limits.get(flow.src)
        return scheme.transport_config(rate_limit_bps=rate,
                                       init_cwnd=init_cwnd)

    wire_local_flows(network, fabric, flows, make_config)

    def finalize() -> Dict[str, Any]:
        fabric.sync_auditor()
        if auditor is not None:
            auditor.verify_fabric()
        payload: Dict[str, Any] = {
            "fault_stats": chaos.stats() if chaos is not None else None,
            "queue_gbps": None,
        }
        if meter is not None and observed is not None:
            warmup = duration / 3.0
            payload["queue_gbps"] = {
                q: meter.average_bps(q, warmup, duration) / 1e9
                for q in range(observed.n_queues)}
        return payload

    return ShardScenario(sim=sim, fabric=fabric, deadline=duration,
                         total_units=None, completed=lambda: 0,
                         finalize=finalize)


def sharded_incast_run(
    scheme: SchemeSpec,
    scheduler_factory,
    flows: Sequence[Flow],
    duration: float,
    topo: TopologySpec,
    shards: int,
    warmup_fraction: float = 1.0 / 3.0,
    link_rate: float = 10e9,
    rate_limits: Optional[Dict[int, float]] = None,
    init_cwnd: float = 16.0,
    buffer_packets: int = 1000,
    audit: bool = False,
    faults: Sequence[FaultSpec] = (),
    fault_seed: int = 0,
    shared_buffer=None,
    executor: str = "auto",
    provenance_out: Optional[Dict[str, Any]] = None,
    fault_stats_out: Optional[Dict[str, Any]] = None,
) -> "Any":
    """Sharded twin of :func:`~repro.experiments.scenario.run_incast`.

    Returns a *reduced* :class:`IncastResult`: ``queue_gbps`` (measured
    by the shard that owns the receiver's downlink) is exact, but the
    live ``network`` / ``meter`` / ``handles`` objects stay in the
    worker processes and come back as ``None`` / empty.
    """
    from .scenario import IncastResult

    wall_start = time.perf_counter()
    # Note: warmup here must match the worker-side finalize (1/3).
    if abs(warmup_fraction - 1.0 / 3.0) > 1e-12:
        raise ValueError("sharded incast supports only the default "
                         "warmup_fraction=1/3")
    builder = partial(_build_incast_shard, scheme=scheme,
                      scheduler_factory=scheduler_factory,
                      flows=list(flows), duration=duration,
                      link_rate=link_rate, rate_limits=rate_limits,
                      init_cwnd=init_cwnd, buffer_packets=buffer_packets,
                      audit=audit, fault_specs=tuple(faults),
                      fault_seed=fault_seed, shared_buffer=shared_buffer,
                      topo=topo)
    results = ShardedSimulator(shards, builder, executor=executor).run()

    queue_gbps: Optional[Dict[int, float]] = None
    for result in results:
        if result.payload.get("queue_gbps") is not None:
            queue_gbps = result.payload["queue_gbps"]
    if queue_gbps is None:
        raise RuntimeError("no shard reported the observed port's rates")
    if fault_stats_out is not None and any(
            result.payload.get("fault_stats") for result in results):
        fault_stats_out.update(_merge_fault_stats(
            [result.payload.get("fault_stats") for result in results]))
    if provenance_out is not None:
        provenance_out["elapsed_s"] = time.perf_counter() - wall_start
        provenance_out["engine"] = _engine_totals(results)
        provenance_out["shards"] = aggregate_shard_stats(results)

    return IncastResult(
        scheme=scheme.name, duration=duration,
        warmup=duration * warmup_fraction, queue_gbps=queue_gbps,
        network=None, meter=None, handles=[], trace=None, chaos=None,
    )


# ---------------------------------------------------------------------------
# X-SCALE (victim protection vs fabric size)


def _build_xscale_shard(shard_id: int, n_shards: int, scheme_name: str,
                        scheduler_name: str, topo: TopologySpec,
                        hogs: int, link_rate: float, seed: int,
                        duration: float, audit: bool) -> ShardScenario:
    from .scenario import make_scheme
    from .sharedbuf import _scheduler_factory
    from .xscale import _pick_endpoints

    scheme = make_scheme(scheme_name, link_rate=link_rate, n_queues=2)
    sim = Simulator()
    auditor = FabricAuditor(sim) if audit else None
    build_start = time.perf_counter()
    network = topo.build(sim, _scheduler_factory(scheduler_name, 2),
                         scheme.marker_factory, link_rate=link_rate)
    build_s = time.perf_counter() - build_start
    plan = plan_shards(network, n_shards)
    fabric = CutFabric(sim, network, plan, shard_id)
    if auditor is not None:
        auditor.attach_network(network)
        fabric.sync_auditor()

    host_ids = [host.host_id for host in network.hosts]
    receiver, victim, sources = _pick_endpoints(host_ids, hogs, seed)
    # Explicit flow ids keep every shard's id assignment aligned
    # (Flow's default draws from a process-global counter).
    flows = [Flow(src=victim, dst=receiver, service=0, flow_id=1)]
    flows += [Flow(src=src, dst=receiver, service=1, flow_id=2 + index)
              for index, src in enumerate(sources)]

    observes = plan.host_owner[receiver] == shard_id
    meter = None
    downlink = None
    if observes:
        downlink = network.host_facing_port(receiver)
        if downlink is None:
            raise ValueError(f"fabric has no host-facing port for "
                             f"receiver {receiver}")
        meter = ThroughputMeter(sim, bin_width=1e-3)
        meter.attach_port(downlink)

    wire_local_flows(network, fabric, flows,
                     lambda _flow: scheme.transport_config(init_cwnd=4.0))

    def finalize() -> Dict[str, Any]:
        fabric.sync_auditor()
        if auditor is not None:
            auditor.verify_fabric()
        payload: Dict[str, Any] = {
            "scheme_label": scheme.name,
            "n_hosts": len(network.hosts),
            "n_switches": len(network.switches),
            "build_s": build_s,
            "rates": None,
        }
        if meter is not None and downlink is not None:
            warmup = duration / 3.0
            payload["rates"] = {
                "victim_gbps": meter.average_bps(0, warmup, duration) / 1e9,
                "hogs_gbps": meter.average_bps(1, warmup, duration) / 1e9,
                "drops": downlink.drops,
            }
        return payload

    return ShardScenario(sim=sim, fabric=fabric, deadline=duration,
                         total_units=None, completed=lambda: 0,
                         finalize=finalize)


def sharded_xscale_point(
    scheme_name: str,
    topo: TopologySpec,
    scheduler_name: str,
    hogs: int,
    link_rate: float,
    seed: int,
    duration: float,
    audit: bool,
    shards: int,
    executor: str = "auto",
    provenance_out: Optional[Dict[str, Any]] = None,
) -> "Any":
    """Sharded twin of :func:`~repro.experiments.xscale.xscale_point`."""
    from .xscale import XScaleRow, _spec_text

    wall_start = time.perf_counter()
    builder = partial(_build_xscale_shard, scheme_name=scheme_name,
                      scheduler_name=scheduler_name, topo=topo, hogs=hogs,
                      link_rate=link_rate, seed=seed, duration=duration,
                      audit=audit)
    results = ShardedSimulator(shards, builder, executor=executor).run()

    rates = None
    for result in results:
        if result.payload.get("rates") is not None:
            rates = result.payload["rates"]
    if rates is None:
        raise RuntimeError("no shard reported the receiver downlink rates")
    if provenance_out is not None:
        provenance_out["elapsed_s"] = time.perf_counter() - wall_start
        provenance_out["engine"] = _engine_totals(results)
        provenance_out["shards"] = aggregate_shard_stats(results)

    victim_gbps = rates["victim_gbps"]
    hogs_gbps = rates["hogs_gbps"]
    total = victim_gbps + hogs_gbps
    fair = total / 2.0
    victim_err = abs(victim_gbps - fair) / fair if total else 0.0
    first = results[0].payload
    return XScaleRow(
        scheme=first["scheme_label"], scheduler=scheduler_name,
        topology=_spec_text(topo),
        n_hosts=first["n_hosts"], n_switches=first["n_switches"],
        hogs=hogs, seed=seed,
        victim_gbps=victim_gbps, hogs_gbps=hogs_gbps,
        victim_err=victim_err, drops=rates["drops"],
        build_s=max(result.payload["build_s"] for result in results),
    )
