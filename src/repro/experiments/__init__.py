"""Experiment harness: one builder per paper figure/table (see DESIGN.md)."""

from . import ablations, analysis_validation, extensions, largescale
from . import marking_point, motivation, static_flows
from .scale import BENCH, PAPER, ScaleProfile, TINY
from .scenario import (IncastResult, SCHEME_NAMES, SchemeSpec, incast_flows,
                       make_scheme, run_incast)

__all__ = [
    "BENCH",
    "IncastResult",
    "PAPER",
    "SCHEME_NAMES",
    "ScaleProfile",
    "SchemeSpec",
    "TINY",
    "ablations",
    "analysis_validation",
    "extensions",
    "incast_flows",
    "largescale",
    "make_scheme",
    "marking_point",
    "motivation",
    "run_incast",
    "static_flows",
]
