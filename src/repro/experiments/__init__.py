"""Experiment harness: one builder per paper figure/table (see DESIGN.md)."""

from ..store import ExperimentSpec, RunConfig, RunRecord, RunStore
from . import ablations, analysis_validation, chaos, extensions, largescale
from . import marking_point, motivation, runner, static_flows
from .chaos import chaos_point_spec, run_chaos_sweep
from .largescale import fct_point_spec
from .runner import available_jobs, run_parallel, seed_for
from .scale import BENCH, PAPER, ScaleProfile, TINY
from .scenario import (IncastResult, SCHEME_NAMES, SchemeSpec, incast_flows,
                       make_scheme, run_incast)

__all__ = [
    "BENCH",
    "ExperimentSpec",
    "IncastResult",
    "PAPER",
    "RunConfig",
    "RunRecord",
    "RunStore",
    "SCHEME_NAMES",
    "ScaleProfile",
    "SchemeSpec",
    "TINY",
    "ablations",
    "analysis_validation",
    "available_jobs",
    "chaos",
    "chaos_point_spec",
    "extensions",
    "fct_point_spec",
    "incast_flows",
    "largescale",
    "make_scheme",
    "marking_point",
    "motivation",
    "run_chaos_sweep",
    "run_incast",
    "run_parallel",
    "runner",
    "seed_for",
    "static_flows",
]
