"""Ablations on PMSB's design choices (DESIGN.md items AB1/AB2).

Neither sweep appears in the paper, but both probe the paper's central
trade-off claim (§III): the selective-blindness filter can afford to be
aggressive — a small false-positive probability buys the elimination of
false negatives.

- AB1 sweeps the *aggressiveness* of the queue filter: scale 0 is pure
  per-port marking (maximal false positives → victim flows), large scales
  approach per-queue fractional marking (false negatives → latency).
- AB2 sweeps PMSB(e)'s RTT threshold: too low accepts every mark (victim
  flows return), too high ignores real congestion (latency grows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..metrics.stats import summarize
from ..store.spec import RunConfig
from ..scheduling.dwrr import DwrrScheduler
from .scenario import incast_flows, make_scheme, run_incast

__all__ = ["AblationRow", "blindness_aggressiveness",
           "rtt_threshold_sweep", "WeightedShareRow",
           "weighted_share_preservation"]


@dataclass(frozen=True)
class AblationRow:
    """One setting of an ablation sweep on the 1:8 victim scenario."""

    parameter: float
    queue1_gbps: float
    queue2_gbps: float
    rtt_p99_us: float

    @property
    def fair_share_error(self) -> float:
        total = self.queue1_gbps + self.queue2_gbps
        if total == 0:
            return 0.0
        fair = total / 2.0
        return abs(self.queue1_gbps - fair) / fair


def blindness_aggressiveness(
    scales: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
    port_threshold: float = 16.0,
    flows_queue2: int = 8,
    link_rate: float = 10e9,
    duration: float = 0.04,
) -> List[AblationRow]:
    """AB1: sweep the queue-filter scale on the 1:8 victim scenario."""
    rows: List[AblationRow] = []
    for scale in scales:
        scheme = make_scheme(
            "pmsb", link_rate=link_rate, n_queues=2,
            port_threshold_packets=port_threshold, blindness_scale=scale,
        )
        result = run_incast(
            scheme, lambda: DwrrScheduler(2),
            incast_flows([1, flows_queue2]), link_rate=link_rate,
            record_rtt=True, config=RunConfig(duration=duration),
        )
        samples = result.rtt_samples(queue_index=1)
        steady = samples[len(samples) // 3:]
        rows.append(
            AblationRow(
                parameter=scale,
                queue1_gbps=result.queue_gbps[0],
                queue2_gbps=result.queue_gbps[1],
                rtt_p99_us=summarize(steady).p99 * 1e6,
            )
        )
    return rows


def rtt_threshold_sweep(
    thresholds_us: Sequence[float] = (0.0, 20.0, 40.0, 80.0, 160.0),
    port_threshold: float = 16.0,
    flows_queue2: int = 8,
    link_rate: float = 10e9,
    duration: float = 0.04,
) -> List[AblationRow]:
    """AB2: sweep PMSB(e)'s RTT threshold on the 1:8 victim scenario."""
    rows: List[AblationRow] = []
    for threshold_us in thresholds_us:
        scheme = make_scheme(
            "pmsb-e", link_rate=link_rate, n_queues=2,
            port_threshold_packets=port_threshold,
            rtt_threshold=threshold_us * 1e-6,
        )
        result = run_incast(
            scheme, lambda: DwrrScheduler(2),
            incast_flows([1, flows_queue2]), link_rate=link_rate,
            record_rtt=True, config=RunConfig(duration=duration),
        )
        samples = result.rtt_samples(queue_index=1)
        steady = samples[len(samples) // 3:]
        rows.append(
            AblationRow(
                parameter=threshold_us,
                queue1_gbps=result.queue_gbps[0],
                queue2_gbps=result.queue_gbps[1],
                rtt_p99_us=summarize(steady).p99 * 1e6,
            )
        )
    return rows


@dataclass(frozen=True)
class WeightedShareRow:
    """Observed vs intended split for one weight vector."""

    weights: Sequence[float]
    queue_gbps: Sequence[float]

    @property
    def max_relative_error(self) -> float:
        total_rate = sum(self.queue_gbps)
        total_weight = sum(self.weights)
        if total_rate == 0:
            return 0.0
        worst = 0.0
        for weight, rate in zip(self.weights, self.queue_gbps):
            intended = total_rate * weight / total_weight
            worst = max(worst, abs(rate - intended) / intended)
        return worst


def weighted_share_preservation(
    weight_vectors: Sequence[Sequence[float]] = ((1, 1), (3, 1), (4, 2, 1)),
    flows_per_queue: int = 2,
    port_threshold: float = 16.0,
    link_rate: float = 10e9,
    duration: float = 0.04,
) -> List[WeightedShareRow]:
    """AB3: PMSB under *unequal* DWRR weights.

    The paper's experiments all use equal weights; Eq. 6's filter
    thresholds are weight-proportional precisely so unequal policies are
    preserved too.  Each queue gets the same number of flows, so any
    deviation from the weighted split is the marking scheme's fault, not
    demand asymmetry.
    """
    rows: List[WeightedShareRow] = []
    for weights in weight_vectors:
        n_queues = len(weights)
        scheme = make_scheme(
            "pmsb", link_rate=link_rate, n_queues=n_queues,
            weights=list(weights), port_threshold_packets=port_threshold,
        )
        result = run_incast(
            scheme,
            lambda w=tuple(weights): DwrrScheduler(len(w), list(w)),
            incast_flows([flows_per_queue] * n_queues),
            link_rate=link_rate, config=RunConfig(duration=duration),
        )
        rows.append(
            WeightedShareRow(
                weights=tuple(weights),
                queue_gbps=tuple(result.queue_gbps[q]
                                 for q in range(n_queues)),
            )
        )
    return rows
