"""Motivation experiments (paper §II-B, Figs. 1–3 and §III Figs. 6–7).

These reproduce the three failure modes that motivate PMSB:

- per-queue marking with the *standard* threshold → latency grows with
  the number of active queues (Fig. 1);
- per-queue marking with the *fractional* threshold → a lone flow cannot
  fill the link (Fig. 2);
- per-port marking → flows in a lightly-loaded queue become marking
  victims and weighted fair sharing breaks (Fig. 3); raising the port
  threshold repairs it for few flows (Fig. 6) but not for many (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..metrics.stats import SummaryStats, summarize
from ..store.spec import RunConfig
from ..scheduling.dwrr import DwrrScheduler
from .scenario import incast_flows, make_scheme, run_incast

__all__ = [
    "per_queue_standard_rtt",
    "per_queue_fractional_throughput",
    "per_port_victim",
    "VictimResult",
]


def per_queue_standard_rtt(
    queue_counts: Sequence[int] = (1, 2, 4, 8),
    n_flows: int = 8,
    threshold_packets: float = 16.0,
    link_rate: float = 10e9,
    duration: float = 0.04,
) -> Dict[int, SummaryStats]:
    """Fig. 1: RTT distribution vs number of active queues.

    ``n_flows`` flows from distinct senders share the bottleneck; they are
    spread evenly over ``n`` queues, each queue carrying the full standard
    threshold.  Returns RTT summaries (seconds) per queue count.
    """
    results: Dict[int, SummaryStats] = {}
    for n_queues in queue_counts:
        scheme = make_scheme(
            "per-queue-standard", link_rate=link_rate, n_queues=n_queues,
            standard_threshold_packets=threshold_packets,
        )
        flows_per_queue = [0] * n_queues
        for i in range(n_flows):
            flows_per_queue[i % n_queues] += 1
        result = run_incast(
            scheme, lambda n=n_queues: DwrrScheduler(n),
            incast_flows(flows_per_queue), link_rate=link_rate,
            record_rtt=True, config=RunConfig(duration=duration),
        )
        samples = result.rtt_samples()
        # Skip the slow-start transient: drop the first third of samples.
        steady = samples[len(samples) // 3:]
        results[n_queues] = summarize(steady)
    return results


def per_queue_fractional_throughput(
    thresholds_packets: Sequence[float] = (2.0, 16.0),
    n_queues: int = 8,
    link_rate: float = 10e9,
    duration: float = 0.04,
) -> Dict[float, float]:
    """Fig. 2: throughput of a single flow vs its queue's threshold.

    With 8 equal-weight queues, the fractional share of a 16-packet
    standard threshold is 2 packets — too small to keep the pipe full.
    Returns Gbps per threshold value.
    """
    results: Dict[float, float] = {}
    for threshold in thresholds_packets:
        scheme = make_scheme(
            "per-queue-standard", link_rate=link_rate, n_queues=n_queues,
            standard_threshold_packets=threshold,
        )
        flows_per_queue = [0] * n_queues
        flows_per_queue[0] = 1
        result = run_incast(
            scheme, lambda: DwrrScheduler(n_queues),
            incast_flows(flows_per_queue), link_rate=link_rate,
            config=RunConfig(duration=duration),
        )
        results[threshold] = result.queue_gbps[0]
    return results


@dataclass(frozen=True)
class VictimResult:
    """Per-port marking fairness outcome for one configuration."""

    port_threshold: float
    flows_queue1: int
    flows_queue2: int
    queue1_gbps: float
    queue2_gbps: float

    @property
    def fair_share_error(self) -> float:
        """|observed − fair| / fair for queue 1 (equal weights → 50%)."""
        total = self.queue1_gbps + self.queue2_gbps
        if total == 0:
            return 0.0
        fair = total / 2.0
        return abs(self.queue1_gbps - fair) / fair


def per_port_victim(
    port_threshold: float = 16.0,
    flows_queue2: int = 8,
    link_rate: float = 10e9,
    duration: float = 0.04,
    trains: Optional[int] = None,
) -> VictimResult:
    """Figs. 3/6/7: 1 flow vs N flows under per-port marking.

    Two equal-weight queues; queue 1 has one flow, queue 2 has
    ``flows_queue2``.  With DWRR both should get 5 Gbps; per-port marking
    starves queue 1 when the port threshold is small relative to the flow
    count.  ``trains`` enables the tolerance-accurate packet-train tier
    (the CLI's ``--trains``).
    """
    scheme = make_scheme(
        "per-port", link_rate=link_rate,
        port_threshold_packets=port_threshold,
    )
    result = run_incast(
        scheme, lambda: DwrrScheduler(2),
        incast_flows([1, flows_queue2]), link_rate=link_rate,
        config=RunConfig(duration=duration, trains=trains),
    )
    return VictimResult(
        port_threshold=port_threshold,
        flows_queue1=1,
        flows_queue2=flows_queue2,
        queue1_gbps=result.queue_gbps[0],
        queue2_gbps=result.queue_gbps[1],
    )
