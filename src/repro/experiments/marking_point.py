"""Marking-point experiments (Figs. 4/5 and 11/12).

These compare *enqueue* vs *dequeue* CE marking by tracing the bottleneck
buffer through the slow-start transient of a 4-flow incast:

- DCTCP-style per-queue marking: dequeue marking cuts the slow-start peak
  by ~25% because the congestion signal reaches the sender one sojourn
  time earlier (Fig. 4);
- TCN cannot run at enqueue at all (sojourn time does not exist yet), so
  its peak equals the late-feedback case (Fig. 5);
- PMSB and PMSB(e) support both points; dequeue marking cuts their peaks
  ~20% (Figs. 11/12).

Following the paper these runs use 1 Gbps links so the transient is wide
enough to see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..ecn.base import MarkPoint
from ..scheduling.fifo import FifoScheduler
from ..store.spec import RunConfig
from .scenario import SchemeSpec, incast_flows, make_scheme, run_incast

__all__ = ["TraceResult", "buffer_trace", "dctcp_enqueue_dequeue",
           "tcn_trace", "pmsb_trace", "pmsbe_trace"]


@dataclass
class TraceResult:
    """Occupancy trace of one run."""

    scheme: str
    mark_point: str
    times: np.ndarray
    occupancy: np.ndarray
    peak: int

    @property
    def steady_mean(self) -> float:
        """Mean occupancy over the second half of the trace."""
        if len(self.times) == 0:
            return 0.0
        midpoint = self.times[-1] / 2.0
        mask = self.times >= midpoint
        if not mask.any():
            return float(self.occupancy.mean())
        return float(self.occupancy[mask].mean())


def buffer_trace(
    scheme: SchemeSpec,
    mark_point_label: str,
    n_flows: int = 4,
    link_rate: float = 1e9,
    duration: float = 0.02,
    init_cwnd: float = 16.0,
) -> TraceResult:
    """Run the 4-flow single-queue incast and trace the buffer."""
    result = run_incast(
        scheme, lambda: FifoScheduler(1), incast_flows([n_flows]),
        link_rate=link_rate, trace_occupancy=True, init_cwnd=init_cwnd,
        config=RunConfig(duration=duration),
    )
    times, occupancy = result.trace.as_arrays()
    return TraceResult(
        scheme=scheme.name, mark_point=mark_point_label,
        times=times, occupancy=occupancy, peak=result.trace.peak,
    )


def dctcp_enqueue_dequeue(
    threshold_packets: float = 16.0,
    link_rate: float = 1e9,
    duration: float = 0.02,
) -> Dict[str, TraceResult]:
    """Fig. 4: DCTCP (single-queue per-queue marking) at both points."""
    results: Dict[str, TraceResult] = {}
    for point in (MarkPoint.ENQUEUE, MarkPoint.DEQUEUE):
        scheme = make_scheme(
            "per-queue-standard", link_rate=link_rate, n_queues=1,
            standard_threshold_packets=threshold_packets, mark_point=point,
        )
        results[point.value] = buffer_trace(
            scheme, point.value, link_rate=link_rate, duration=duration
        )
    return results


def tcn_trace(
    sojourn_threshold: float = 19.2e-6,
    link_rate: float = 1e9,
    duration: float = 0.02,
) -> TraceResult:
    """Fig. 5: TCN's trace — necessarily dequeue, no early feedback."""
    scheme = make_scheme("tcn", link_rate=link_rate,
                         tcn_threshold=sojourn_threshold)
    return buffer_trace(scheme, "dequeue", link_rate=link_rate,
                        duration=duration)


def _pmsb_family_trace(
    scheme_name: str,
    port_threshold: float,
    rtt_threshold: float,
    link_rate: float,
    duration: float,
) -> Dict[str, TraceResult]:
    results: Dict[str, TraceResult] = {}
    for point in (MarkPoint.ENQUEUE, MarkPoint.DEQUEUE):
        scheme = make_scheme(
            scheme_name, link_rate=link_rate, n_queues=1,
            port_threshold_packets=port_threshold,
            rtt_threshold=rtt_threshold, mark_point=point,
        )
        results[point.value] = buffer_trace(
            scheme, point.value, link_rate=link_rate, duration=duration
        )
    return results


def pmsb_trace(
    port_threshold: float = 12.0,
    link_rate: float = 1e9,
    duration: float = 0.02,
) -> Dict[str, TraceResult]:
    """Fig. 11: PMSB buffer occupancy, enqueue vs dequeue marking."""
    return _pmsb_family_trace("pmsb", port_threshold, 0.0, link_rate, duration)


def pmsbe_trace(
    port_threshold: float = 12.0,
    rtt_threshold: float = 14.4e-6,
    link_rate: float = 1e9,
    duration: float = 0.02,
) -> Dict[str, TraceResult]:
    """Fig. 12: PMSB(e) buffer occupancy, enqueue vs dequeue marking.

    The paper sets the RTT threshold to 14.4 µs here (all four flows share
    one queue, so the filter should rarely suppress marks).
    """
    return _pmsb_family_trace("pmsb-e", port_threshold, rtt_threshold,
                              link_rate, duration)
