"""X-SCALE: does PMSB's victim protection survive fabric growth?

Every fairness result in the paper (and every static scenario in this
repro) lives on a one-switch bottleneck or a 48-port testbed.  The
parametric :class:`~repro.net.topology.TopologySpec` generator removes
that ceiling, so this family re-asks the paper's core question — how
far does a lone queue-0 flow land from its scheduler-guaranteed share
when hogs crush the same port? — on real folded-Clos fabrics from 48
to 1024 hosts.

Each point builds one generated fabric, aims one long-lived *victim*
flow (service 0) and ``hogs`` long-lived hog flows (service 1) at a
single receiver, and measures per-queue goodput on the receiver's
host-facing downlink — the one port every flow must share, wherever
ECMP spreads the upstream paths.  With DWRR and two active services
the victim's fair share is half the downlink;
``victim_err = |victim - fair| / fair`` is exactly the Fig. 3 metric,
now a function of fabric size.

The sweep walks :data:`SCALE_LADDER` (48 -> 1024 hosts, two- and
three-tier Clos at several oversubscription ratios) for each scheme
and is store-backed like every other sweep: points key on the
topology's canonical params, fan out across ``--jobs`` workers, and
resume from the content-addressed run store.  Rows also carry the
fabric build time, so the sweep doubles as a coarse generator
benchmark at experiment scale.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Tuple,
                    Union)

from ..net.topology import TopologySpec, as_topology
from ..sim.audit import FabricAuditor, audit_enabled
from ..sim.engine import Simulator
from ..store.runstore import RunStore, make_provenance
from ..store.spec import (ExperimentSpec, RunConfig, UNSET,
                          resolve_run_config)
from ..transport.endpoints import open_flow
from ..transport.flow import Flow
from ..metrics.throughput import ThroughputMeter
from . import largescale
from .scale import BENCH, ScaleProfile
from .scenario import make_scheme

__all__ = [
    "SCALE_LADDER",
    "XSCALE_EXPERIMENT",
    "XSCALE_SCHEMES",
    "XScaleRow",
    "run_xscale_sweep",
    "xscale_point",
    "xscale_point_spec",
]

#: Experiment family name in the run store.
XSCALE_EXPERIMENT = "xscale"

#: Schemes compared as the fabric grows: PMSB against the conventional
#: per-port marking it fixes.
XSCALE_SCHEMES = ("pmsb", "per-port")

#: The fabric ladder, smallest first: ``(spec_text, n_hosts)``.  Each
#: entry is a :meth:`TopologySpec.parse`-able Clos; host counts are
#: pinned here so a generator regression that changes fabric shape
#: fails loudly instead of silently re-keying the sweep.
SCALE_LADDER: Tuple[Tuple[str, int], ...] = (
    ("clos:tiers=2,ports=8,oversub=1.5", 48),
    ("clos:tiers=2,ports=16", 128),
    ("clos:tiers=2,ports=16,oversub=2", 256),
    ("clos:tiers=2,ports=32", 512),
    ("clos:tiers=3,ports=16", 1024),
)


@dataclass
class XScaleRow:
    """One (scheme, fabric) victim-protection measurement."""

    scheme: str
    scheduler: str
    #: Canonical spec text of the fabric (``clos:ports=16,tiers=2``…).
    topology: str
    n_hosts: int
    n_switches: int
    hogs: int
    seed: int
    victim_gbps: float
    hogs_gbps: float
    #: Fig. 3 metric on the receiver downlink: |victim - fair| / fair.
    victim_err: float
    #: Drops on the measured downlink over the whole run.
    drops: int
    #: Wall-clock seconds spent generating + wiring the fabric.
    build_s: float

    def to_payload(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "XScaleRow":
        return cls(**{name: data[name] for name in (
            "scheme", "scheduler", "topology", "n_hosts", "n_switches",
            "hogs", "seed", "victim_gbps", "hogs_gbps", "victim_err",
            "drops", "build_s")})


def _spec_text(spec: TopologySpec) -> str:
    """Canonical ``preset:key=val`` rendering of a topology spec."""
    pairs = [f"{key}={value}" for key, value in spec.to_param()
             if key != "preset"]
    return spec.preset + (":" + ",".join(pairs) if pairs else "")


def xscale_point_spec(
    scheme_name: str,
    scheduler_name: str,
    topology: Union[str, TopologySpec],
    profile: ScaleProfile,
    seed: int,
    hogs: int = 8,
    audit: bool = False,
    shards: int = 1,
) -> ExperimentSpec:
    """The canonical identity of one scale point (cache key)."""
    topo = as_topology(topology)
    params: Dict[str, Any] = dict(topo.cache_params())
    params["hogs"] = int(hogs)
    # Sharded points key separately (synchronized starts make them
    # tolerance-equal, not byte-equal); shards=1 keys are untouched.
    if shards and shards > 1:
        params["shards"] = int(shards)
    return ExperimentSpec.create(
        XSCALE_EXPERIMENT, scheme=scheme_name, scheduler=scheduler_name,
        load=0.0, seed=seed, profile=profile, audit=audit, params=params,
    )


def _pick_endpoints(host_ids: Sequence[int], hogs: int,
                    seed: int) -> Tuple[int, int, List[int]]:
    """Deterministic (receiver, victim, hog sources) for one fabric.

    The receiver is the seed-rotated host, the victim sits half the
    fabric away (a different leaf on every ladder entry), and hogs are
    spread evenly over the remaining hosts so ECMP fans their paths
    across the whole core.
    """
    n = len(host_ids)
    if n < hogs + 2:
        raise ValueError(
            f"fabric has {n} hosts but the scenario needs {hogs + 2} "
            "(receiver + victim + hogs)")
    receiver = host_ids[seed % n]
    victim = host_ids[(seed + n // 2) % n]
    pool = [h for h in host_ids if h not in (receiver, victim)]
    stride = max(1, len(pool) // hogs)
    sources = [pool[(i * stride) % len(pool)] for i in range(hogs)]
    # Strides that wrap can collide; backfill with the unused hosts.
    unused = iter(h for h in pool if h not in set(sources))
    seen: set = set()
    for i, src in enumerate(sources):
        if src in seen:
            sources[i] = next(unused)
        seen.add(sources[i])
    return receiver, victim, sources


def xscale_point(
    scheme_name: str,
    topology: Union[str, TopologySpec],
    scheduler_name: str = "dwrr",
    hogs: int = 8,
    link_rate: float = 10e9,
    seed: int = 1,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
    provenance_out: Optional[Dict[str, Any]] = None,
) -> XScaleRow:
    """Measure victim protection on one generated fabric.

    Builds ``topology``, opens 1 victim (service 0) and ``hogs`` hog
    flows (service 1) toward one receiver, and reports per-queue
    goodput on the receiver's downlink after a third of the run has
    warmed the fabric up.  ``provenance_out``, when given, receives
    wall time and engine counters for run-store provenance.
    """
    from .sharedbuf import _scheduler_factory

    config = resolve_run_config(config, "xscale_point",
                                duration=duration, audit=audit)
    duration = config.duration if config.duration is not None else 0.02
    topo = as_topology(topology)
    if topo is None or topo.preset == "single-bottleneck":
        raise ValueError("xscale needs a multi-host fabric spec "
                         "(leaf-spine / fat-tree / clos)")
    shards = config.shards if config.shards is not None else 1
    if shards > 1:
        from .sharded import sharded_xscale_point
        return sharded_xscale_point(
            scheme_name, topo, scheduler_name, hogs, link_rate, seed,
            duration, bool(config.audit), shards,
            provenance_out=provenance_out,
        )
    scheme = make_scheme(scheme_name, link_rate=link_rate, n_queues=2)

    wall_start = time.perf_counter()
    sim = Simulator()
    auditor = FabricAuditor(sim) if config.audit else None
    build_start = time.perf_counter()
    network = topo.build(sim, _scheduler_factory(scheduler_name, 2),
                         scheme.marker_factory, link_rate=link_rate)
    build_s = time.perf_counter() - build_start
    if auditor is not None:
        auditor.attach_network(network)

    host_ids = [host.host_id for host in network.hosts]
    receiver, victim, sources = _pick_endpoints(host_ids, hogs, seed)
    downlink = network.host_facing_port(receiver)
    if downlink is None:
        raise ValueError(f"fabric has no host-facing port for receiver "
                         f"{receiver}")
    meter = ThroughputMeter(sim, bin_width=1e-3)
    meter.attach_port(downlink)

    open_flow(network, Flow(src=victim, dst=receiver, service=0),
              scheme.transport_config(init_cwnd=4.0))
    for src in sources:
        open_flow(network, Flow(src=src, dst=receiver, service=1),
                  scheme.transport_config(init_cwnd=4.0))
    sim.run(until=duration)
    if auditor is not None:
        auditor.verify_fabric()
    if provenance_out is not None:
        provenance_out["elapsed_s"] = time.perf_counter() - wall_start
        provenance_out["engine"] = {
            "events_processed": sim.events_processed,
            "wheel_events_processed": sim.wheel_events_processed,
            "heap_events_processed": sim.heap_events_processed,
            "cancelled_pending": sim.cancelled_pending,
            "compactions": sim.compactions,
        }

    warmup = duration / 3.0
    victim_gbps = meter.average_bps(0, warmup, duration) / 1e9
    hogs_gbps = meter.average_bps(1, warmup, duration) / 1e9
    total = victim_gbps + hogs_gbps
    fair = total / 2.0
    victim_err = abs(victim_gbps - fair) / fair if total else 0.0
    return XScaleRow(
        scheme=scheme.name, scheduler=scheduler_name,
        topology=_spec_text(topo),
        n_hosts=len(network.hosts),
        n_switches=len(network.switches),
        hogs=hogs, seed=seed,
        victim_gbps=victim_gbps, hogs_gbps=hogs_gbps,
        victim_err=victim_err, drops=downlink.drops, build_s=build_s,
    )


def _xscale_worker(point) -> XScaleRow:
    """Module-level (picklable) worker for one sweep point.

    Same cache contract as the FCT sweeps: store hits are answered
    without simulating, fresh results persist atomically before
    returning."""
    (scheme_name, scheduler_name, topology, expected_hosts, profile,
     seed, hogs, audit, cache_dir, force, shards) = point
    store = RunStore(cache_dir) if cache_dir else None
    spec = xscale_point_spec(scheme_name, scheduler_name, topology,
                             profile, seed, hogs=hogs, audit=audit,
                             shards=shards)
    if store is not None and not force:
        record = store.get(spec)
        if record is not None:
            return XScaleRow.from_payload(record.result)
    provenance_out: Dict[str, Any] = {}
    row = xscale_point(
        scheme_name, topology, scheduler_name=scheduler_name, hogs=hogs,
        link_rate=profile.link_rate, seed=seed,
        config=RunConfig(duration=profile.static_duration, audit=audit,
                         shards=shards if shards > 1 else None),
        provenance_out=provenance_out,
    )
    if expected_hosts and row.n_hosts != expected_hosts:
        raise RuntimeError(
            f"{row.topology} built {row.n_hosts} hosts, ladder pins "
            f"{expected_hosts} — generator shape regression")
    if store is not None:
        store.put(spec, row.to_payload(), make_provenance(
            profile_name=profile.name,
            elapsed_s=provenance_out.get("elapsed_s"),
            engine=provenance_out.get("engine"),
            shards=provenance_out.get("shards"),
        ))
        largescale._note_point_computed()
    return row


def run_xscale_sweep(
    scheme_names: Sequence[str] = XSCALE_SCHEMES,
    scheduler_name: str = "dwrr",
    ladder: Sequence[Union[str, TopologySpec, Tuple[str, int]]] = SCALE_LADDER,
    hogs: int = 8,
    profile: Optional[ScaleProfile] = None,
    seed: Optional[int] = None,
    config: Optional[RunConfig] = None,
    store: Optional[Union[RunStore, str]] = None,
) -> List[XScaleRow]:
    """Victim-flow error vs fabric size: every scheme on every rung.

    ``ladder`` entries are topology spec texts (optionally paired with
    a pinned expected host count, as in :data:`SCALE_LADDER`).  Points
    fan out over worker processes and cache/resume exactly like
    :func:`~repro.experiments.largescale.run_fct_sweep`.
    """
    from .runner import run_parallel

    config = resolve_run_config(config, "run_xscale_sweep")
    if profile is None:
        profile = config.profile if config.profile is not None else BENCH
    if seed is None:
        seed = config.seed if config.seed is not None else 1
    jobs = config.jobs if config.jobs is not None else profile.jobs
    if store is None and config.cache_dir:
        store = config.cache_dir
    cache_dir = (store.root if isinstance(store, RunStore)
                 else os.fspath(store) if store else None)
    force = config.force or not config.resume

    largescale._points_computed = 0
    audit = audit_enabled(config.audit)
    rungs: List[Tuple[TopologySpec, int]] = []
    for entry in ladder:
        if isinstance(entry, tuple):
            text, expected = entry
            rungs.append((as_topology(text), int(expected)))
        else:
            rungs.append((as_topology(entry), 0))
    shards = config.shards if config.shards is not None else 1
    points = [
        (name, scheduler_name, topo, expected, profile, seed, hogs,
         audit, cache_dir, force, shards)
        for topo, expected in rungs
        for name in scheme_names
    ]
    return run_parallel(points, _xscale_worker, jobs=jobs)
