"""Extension experiments beyond the paper's figures.

Two claims the paper makes in prose but never evaluates:

- **E-POOL** (§II-B, last paragraph): "We believe per service pool will
  also violate weighted fair sharing, because queues belonging to
  different ports may interfere with each other."  We build exactly that
  scenario — two output ports drawing from one shared buffer pool with a
  pool-level marking threshold — and measure the cross-port victim
  effect: a lone flow on an otherwise idle port is marked (and throttled)
  because the *other* port fills the pool.

- **E-COEXIST** (§V-B): PMSB(e) "can coexist with other ECN-based
  transports like DCTCP".  We run the victim scenario where *only* the
  victim flow deploys the PMSB(e) filter while the other eight senders
  run stock DCTCP, modelling incremental deployment: the upgraded sender
  should reclaim its fair share without disturbing the others.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any, List, Mapping, Optional, Sequence, Union

from ..core.pmsb_endhost import RttEcnFilter
from ..ecn.service_pool import BufferPool, ServicePoolMarker
from ..metrics.throughput import ThroughputMeter
from ..net.host import Host
from ..net.link import Link
from ..net.port import Port
from ..net.switch import Switch
from ..net.topology import DEFAULT_LINK_DELAY, Network, TopologySpec
from ..scheduling.dwrr import DwrrScheduler
from ..scheduling.fifo import FifoScheduler
from ..sim.audit import FabricAuditor, audit_enabled
from ..sim.engine import Simulator
from ..store.runstore import RunStore, make_provenance
from ..store.spec import (ExperimentSpec, RunConfig, UNSET,
                          resolve_run_config)
from ..transport.base import DctcpConfig
from ..transport.endpoints import open_flow
from ..transport.flow import Flow
from .scenario import incast_flows

__all__ = ["PoolVictimResult", "service_pool_victim",
           "CoexistenceResult", "pmsbe_coexistence",
           "MicroburstResult", "microburst_absorption",
           "BUFFER_POLICIES",
           "TransportVictimResult", "transport_agnostic_victim",
           "IncastRow", "incast_point_spec", "incast_sweep"]


# ---------------------------------------------------------------------------
# E-POOL: per-service-pool marking across ports
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PoolVictimResult:
    """Cross-port interference under shared-pool marking."""

    pool_threshold: float
    flows_port_b: int
    port_a_gbps: float       # 1 flow, otherwise idle port
    port_b_gbps: float       # N competing flows
    pool_marked: int

    @property
    def port_a_utilization(self) -> float:
        """Port A's lone flow should reach ~1.0 of its own link."""
        return self.port_a_gbps / 10.0


def _dual_port_network(
    sim: Simulator,
    n_senders: int,
    make_output_port,
    link_rate: float,
) -> Network:
    """One switch, two independent output ports A and B.

    Hosts ``0..n_senders-1`` are senders; host ``n_senders`` is receiver
    A (behind port A), host ``n_senders+1`` receiver B (behind port B).
    ``make_output_port(dst_host, name)`` builds each output port, so
    callers control marking, buffering and pool membership.
    """
    network = Network(sim)
    switch = Switch(sim, name="sw0")
    network.switches.append(switch)

    hosts = [Host(sim, i) for i in range(n_senders + 2)]
    network.hosts = hosts
    receiver_a = hosts[n_senders]
    receiver_b = hosts[n_senders + 1]

    for label, receiver in (("A", receiver_a), ("B", receiver_b)):
        index = switch.add_port(make_output_port(receiver, f"sw0:port{label}"))
        switch.set_route(receiver.host_id, [index])
        up = Link(sim, link_rate, DEFAULT_LINK_DELAY, switch)
        receiver.attach_nic(Port(sim, up, FifoScheduler(1),
                                 name=f"{receiver.name}:nic"))
    for sender in hosts[:n_senders]:
        up = Link(sim, link_rate, DEFAULT_LINK_DELAY, switch)
        sender.attach_nic(Port(sim, up, FifoScheduler(1),
                               name=f"{sender.name}:nic"))
        back = Link(sim, link_rate, DEFAULT_LINK_DELAY, sender)
        back_index = switch.add_port(
            Port(sim, back, FifoScheduler(1), name=f"sw0:to_{sender.name}")
        )
        switch.set_route(sender.host_id, [back_index])
    return network


def _attach_auditor(sim: Simulator,
                    audit: Optional[bool]) -> Optional[FabricAuditor]:
    """Shared opt-in audit wiring for the extension builders."""
    return FabricAuditor(sim) if audit_enabled(audit) else None


def service_pool_victim(
    pool_threshold: float = 16.0,
    flows_port_b: int = 8,
    link_rate: float = 10e9,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
) -> PoolVictimResult:
    """Validate the paper's per-service-pool conjecture.

    Port A carries one flow to its own receiver; port B carries
    ``flows_port_b`` flows to a different receiver.  With separate links
    the fair outcome is both ports at line rate; pool-level marking
    should instead throttle port A's flow because port B fills the pool.
    """
    config = resolve_run_config(config, "service_pool_victim",
                                duration=duration, audit=audit)
    duration = config.duration if config.duration is not None else 0.03
    audit = config.audit
    sim = Simulator()
    auditor = _attach_auditor(sim, audit)
    pool = BufferPool(name="service-pool")

    def pooled_port(dst_host, name):
        link = Link(sim, link_rate, DEFAULT_LINK_DELAY, dst_host, name=name)
        marker = ServicePoolMarker(pool, pool_threshold)
        return Port(sim, link, FifoScheduler(1), marker,
                    buffer_packets=1000, name=name, pool=pool)

    n_senders = 1 + flows_port_b
    network = _dual_port_network(sim, n_senders, pooled_port, link_rate)
    if auditor is not None:
        auditor.attach_network(network)
    receiver_a = n_senders
    receiver_b = n_senders + 1
    handles = [open_flow(network, Flow(src=0, dst=receiver_a))]
    for sender in range(1, n_senders):
        handles.append(open_flow(network, Flow(src=sender, dst=receiver_b)))
    sim.run(until=duration)
    if auditor is not None:
        auditor.verify_fabric()

    window = duration - duration / 3
    port_a, port_b = network.switches[0].ports[0], network.switches[0].ports[1]
    return PoolVictimResult(
        pool_threshold=pool_threshold,
        flows_port_b=flows_port_b,
        port_a_gbps=handles[0].receiver.bytes_received * 8 / duration / 1e9,
        port_b_gbps=sum(h.receiver.bytes_received for h in handles[1:])
        * 8 / duration / 1e9,
        pool_marked=port_a.marker.packets_marked
        + port_b.marker.packets_marked,
    )


# ---------------------------------------------------------------------------
# E-COEXIST: incremental PMSB(e) deployment next to stock DCTCP
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CoexistenceResult:
    """Victim scenario where only some senders deploy PMSB(e)."""

    victim_gbps: float
    others_gbps: float
    victim_filtered_marks: int

    @property
    def fair_share_error(self) -> float:
        total = self.victim_gbps + self.others_gbps
        if total == 0:
            return 0.0
        fair = total / 2.0
        return abs(self.victim_gbps - fair) / fair


def pmsbe_coexistence(
    victim_upgraded: bool = True,
    port_threshold: float = 16.0,
    rtt_threshold: float = 40e-6,
    flows_queue2: int = 8,
    link_rate: float = 10e9,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
) -> CoexistenceResult:
    """§V-B deployability: upgrade *only* the victim sender to PMSB(e).

    The switch runs plain per-port marking; the eight queue-2 senders run
    stock DCTCP throughout.  With ``victim_upgraded=False`` this is the
    Fig. 3 baseline; with ``True`` the lone upgraded sender should
    reclaim its 5 Gbps share while queue 2 still converges to its own.
    """
    from ..ecn.per_port import PerPortMarker

    config = resolve_run_config(config, "pmsbe_coexistence",
                                duration=duration, audit=audit)
    duration = config.duration if config.duration is not None else 0.03
    audit = config.audit

    sim = Simulator()
    auditor = _attach_auditor(sim, audit)
    network = TopologySpec(preset="single-bottleneck").build(
        sim, lambda: DwrrScheduler(2),
        lambda: PerPortMarker(port_threshold),
        default_senders=1 + flows_queue2, link_rate=link_rate,
    )
    if auditor is not None:
        auditor.attach_network(network)
    meter = ThroughputMeter(sim, bin_width=1e-3)
    meter.attach_port(network.observed_ports("bottleneck")[0])

    flows = incast_flows([1, flows_queue2])
    handles = []
    for flow in flows:
        if flow.service == 0 and victim_upgraded:
            config = DctcpConfig(
                ecn_filter_factory=lambda: RttEcnFilter(rtt_threshold)
            )
        else:
            config = DctcpConfig()
        handles.append(open_flow(network, flow, config))
    sim.run(until=duration)
    if auditor is not None:
        auditor.verify_fabric()

    victim_sender = handles[0].sender
    filtered = getattr(victim_sender.ecn_filter, "marks_ignored", 0)
    return CoexistenceResult(
        victim_gbps=meter.average_bps(0, duration / 3, duration) / 1e9,
        others_gbps=meter.average_bps(1, duration / 3, duration) / 1e9,
        victim_filtered_marks=filtered,
    )


# ---------------------------------------------------------------------------
# E-BURST: micro-burst absorption under shared-buffer policies
# ---------------------------------------------------------------------------

BUFFER_POLICIES = ("static", "shared", "dt")


@dataclass(frozen=True)
class MicroburstResult:
    """Outcome of one incast burst under one buffer policy."""

    policy: str
    hog_active: bool
    burst_fanin: int
    burst_drops: int
    burst_completed: int
    burst_fct_p99: Optional[float]
    hog_gbps: float


def microburst_absorption(
    policy: str = "dt",
    hog_active: bool = True,
    burst_fanin: int = 32,
    burst_size_bytes: int = 15_000,
    total_buffer_packets: int = 200,
    dt_alpha: float = 1.0,
    n_hog_flows: int = 4,
    link_rate: float = 10e9,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
) -> MicroburstResult:
    """Incast micro-burst into port B while port A may be hogging buffer.

    The switch's two output ports share ``total_buffer_packets`` of
    memory under one of three policies (the design space behind the
    paper's micro-burst references [13]/[14]):

    - ``static``: hard split, each port gets half;
    - ``shared``: complete sharing, one global cap;
    - ``dt``: Choudhury–Hahne dynamic threshold with ``dt_alpha``.

    Port A carries ``n_hog_flows`` long-lived flows (when ``hog_active``)
    that build a standing queue; at t = 5 ms a synchronized
    ``burst_fanin``-way incast of small flows hits port B.  Complete
    sharing lets the hog starve the burst of buffer; a static split
    wastes half the memory when the hog is absent; DT adapts.
    """
    if policy not in BUFFER_POLICIES:
        raise ValueError(f"unknown policy {policy!r}; use {BUFFER_POLICIES}")
    config = resolve_run_config(config, "microburst_absorption",
                                duration=duration, audit=audit)
    duration = config.duration if config.duration is not None else 0.05
    audit = config.audit
    sim = Simulator()
    if policy == "shared":
        pool: Optional[BufferPool] = BufferPool(total_buffer_packets)
        per_port_cap = None
    elif policy == "dt":
        from ..ecn.service_pool import DynamicThresholdPool
        pool = DynamicThresholdPool(total_buffer_packets, dt_alpha)
        per_port_cap = None
    else:
        pool = None
        per_port_cap = total_buffer_packets // 2

    from ..ecn.base import NullMarker

    def output_port(dst_host, name):
        link = Link(sim, link_rate, DEFAULT_LINK_DELAY, dst_host, name=name)
        return Port(sim, link, FifoScheduler(1), NullMarker(),
                    buffer_packets=per_port_cap, name=name, pool=pool)

    n_senders = n_hog_flows + burst_fanin
    network = _dual_port_network(sim, n_senders, output_port, link_rate)
    auditor = _attach_auditor(sim, audit)
    if auditor is not None:
        auditor.attach_network(network)
    receiver_a = n_senders
    receiver_b = n_senders + 1

    hog_handles = []
    if hog_active:
        for sender in range(n_hog_flows):
            # Long-lived, loss-driven flows (no ECN): they fill whatever
            # buffer the policy lets them take.
            hog_handles.append(
                open_flow(network, Flow(src=sender, dst=receiver_a),
                          DctcpConfig(min_rto=2e-3))
            )

    from ..metrics.fct import FctCollector
    collector = FctCollector()
    burst_start = 5e-3
    for sender in range(n_hog_flows, n_senders):
        open_flow(
            network,
            Flow(src=sender, dst=receiver_b, size_bytes=burst_size_bytes,
                 start_time=burst_start),
            DctcpConfig(init_cwnd=16.0, min_rto=2e-3),
            on_complete=collector.on_complete,
        )
    sim.run(until=duration)
    if auditor is not None:
        auditor.verify_fabric()

    port_b = network.switches[0].ports[1]
    hog_bytes = sum(h.receiver.bytes_received for h in hog_handles)
    fcts = collector.fcts()
    from ..metrics.stats import summarize
    return MicroburstResult(
        policy=policy,
        hog_active=hog_active,
        burst_fanin=burst_fanin,
        burst_drops=port_b.drops,
        burst_completed=len(collector),
        burst_fct_p99=summarize(fcts).p99 if fcts else None,
        hog_gbps=hog_bytes * 8 / duration / 1e9,
    )


# ---------------------------------------------------------------------------
# E-TRANSPORT: PMSB is transport-agnostic (window- and rate-based ECN)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TransportVictimResult:
    """Victim scenario outcome for one (transport, marker) pair."""

    transport: str
    marker: str
    victim_gbps: float
    others_gbps: float

    @property
    def fair_share_error(self) -> float:
        total = self.victim_gbps + self.others_gbps
        if total == 0:
            return 0.0
        fair = total / 2.0
        return abs(self.victim_gbps - fair) / fair


def transport_agnostic_victim(
    transport: str = "dcqcn",
    marker: str = "pmsb",
    port_threshold: float = 16.0,
    flows_queue2: int = 8,
    link_rate: float = 10e9,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
) -> TransportVictimResult:
    """The 1:8 victim scenario with a window- or rate-based transport.

    PMSB's marking decision is transport-agnostic: it suppresses the
    victim's marks whether the sender reacts by shrinking a window
    (DCTCP) or by cutting a pacing rate (DCQCN).  ``transport`` is
    "dctcp" or "dcqcn"; ``marker`` is "pmsb" or "per-port".
    """
    from ..core.pmsb import PmsbMarker
    from ..ecn.per_port import PerPortMarker
    from ..transport.dcqcn import open_dcqcn_flow

    config = resolve_run_config(config, "transport_agnostic_victim",
                                duration=duration, audit=audit)
    duration = config.duration if config.duration is not None else 0.03
    audit = config.audit

    if marker == "pmsb":
        marker_factory = lambda: PmsbMarker(port_threshold)  # noqa: E731
    elif marker == "per-port":
        marker_factory = lambda: PerPortMarker(port_threshold)  # noqa: E731
    else:
        raise ValueError(f"unknown marker {marker!r}")
    if transport not in ("dctcp", "dcqcn"):
        raise ValueError(f"unknown transport {transport!r}")

    sim = Simulator()
    auditor = _attach_auditor(sim, audit)
    network = TopologySpec(preset="single-bottleneck").build(
        sim, lambda: DwrrScheduler(2), marker_factory,
        default_senders=1 + flows_queue2, link_rate=link_rate,
    )
    if auditor is not None:
        auditor.attach_network(network)
    meter = ThroughputMeter(sim, bin_width=1e-3)
    meter.attach_port(network.observed_ports("bottleneck")[0])
    for flow in incast_flows([1, flows_queue2]):
        if transport == "dcqcn":
            open_dcqcn_flow(network, flow)
        else:
            open_flow(network, flow, DctcpConfig())
    sim.run(until=duration)
    if auditor is not None:
        auditor.verify_fabric()
    return TransportVictimResult(
        transport=transport,
        marker=marker,
        victim_gbps=meter.average_bps(0, duration / 3, duration) / 1e9,
        others_gbps=meter.average_bps(1, duration / 3, duration) / 1e9,
    )


# ---------------------------------------------------------------------------
# E-INCAST: incast fan-in sweep
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IncastRow:
    """Outcome of one synchronized incast degree under one scheme."""

    scheme: str
    fanin: int
    drops: int
    completed: int
    fct_p99: Optional[float]
    retransmission_timeouts: int

    def to_payload(self) -> "dict":
        """A JSON-able dict for run-store persistence."""
        return asdict(self)

    @classmethod
    def from_payload(cls, data: "Mapping[str, Any]") -> "IncastRow":
        return cls(**data)


def incast_point_spec(
    scheme_name: str,
    fanin: int,
    response_bytes: int,
    buffer_packets: int,
    link_rate: float,
    duration: float,
    audit: bool = False,
) -> ExperimentSpec:
    """Content address of one incast fan-in point (store cache key)."""
    return ExperimentSpec.create(
        "incast-sweep", scheme=scheme_name, scheduler="dwrr",
        audit=audit,
        params={"fanin": fanin, "response_bytes": response_bytes,
                "buffer_packets": buffer_packets, "link_rate": link_rate,
                "duration": duration},
    )


def incast_sweep(
    scheme_name: str = "pmsb",
    fanins: "Sequence[int]" = (8, 16, 32, 64),
    response_bytes: int = 20_000,
    buffer_packets: int = 128,
    link_rate: float = 10e9,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
    store: Optional[Union[RunStore, str]] = None,
) -> "List[IncastRow]":
    """The classic partition/aggregate incast microbenchmark.

    ``fanin`` workers answer an aggregator simultaneously with
    ``response_bytes`` each through one moderately buffered port.  ECN
    cannot prevent the synchronized initial burst, but the scheme
    determines how fast senders back off afterwards and therefore how
    the tail FCT scales with fan-in.

    With ``store`` (or ``config.cache_dir``) each fan-in point is cached
    under its :func:`incast_point_spec` content address, with the same
    skip-completed / ``config.force`` semantics as the FCT sweep.
    """
    from ..metrics.fct import FctCollector
    from ..metrics.stats import summarize
    from .scenario import make_scheme

    config = resolve_run_config(config, "incast_sweep",
                                duration=duration, audit=audit)
    duration = config.duration if config.duration is not None else 0.1
    audit = config.audit
    if store is None and config.cache_dir:
        store = config.cache_dir
    if store is not None and not isinstance(store, RunStore):
        store = RunStore(os.fspath(store))
    force = config.force or not config.resume

    scheme = make_scheme(scheme_name, link_rate=link_rate, n_queues=2)
    rows: "List[IncastRow]" = []
    for fanin in fanins:
        spec = incast_point_spec(scheme_name, fanin, response_bytes,
                                 buffer_packets, link_rate, duration,
                                 audit=audit_enabled(audit))
        if store is not None and not force:
            record = store.get(spec)
            if record is not None:
                rows.append(IncastRow.from_payload(record.result))
                continue
        sim = Simulator()
        auditor = _attach_auditor(sim, audit)
        network = TopologySpec(preset="single-bottleneck").build(
            sim, lambda: DwrrScheduler(2), scheme.marker_factory,
            default_senders=fanin, link_rate=link_rate,
            buffer_packets=buffer_packets,
        )
        if auditor is not None:
            auditor.attach_network(network)
        collector = FctCollector()
        handles = []
        for sender in range(fanin):
            handles.append(open_flow(
                network,
                Flow(src=sender, dst=fanin, size_bytes=response_bytes,
                     service=sender % 2),
                scheme.transport_config(init_cwnd=16.0, min_rto=2e-3),
                on_complete=collector.on_complete,
            ))
        sim.run(until=duration)
        if auditor is not None:
            auditor.verify_fabric()
        fcts = collector.fcts()
        row = IncastRow(
            scheme=scheme.name,
            fanin=fanin,
            drops=network.observed_ports("bottleneck")[0].drops,
            completed=len(collector),
            fct_p99=summarize(fcts).p99 if fcts else None,
            retransmission_timeouts=sum(h.sender.timeouts
                                        for h in handles),
        )
        if store is not None:
            store.put(spec, row.to_payload(), make_provenance(
                engine={"events_processed": sim.events_processed}))
        rows.append(row)
    return rows
