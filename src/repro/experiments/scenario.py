"""Shared experiment plumbing.

Two things live here:

- the **scheme registry**: :func:`make_scheme` builds a
  :class:`SchemeSpec` (marker factory + transport filter factory) for any
  of the marking schemes the paper compares, with the paper's §VI
  parameter conventions baked in as defaults;
- the **incast runner**: most static experiments are "N senders → one
  multi-queue bottleneck → one receiver, measure per-queue throughput /
  RTT"; :func:`run_incast` packages that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..control.controller import (ControllerRuntime, ControllerSpec,
                                  controller_enabled)
from ..core.pmsb import PmsbMarker
from ..core.pmsb_endhost import AcceptAllFilter, EcnFilter, RttEcnFilter
from ..ecn.base import Marker, MarkPoint, NullMarker
from ..ecn.mq_ecn import MqEcnMarker
from ..ecn.per_port import PerPortMarker
from ..ecn.per_queue import PerQueueMarker, fractional_thresholds, standard_thresholds
from ..ecn.tcn import TcnMarker
from ..metrics.queue_trace import QueueOccupancyTrace
from ..metrics.throughput import ThroughputMeter
from ..net.packet import MTU_BYTES
from ..net.sharedbuf import SharedBufferSpec
from ..net.topology import Network, TopologySpec, as_topology, topology_enabled
from ..scheduling.base import Scheduler
from ..sim.audit import FabricAuditor, audit_enabled
from ..sim.engine import Simulator
from ..sim.faults import FaultScheduler, FaultSpec, faults_enabled
from ..store.spec import RunConfig, UNSET, resolve_run_config
from ..transport.base import DctcpConfig
from ..transport.endpoints import FlowHandle, open_flow
from ..transport.flow import Flow

__all__ = ["SchemeSpec", "make_scheme", "IncastResult", "run_incast",
           "incast_flows", "SCHEME_NAMES"]

SCHEME_NAMES = (
    "pmsb",
    "pmsb-e",
    "mq-ecn",
    "tcn",
    "per-port",
    "per-queue-standard",
    "per-queue-fractional",
    "none",
)


@dataclass
class SchemeSpec:
    """A marking scheme: what the switch does + what the sender does."""

    name: str
    marker_factory: Callable[[], Marker]
    ecn_filter_factory: Callable[[], EcnFilter] = field(default=AcceptAllFilter)

    def transport_config(self, **overrides) -> DctcpConfig:
        """A DCTCP config wired with this scheme's sender-side filter."""
        return DctcpConfig(ecn_filter_factory=self.ecn_filter_factory, **overrides)


def _drain_time(packets: float, link_rate: float) -> float:
    """Time to drain ``packets`` MTUs at ``link_rate`` (TCN/MQ-ECN units)."""
    return packets * MTU_BYTES * 8.0 / link_rate


def make_scheme(
    name: str,
    link_rate: float = 10e9,
    n_queues: int = 2,
    weights: Optional[Sequence[float]] = None,
    port_threshold_packets: float = 12.0,
    standard_threshold_packets: float = 16.0,
    rtt_threshold: float = 40e-6,
    tcn_threshold: Optional[float] = None,
    mark_point: MarkPoint = MarkPoint.ENQUEUE,
    blindness_scale: float = 1.0,
) -> SchemeSpec:
    """Build a :class:`SchemeSpec` by name.

    Defaults follow the paper's static experiments: PMSB/PMSB(e) port
    threshold 12 packets, PMSB(e) RTT threshold 40 µs, TCN sojourn
    threshold = drain time of the standard threshold, MQ-ECN/per-queue
    standard threshold 16 packets.
    """
    if weights is None:
        weights = [1.0] * n_queues
    if tcn_threshold is None:
        tcn_threshold = _drain_time(standard_threshold_packets, link_rate)
    rtt_lambda = _drain_time(standard_threshold_packets, link_rate)

    if name == "pmsb":
        return SchemeSpec(
            name="PMSB",
            marker_factory=lambda: PmsbMarker(
                port_threshold_packets, mark_point, blindness_scale
            ),
        )
    if name == "pmsb-e":
        return SchemeSpec(
            name="PMSB(e)",
            marker_factory=lambda: PerPortMarker(port_threshold_packets, mark_point),
            ecn_filter_factory=lambda: RttEcnFilter(rtt_threshold),
        )
    if name == "mq-ecn":
        # K_i = min(quantum_i/T_round, C) × RTT × λ with RTT·λ chosen so an
        # unconstrained queue gets the standard threshold.
        return SchemeSpec(
            name="MQ-ECN",
            marker_factory=lambda: MqEcnMarker(rtt=rtt_lambda, lam=1.0,
                                               mark_point=mark_point),
        )
    if name == "tcn":
        return SchemeSpec(
            name="TCN",
            marker_factory=lambda: TcnMarker(tcn_threshold),
        )
    if name == "per-port":
        return SchemeSpec(
            name="Per-Port",
            marker_factory=lambda: PerPortMarker(port_threshold_packets, mark_point),
        )
    if name == "per-queue-standard":
        return SchemeSpec(
            name="Per-Queue(std)",
            marker_factory=lambda: PerQueueMarker(
                standard_thresholds(n_queues, standard_threshold_packets), mark_point
            ),
        )
    if name == "per-queue-fractional":
        return SchemeSpec(
            name="Per-Queue(frac)",
            marker_factory=lambda: PerQueueMarker(
                fractional_thresholds(weights, standard_threshold_packets), mark_point
            ),
        )
    if name == "none":
        return SchemeSpec(name="DropTail", marker_factory=NullMarker)
    raise ValueError(f"unknown scheme {name!r}; choose from {SCHEME_NAMES}")


def incast_flows(flows_per_queue: Sequence[int],
                 start_times: Optional[Sequence[float]] = None) -> List[Flow]:
    """Long-lived incast flows: queue ``q`` gets ``flows_per_queue[q]``
    flows, each from its own sender.  The receiver is the host after the
    last sender (the :func:`~repro.net.topology.single_bottleneck`
    convention)."""
    n_senders = sum(flows_per_queue)
    receiver = n_senders
    flows: List[Flow] = []
    sender = 0
    for queue_index, count in enumerate(flows_per_queue):
        for _ in range(count):
            start = 0.0 if start_times is None else start_times[queue_index]
            flows.append(Flow(src=sender, dst=receiver, service=queue_index,
                              start_time=start))
            sender += 1
    return flows


@dataclass
class IncastResult:
    """Everything an incast experiment might want to report."""

    scheme: str
    duration: float
    warmup: float
    queue_gbps: Dict[int, float]
    network: Network
    meter: ThroughputMeter
    handles: List[FlowHandle]
    trace: Optional[QueueOccupancyTrace] = None
    #: Present when the run injected faults; ``chaos.stats()`` has the
    #: per-link drop breakdown.
    chaos: Optional[FaultScheduler] = None

    @property
    def total_gbps(self) -> float:
        return sum(self.queue_gbps.values())

    def rtt_samples(self, queue_index: Optional[int] = None) -> List[float]:
        """All RTT samples, optionally restricted to one queue's flows."""
        samples: List[float] = []
        for handle in self.handles:
            if queue_index is not None and handle.flow.service != queue_index:
                continue
            if handle.sender.rtt_samples:
                samples.extend(handle.sender.rtt_samples)
        return samples


def run_incast(
    scheme: SchemeSpec,
    scheduler_factory: Callable[[], Scheduler],
    flows: Sequence[Flow],
    duration: float = UNSET,
    warmup_fraction: float = 1.0 / 3.0,
    link_rate: float = 10e9,
    record_rtt: bool = False,
    trace_occupancy: bool = False,
    rate_limits: Optional[Dict[int, float]] = None,
    init_cwnd: float = 16.0,
    buffer_packets: int = 1000,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
    fault_seed: int = 0,
    shared_buffer: Optional[SharedBufferSpec] = None,
    controller: Optional[ControllerSpec] = None,
    topology: Union[str, TopologySpec, None] = None,
) -> IncastResult:
    """Run one incast scenario to completion and measure per-queue rates.

    ``rate_limits`` maps flow *src host id* → pacing rate (the paper's
    "start a 5 Gbps TCP flow" sources).  Throughput is averaged over the
    post-warmup window.  Execution knobs come from ``config``
    (:class:`~repro.store.RunConfig`): ``config.duration`` is the
    simulated time (default 0.04 s) and ``config.audit`` attaches a
    :class:`~repro.sim.audit.FabricAuditor` to the whole fabric and runs
    a final conservation pass (None defers to the process default the
    CLI's ``--audit`` flag sets).  ``config.trains`` (the CLI's
    ``--trains``) coalesces long-flow bursts into packet-train units —
    the tolerance-accurate fast tier; it is rejected in combination
    with ``shards`` or fault injection.  The ``duration=`` / ``audit=``
    keyword spellings are deprecated aliases for those fields.
    ``faults`` injects a deterministic chaos layer
    (:mod:`repro.sim.faults`) over the fabric, with RNG streams derived
    from ``fault_seed`` (None defers to the ``--faults`` process
    default).  ``shared_buffer`` gives the switch a
    :class:`~repro.net.sharedbuf.SharedBuffer` built from the spec (None
    defers to the ``--shared-buffer`` process default).  ``controller``
    attaches a closed-loop :class:`~repro.control.ControllerRuntime`
    retuning marker thresholds on the spec's period (None defers to the
    ``--controller`` process default); controllers that consume RTT
    force ``record_rtt`` on.  ``topology`` is a
    :class:`~repro.net.topology.TopologySpec` (or its string spelling;
    None defers to the ``--topology`` process default, then to the
    historical single-bottleneck fabric): on a multi-switch fabric the
    flows' receiver keeps the single-bottleneck convention (host
    ``n_senders``) and the observed port is the receiver's host-facing
    downlink — the port the incast converges on.
    """
    config = resolve_run_config(config, "run_incast",
                                duration=duration, audit=audit)
    duration = config.duration if config.duration is not None else 0.04
    audit = config.audit
    shards = config.shards if config.shards is not None else 1
    trains = config.trains if config.trains is not None else 1
    if trains > 1:
        if shards > 1:
            raise ValueError("--trains cannot combine with --shards "
                             "(train units cross shard boundaries as one "
                             "event)")
        if faults_enabled(faults):
            raise ValueError("--trains cannot combine with fault injection "
                             "(per-link loss draws are per-packet; a train "
                             "would consume one draw for N packets)")
    if shards > 1:
        from .sharded import sharded_incast_run
        if trace_occupancy:
            raise ValueError("--shards does not support occupancy tracing "
                             "(the observed port lives in a worker)")
        if record_rtt:
            raise ValueError("--shards does not support record_rtt "
                             "(flow handles stay in the workers)")
        if controller_enabled(controller) is not None:
            raise ValueError("closed-loop controllers are not supported "
                             "under --shards (global state)")
        shard_topo = topology_enabled(as_topology(topology))
        if shard_topo is None or shard_topo.preset == "single-bottleneck":
            raise ValueError("--shards needs a multi-switch fabric "
                             "(leaf-spine / fat-tree / clos), not "
                             "single-bottleneck")
        return sharded_incast_run(
            scheme, scheduler_factory, list(flows), duration, shard_topo,
            shards, warmup_fraction=warmup_fraction, link_rate=link_rate,
            rate_limits=rate_limits, init_cwnd=init_cwnd,
            buffer_packets=buffer_packets, audit=audit_enabled(audit),
            faults=faults_enabled(faults) or (), fault_seed=fault_seed,
            shared_buffer=shared_buffer,
        )
    n_senders = max(flow.src for flow in flows) + 1
    sim = Simulator()
    auditor = FabricAuditor(sim) if audit_enabled(audit) else None
    topo = topology_enabled(as_topology(topology))
    if topo is None:
        topo = TopologySpec(preset="single-bottleneck")
    if (topo.preset == "single-bottleneck" and topo.senders
            and topo.senders != n_senders):
        raise ValueError(
            f"topology pins {topo.senders} senders but the flow layout "
            f"uses {n_senders} (the receiver is host n_senders)")
    network = topo.build(
        sim, scheduler_factory, scheme.marker_factory,
        shared_buffer=shared_buffer, default_senders=n_senders,
        link_rate=link_rate, buffer_packets=buffer_packets,
    )
    receiver_id = n_senders
    if len(network.hosts) <= receiver_id:
        raise ValueError(
            f"topology {topo.preset!r} has {len(network.hosts)} hosts but the "
            f"flow layout needs {n_senders} senders plus a receiver")
    bottleneck = network.observed_ports("bottleneck")
    observed = bottleneck[0] if bottleneck else None
    if observed is None:
        observed = network.host_facing_port(receiver_id)
        if observed is None:
            raise ValueError(
                f"topology {topo.preset!r} has no port facing the receiver "
                f"(host {receiver_id})")
        network.register_observed("bottleneck", observed)
    if auditor is not None:
        auditor.attach_network(network)
    fault_specs = faults_enabled(faults)
    chaos = None
    if fault_specs:
        chaos = FaultScheduler(sim, fault_specs, seed=fault_seed)
        chaos.apply(network)
    controller = controller_enabled(controller)
    runtime = None
    if controller is not None:
        runtime = ControllerRuntime(sim, network.all_marked_ports(),
                                    controller.build(), controller.period)
        record_rtt = record_rtt or controller.wants_rtt
    meter = ThroughputMeter(sim, bin_width=duration / 100.0)
    meter.attach_port(observed)
    trace = QueueOccupancyTrace(observed) if trace_occupancy else None

    handles = []
    for flow in flows:
        rate = None if rate_limits is None else rate_limits.get(flow.src)
        config = scheme.transport_config(
            record_rtt=record_rtt, rate_limit_bps=rate, init_cwnd=init_cwnd,
            train_packets=trains,
            # Train mode coalesces ACKs too (DCTCP delayed-ACK CE
            # state machine, one ACK per two data units): one event per
            # data train would be undone by per-unit ACK traffic on the
            # way back.  PSH flushes (window-filling / flow-final
            # units) keep window-limited flows off the delack timer.
            ack_every=2 if trains > 1 else 1,
            delack_timeout=5e-6 if trains > 1 else 1e-3,
        )
        handles.append(open_flow(network, flow, config))
    if runtime is not None:
        for handle in handles:
            runtime.add_rtt_source(handle.sender)
        runtime.start()
    sim.run(until=duration)
    if runtime is not None:
        runtime.stop()
    if auditor is not None:
        auditor.verify_fabric()

    warmup = duration * warmup_fraction
    n_queues = observed.n_queues
    queue_gbps = {
        q: meter.average_bps(q, warmup, duration) / 1e9 for q in range(n_queues)
    }
    return IncastResult(
        scheme=scheme.name, duration=duration, warmup=warmup,
        queue_gbps=queue_gbps, network=network, meter=meter,
        handles=handles, trace=trace, chaos=chaos,
    )
