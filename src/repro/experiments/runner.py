"""Parallel experiment runner.

The Fig. 16–27 sweeps are embarrassingly parallel: every (scheme, load,
seed) point builds its own :class:`~repro.sim.engine.Simulator` and its
own RNG from an explicit seed, so runs share no state.
:func:`run_parallel` maps a worker over such configs on a
``ProcessPoolExecutor`` while preserving determinism:

- **ordered collection** — results come back in config order regardless
  of which worker finished first (``Executor.map`` semantics);
- **deterministic seeding** — randomness must flow only from the config
  (:func:`seed_for` derives stable per-config seeds from a base seed), so
  the same configs give byte-identical results at any ``--jobs`` level;
- **graceful fallback** — ``jobs=1``, a single config, a platform
  without ``fork``, or a pool-startup failure all degrade to a plain
  serial loop with identical results.

Workers must be module-level (picklable) functions and configs picklable
values — the same constraint ``multiprocessing`` always imposes.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, TypeVar

from ..sim.rng import stable_hash

__all__ = ["available_jobs", "run_parallel", "seed_for"]

ConfigT = TypeVar("ConfigT")
ResultT = TypeVar("ResultT")


def available_jobs() -> int:
    """Worker processes this machine can usefully run (>= 1).

    Containerised runners usually pin the process to a CPU subset;
    ``sched_getaffinity`` sees that mask where ``cpu_count`` reports the
    whole machine and oversubscribes.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without affinity (macOS, Windows)
        return os.cpu_count() or 1


def seed_for(base_seed: int, index: int) -> int:
    """A stable, well-mixed per-config seed.

    Adjacent small integers make poor PRNG seeds; this mixes
    ``(base_seed, index)`` through the same splitmix64 finalizer ECMP
    hashing uses, so config ``i`` sees the same stream no matter which
    process runs it or in which order.
    """
    return stable_hash(base_seed, index) & 0x7FFFFFFF


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_parallel(
    configs: Iterable[ConfigT],
    worker: Callable[[ConfigT], ResultT],
    jobs: Optional[int] = None,
) -> List[ResultT]:
    """Map ``worker`` over ``configs``, possibly across processes.

    Returns ``[worker(c) for c in configs]`` — same values, same order —
    computed with up to ``jobs`` forked worker processes.  ``jobs=None``
    or ``jobs=1`` runs serially in-process (no pool, no pickling);
    ``jobs <= 0`` means "all cores" (:func:`available_jobs`).
    """
    config_list = list(configs)
    if jobs is None:
        jobs = 1
    if jobs <= 0:
        jobs = available_jobs()
    jobs = min(jobs, len(config_list))
    if jobs <= 1 or not _fork_available():
        return [worker(config) for config in config_list]
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool
    try:
        context = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
    except (OSError, PermissionError, RuntimeError):
        # Exotic platforms can refuse to even build a fork context; the
        # sweep still completes.
        return [worker(config) for config in config_list]
    try:
        with pool:
            return list(pool.map(worker, config_list))
    except (BrokenProcessPool, PermissionError):
        # Sandboxes can refuse process creation only once the first
        # worker actually spawns.  Only pool-infrastructure failures
        # degrade to the serial path — an exception raised *by the
        # worker itself* (e.g. the run store's injected-crash hook)
        # propagates unchanged, because retrying it serially would
        # silently mask real failures.
        return [worker(config) for config in config_list]
