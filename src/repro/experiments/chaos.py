"""Chaos experiments: PMSB's victim protection under faulty links.

The paper evaluates every scheme on a pristine fabric.  These
experiments re-ask its two headline questions with a deterministic
fault layer (:mod:`repro.sim.faults`) injected into the wires:

- **fig3 chaos variant** (:func:`chaos_victim`): the 1-vs-8 victim
  scenario with the bottleneck wire losing or corrupting packets — does
  per-port marking's collateral damage get better or worse when the
  victim also suffers real loss, and does PMSB's selective blindness
  still protect it?
- **fig8 chaos variant** (:func:`chaos_fair_share`): PMSB's 1:4
  weighted fair sharing under bottleneck loss.
- **loss-rate sweep** (:func:`run_chaos_sweep`): the §VI-B FCT workload
  for PMSB vs per-port vs per-queue across a grid of average loss
  rates, store-backed exactly like the clean sweep — chaos points key
  by their :class:`~repro.sim.faults.FaultSpec` set and cache/resume
  byte-identically at any ``--jobs`` level.

Determinism: faults draw from dedicated seeded streams, so every row
here is a pure function of its spec — the same guarantees (and tests)
as the clean experiments, loss included.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Tuple,
                    Union)

from ..scheduling.dwrr import DwrrScheduler
from ..sim.faults import FaultSpec, loss_spec
from ..store.runstore import RunStore, make_provenance
from ..store.spec import (ExperimentSpec, RunConfig, UNSET,
                          resolve_run_config)
from ..net.topology import TopologySpec
from . import largescale
from .largescale import (FctRow, resolve_fct_topology, run_fct_point,
                         topology_params)
from .scale import BENCH, ScaleProfile
from .scenario import incast_flows, make_scheme, run_incast

__all__ = [
    "CHAOS_EXPERIMENT",
    "CHAOS_SCHEMES",
    "DEFAULT_LOSS_RATES",
    "ChaosFctRow",
    "ChaosVictimRow",
    "chaos_faults",
    "chaos_fair_share",
    "chaos_point_spec",
    "chaos_victim",
    "run_chaos_sweep",
]

#: Experiment family name in the run store.
CHAOS_EXPERIMENT = "fct-chaos"

#: The schemes the chaos sweep compares: PMSB against the two
#: conventional markers whose failure modes motivated it.
CHAOS_SCHEMES = ("pmsb", "per-port", "per-queue-standard")

#: Default loss-rate grid (0 = the clean baseline point).
DEFAULT_LOSS_RATES = (0.0, 1e-3, 1e-2)


def chaos_faults(model: str, loss_rate: float, links: str = "*",
                 salt: int = 0) -> Tuple[FaultSpec, ...]:
    """The fault set for one chaos point: one loss model at the given
    average rate over ``links``, or nothing at rate 0 (the baseline)."""
    if loss_rate == 0.0:
        return ()
    return (loss_spec(model, loss_rate, links=links, salt=salt),)


def _sorted_drops(drops: Mapping[str, Any]) -> Dict[str, int]:
    """Key-sorted copy, so fresh and cache-loaded rows export the same
    bytes (``to_json`` preserves dict insertion order)."""
    return {str(key): int(drops[key]) for key in sorted(drops)}


# -- static chaos variants (figs. 3 / 8 under loss) ---------------------------

@dataclass
class ChaosVictimRow:
    """One (scheme, model, loss rate) victim/fair-share measurement."""

    scheme: str
    model: str
    loss_rate: float
    queue1_gbps: float
    queue2_gbps: float
    fair_share_error: float
    #: Injected drops by reason over the faulted links.
    drops: Dict[str, int]


def _incast_under_loss(
    scheme_name: str,
    model: str,
    loss_rate: float,
    flows_queue2: int,
    port_threshold: float,
    link_rate: float,
    fault_seed: int,
    config: RunConfig,
) -> ChaosVictimRow:
    duration = config.duration if config.duration is not None else 0.04
    scheme = make_scheme(
        scheme_name, link_rate=link_rate, n_queues=2,
        port_threshold_packets=port_threshold,
    )
    # The loss sits on the bottleneck wire — downstream of the marker,
    # where a drop hurts exactly the flows the marker is judging.
    result = run_incast(
        scheme, lambda: DwrrScheduler(2), incast_flows([1, flows_queue2]),
        link_rate=link_rate,
        config=RunConfig(duration=duration, audit=config.audit),
        faults=chaos_faults(model, loss_rate, links="bottleneck"),
        fault_seed=fault_seed,
    )
    q1, q2 = result.queue_gbps[0], result.queue_gbps[1]
    total = q1 + q2
    fair = total / 2.0
    error = abs(q1 - fair) / fair if total else 0.0
    drops = (_sorted_drops(result.chaos.stats()["drops"])
             if result.chaos is not None else {})
    return ChaosVictimRow(
        scheme=result.scheme, model=model, loss_rate=loss_rate,
        queue1_gbps=q1, queue2_gbps=q2, fair_share_error=error,
        drops=drops,
    )


def chaos_victim(
    scheme_name: str = "per-port",
    loss_rate: float = 1e-3,
    model: str = "iid-loss",
    flows_queue2: int = 8,
    port_threshold: float = 16.0,
    link_rate: float = 10e9,
    fault_seed: int = 1,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
) -> ChaosVictimRow:
    """Fig. 3's 1-vs-``flows_queue2`` victim scenario under wire loss.

    Same fabric and parameters as
    :func:`~repro.experiments.motivation.per_port_victim`, plus a loss
    model on the bottleneck wire.  Compare ``scheme_name="per-port"``
    against ``"pmsb"`` at matched loss rates to see whether selective
    blindness still protects the victim queue when the fabric is lossy.
    """
    config = resolve_run_config(config, "chaos_victim",
                                duration=duration, audit=audit)
    return _incast_under_loss(scheme_name, model, loss_rate, flows_queue2,
                              port_threshold, link_rate, fault_seed, config)


def chaos_fair_share(
    scheme_name: str = "pmsb",
    loss_rate: float = 1e-3,
    model: str = "iid-loss",
    flows_queue2: int = 4,
    port_threshold: float = 12.0,
    link_rate: float = 10e9,
    fault_seed: int = 1,
    duration: float = UNSET,
    audit: Optional[bool] = UNSET,
    config: Optional[RunConfig] = None,
) -> ChaosVictimRow:
    """Fig. 8's 1:``flows_queue2`` fair-sharing scenario under loss —
    PMSB's weighted fair shares should degrade gracefully, not
    collapse, as the wire loss rate rises."""
    config = resolve_run_config(config, "chaos_fair_share",
                                duration=duration, audit=audit)
    return _incast_under_loss(scheme_name, model, loss_rate, flows_queue2,
                              port_threshold, link_rate, fault_seed, config)


# -- the store-backed loss-rate sweep -----------------------------------------

@dataclass
class ChaosFctRow:
    """One (scheme, scheduler, load, model, loss rate) FCT measurement."""

    model: str
    loss_rate: float
    #: Injected drops by reason, summed over all faulted links.
    drops: Dict[str, int]
    fct: FctRow

    def stat(self, size_class, name: str) -> Optional[float]:
        """Delegate to :meth:`FctRow.stat` for printing/plotting."""
        return self.fct.stat(size_class, name)

    def to_payload(self) -> Dict[str, Any]:
        return {"model": self.model, "loss_rate": self.loss_rate,
                "drops": dict(self.drops), "fct": self.fct.to_payload()}

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "ChaosFctRow":
        return cls(
            model=data["model"],
            loss_rate=data["loss_rate"],
            drops=_sorted_drops(data["drops"]),
            fct=FctRow.from_payload(data["fct"]),
        )


def chaos_point_spec(
    scheme_name: str,
    scheduler_name: str,
    load: float,
    profile: ScaleProfile,
    seed: int,
    model: str,
    loss_rate: float,
    audit: bool = False,
    topology: "Union[str, TopologySpec, None]" = None,
    shards: int = 1,
) -> ExperimentSpec:
    """The canonical identity of one chaos FCT point (store cache key).

    The full fault set is rendered into the params — alongside the
    human-readable ``model``/``loss_rate`` knobs — so any change to how
    :func:`chaos_faults` shapes a model re-keys the affected points.
    Default topologies render to the historical ``"leaf-spine"`` param,
    keeping pre-redesign keys unchanged (see
    :func:`~repro.experiments.largescale.topology_params`).
    """
    faults = chaos_faults(model, loss_rate)
    params: Dict[str, Any] = topology_params(topology)
    params.update({
        "model": model,
        "loss_rate": loss_rate,
        "faults": tuple(spec.to_param() for spec in faults),
    })
    # Sharded execution is keyed like the clean FCT sweep: fault
    # streams replay identically at any shard count, but the execution
    # substrate differs, so shards > 1 re-keys while shards=1 keys stay
    # byte-for-byte what they were before the sharding layer existed.
    if shards and shards > 1:
        params["shards"] = int(shards)
    return ExperimentSpec.create(
        CHAOS_EXPERIMENT, scheme=scheme_name, scheduler=scheduler_name,
        load=load, seed=seed, profile=profile, audit=audit, params=params,
    )


def _chaos_worker(point) -> ChaosFctRow:
    """Module-level (picklable) worker for one chaos sweep point.

    Same cache contract as
    :func:`~repro.experiments.largescale._sweep_worker`: store hits are
    answered without simulating, fresh results persist atomically
    before returning, and the crash hook
    (:data:`~repro.experiments.largescale.CRASH_AFTER_ENV`) counts only
    freshly computed points.
    """
    (scheme_name, scheduler_name, load, profile, seed, model, loss_rate,
     audit, cache_dir, force, topology, shards) = point
    store = RunStore(cache_dir) if cache_dir else None
    spec = chaos_point_spec(scheme_name, scheduler_name, load, profile,
                            seed, model, loss_rate, audit=audit,
                            topology=topology, shards=shards)
    if store is not None and not force:
        record = store.get(spec)
        if record is not None:
            return ChaosFctRow.from_payload(record.result)
    provenance_out: Dict[str, Any] = {}
    fault_stats: Dict[str, Any] = {}
    fct = run_fct_point(
        scheme_name, scheduler_name, load, profile, seed,
        topology=topology,
        config=RunConfig(audit=audit,
                         shards=shards if shards > 1 else None),
        provenance_out=provenance_out,
        faults=chaos_faults(model, loss_rate),
        fault_stats_out=fault_stats,
    )
    row = ChaosFctRow(
        model=model, loss_rate=loss_rate,
        drops=_sorted_drops(fault_stats.get("drops", {})),
        fct=fct,
    )
    if store is not None:
        store.put(spec, row.to_payload(), make_provenance(
            profile_name=profile.name,
            elapsed_s=provenance_out.get("elapsed_s"),
            engine=provenance_out.get("engine"),
        ))
        largescale._note_point_computed()
    return row


def run_chaos_sweep(
    scheme_names: Sequence[str] = CHAOS_SCHEMES,
    scheduler_name: str = "dwrr",
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    model: str = "iid-loss",
    profile: Optional[ScaleProfile] = None,
    seed: Optional[int] = None,
    config: Optional[RunConfig] = None,
    store: Optional[Union[RunStore, str]] = None,
    topology: Union[str, TopologySpec, None] = None,
) -> List[ChaosFctRow]:
    """The chaos matrix: every scheme × load × loss rate.

    All schemes at a given (load, seed, loss rate) see the same flow
    arrivals *and* the same per-link fault streams (streams key on
    seed, salt and link name — not on the scheme), so comparisons are
    paired under identical loss patterns.  Points fan out over worker
    processes and cache/resume exactly like
    :func:`~repro.experiments.largescale.run_fct_sweep`.
    """
    from .runner import run_parallel

    config = resolve_run_config(config, "run_chaos_sweep")
    if profile is None:
        profile = config.profile if config.profile is not None else BENCH
    if seed is None:
        seed = config.seed if config.seed is not None else 1
    jobs = config.jobs if config.jobs is not None else profile.jobs
    if store is None and config.cache_dir:
        store = config.cache_dir
    cache_dir = (store.root if isinstance(store, RunStore)
                 else os.fspath(store) if store else None)
    force = config.force or not config.resume

    largescale._points_computed = 0
    from ..sim.audit import audit_enabled
    audit = audit_enabled(config.audit)
    topology_spec = resolve_fct_topology(topology)
    shards = config.shards if config.shards is not None else 1
    points = [
        (name, scheduler_name, load, profile, seed, model, loss_rate,
         audit, cache_dir, force, topology_spec, shards)
        for loss_rate in loss_rates
        for load in profile.loads
        for name in scheme_names
        if not (scheduler_name == "wfq" and name == "mq-ecn")
    ]
    return run_parallel(points, _chaos_worker, jobs=jobs)
