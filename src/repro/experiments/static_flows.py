"""Static-flow experiments (paper §VI-A, Figs. 8–10 and 13–15).

Long-lived flows through one bottleneck, checking that PMSB simultaneously
achieves weighted fair sharing, high throughput, low latency, and respect
for arbitrary scheduling policies (DWRR, WFQ, SP, SP+WFQ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.stats import SummaryStats, summarize
from ..scheduling.base import Scheduler
from ..scheduling.dwrr import DwrrScheduler
from ..scheduling.hybrid import SpWfqScheduler
from ..scheduling.strict_priority import StrictPriorityScheduler
from ..scheduling.wfq import WfqScheduler
from ..store.spec import RunConfig
from .scenario import (IncastResult, SchemeSpec, incast_flows, make_scheme,
                       run_incast)

__all__ = [
    "weighted_fair_sharing",
    "rtt_distribution",
    "PolicyResult",
    "scheduler_sp_wfq",
    "scheduler_sp",
    "scheduler_wfq",
]


def weighted_fair_sharing(
    scheme_name: str = "pmsb",
    flows_queue2: int = 4,
    port_threshold: float = 12.0,
    rtt_threshold: float = 40e-6,
    link_rate: float = 10e9,
    duration: float = 0.04,
    warmup_fraction: float = 1.0 / 3.0,
    stagger: float = 0.0,
    trains: Optional[int] = None,
) -> IncastResult:
    """Figs. 8/10: DWRR, two equal queues, 1 flow vs N flows.

    PMSB should hold both queues at ~C/2 regardless of ``flows_queue2``
    (the paper shows 1:4 and 1:100).  ``stagger`` spreads queue-2 flow
    starts over that many seconds — at 1:100, a perfectly synchronized
    100×16-packet initial burst is an incast artifact, not the paper's
    long-lived steady state.  ``trains`` enables the tolerance-accurate
    packet-train tier (the CLI's ``--trains``).
    """
    scheme = make_scheme(
        scheme_name, link_rate=link_rate, n_queues=2,
        port_threshold_packets=port_threshold, rtt_threshold=rtt_threshold,
    )
    flows = incast_flows([1, flows_queue2])
    if stagger > 0:
        for index, flow in enumerate(flows[1:]):
            flow.start_time = stagger * index / max(1, flows_queue2 - 1)
    return run_incast(
        scheme, lambda: DwrrScheduler(2), flows,
        warmup_fraction=warmup_fraction, link_rate=link_rate,
        config=RunConfig(duration=duration, trains=trains),
    )


def rtt_distribution(
    scheme_names: Sequence[str] = ("pmsb", "pmsb-e", "mq-ecn", "tcn",
                                   "per-queue-standard"),
    flows_queue2: int = 4,
    port_threshold: float = 12.0,
    rtt_threshold: float = 40e-6,
    tcn_threshold: float = 39e-6,
    standard_threshold: float = 16.0,
    link_rate: float = 10e9,
    duration: float = 0.04,
) -> Dict[str, SummaryStats]:
    """Fig. 9: RTT distribution of queue-2 flows under each scheme.

    The paper's settings: DWRR with two equal queues (1 vs 4 flows), port
    threshold 12 packets, PMSB(e) RTT threshold 40 µs, TCN threshold
    39 µs, per-queue standard threshold 16 packets.  Returns RTT summary
    (seconds) per scheme display name.
    """
    results: Dict[str, SummaryStats] = {}
    for name in scheme_names:
        scheme = make_scheme(
            name, link_rate=link_rate, n_queues=2,
            port_threshold_packets=port_threshold,
            rtt_threshold=rtt_threshold, tcn_threshold=tcn_threshold,
            standard_threshold_packets=standard_threshold,
        )
        result = run_incast(
            scheme, lambda: DwrrScheduler(2),
            incast_flows([1, flows_queue2]), link_rate=link_rate,
            record_rtt=True, config=RunConfig(duration=duration),
        )
        samples = result.rtt_samples(queue_index=1)
        steady = samples[len(samples) // 3:]
        results[scheme.name] = summarize(steady)
    return results


@dataclass
class PolicyResult:
    """Outcome of one scheduler-policy experiment (Figs. 13–15)."""

    scheme: str
    scheduler: str
    duration: float
    #: (t0, t1, label) activity phases of the experiment.
    phases: List[Tuple[float, float, str]]
    #: phase label -> {queue: Gbps averaged over the phase's settled half}.
    phase_gbps: Dict[str, Dict[int, float]]
    #: queue -> (times, gbps) full time series.
    series: Dict[int, Tuple[np.ndarray, np.ndarray]]

    def settled(self, phase_label: Optional[str] = None) -> Dict[int, float]:
        """Per-queue Gbps in the last phase (or a named one)."""
        if phase_label is None:
            phase_label = self.phases[-1][2]
        return self.phase_gbps[phase_label]


def _run_policy(
    scheme: SchemeSpec,
    scheduler_name: str,
    scheduler_factory: Callable[[], Scheduler],
    flows_per_queue: Sequence[int],
    start_times: Sequence[float],
    rate_limits_by_queue: Dict[int, float],
    phases: List[Tuple[float, float, str]],
    duration: float,
    link_rate: float,
) -> PolicyResult:
    flows = incast_flows(flows_per_queue, start_times=start_times)
    rate_limits = {
        flow.src: rate_limits_by_queue[flow.service]
        for flow in flows if flow.service in rate_limits_by_queue
    }
    result = run_incast(
        scheme, scheduler_factory, flows, link_rate=link_rate,
        rate_limits=rate_limits or None,
        config=RunConfig(duration=duration),
    )
    n_queues = len(flows_per_queue)
    phase_gbps: Dict[str, Dict[int, float]] = {}
    for t0, t1, label in phases:
        # Average over the settled second half of the phase.
        midpoint = t0 + (t1 - t0) / 2.0
        phase_gbps[label] = {
            q: result.meter.average_bps(q, midpoint, t1) / 1e9
            for q in range(n_queues)
        }
    series = {q: result.meter.series(q, 0.0, duration) for q in range(n_queues)}
    return PolicyResult(
        scheme=scheme.name, scheduler=scheduler_name, duration=duration,
        phases=phases, phase_gbps=phase_gbps, series=series,
    )


def scheduler_sp_wfq(
    scheme_name: str = "pmsb",
    port_threshold: float = 12.0,
    rtt_threshold: float = 40e-6,
    link_rate: float = 10e9,
    duration: float = 0.06,
) -> PolicyResult:
    """Fig. 13: SP+WFQ — queue 1 strictly prioritized (a paced 5 Gbps
    flow), queues 2 and 3 share the remainder with equal WFQ weights.

    Expected settled allocation: 5 / 2.5 / 2.5 Gbps.
    """
    scheme = make_scheme(
        scheme_name, link_rate=link_rate, n_queues=3,
        port_threshold_packets=port_threshold, rtt_threshold=rtt_threshold,
    )
    t1 = duration / 3.0
    t2 = 2.0 * duration / 3.0
    phases = [
        (0.0, t1, "q1 only"),
        (t1, t2, "q1+q2"),
        (t2, duration, "q1+q2+q3"),
    ]
    return _run_policy(
        scheme, "SP+WFQ",
        lambda: SpWfqScheduler(3, priorities=[0, 1, 1]),
        flows_per_queue=[1, 1, 4],
        start_times=[0.0, t1, t2],
        rate_limits_by_queue={0: 5e9},
        phases=phases, duration=duration, link_rate=link_rate,
    )


def scheduler_sp(
    scheme_name: str = "pmsb",
    port_threshold: float = 12.0,
    rtt_threshold: float = 40e-6,
    link_rate: float = 10e9,
    duration: float = 0.06,
) -> PolicyResult:
    """Fig. 14: SP with three priorities and rate-limited sources
    (5 Gbps / 3 Gbps / unlimited) → expected 5 / 3 / 2 Gbps settled."""
    scheme = make_scheme(
        scheme_name, link_rate=link_rate, n_queues=3,
        port_threshold_packets=port_threshold, rtt_threshold=rtt_threshold,
    )
    t1 = duration / 3.0
    t2 = 2.0 * duration / 3.0
    phases = [
        (0.0, t1, "q1 only"),
        (t1, t2, "q1+q2"),
        (t2, duration, "q1+q2+q3"),
    ]
    return _run_policy(
        scheme, "SP",
        lambda: StrictPriorityScheduler(3),
        flows_per_queue=[1, 1, 1],
        start_times=[0.0, t1, t2],
        rate_limits_by_queue={0: 5e9, 1: 3e9},
        phases=phases, duration=duration, link_rate=link_rate,
    )


def scheduler_wfq(
    scheme_name: str = "pmsb",
    port_threshold: float = 12.0,
    rtt_threshold: float = 40e-6,
    link_rate: float = 10e9,
    duration: float = 0.06,
) -> PolicyResult:
    """Fig. 15: WFQ with two equal queues — 1 flow, then 4 more in the
    other queue → 10 Gbps alone, then a 5 / 5 split."""
    scheme = make_scheme(
        scheme_name, link_rate=link_rate, n_queues=2,
        port_threshold_packets=port_threshold, rtt_threshold=rtt_threshold,
    )
    t1 = duration / 2.0
    phases = [
        (0.0, t1, "q1 only"),
        (t1, duration, "q1+q2"),
    ]
    return _run_policy(
        scheme, "WFQ",
        lambda: WfqScheduler(2),
        flows_per_queue=[1, 4],
        start_times=[0.0, t1],
        rate_limits_by_queue={},
        phases=phases, duration=duration, link_rate=link_rate,
    )
