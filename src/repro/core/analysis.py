"""Steady-state analysis of PMSB (paper §IV-D, Theorem IV.1).

The model: ``n_i`` synchronized long-lived DCTCP flows with identical RTT
share queue *i* of a bottleneck port of capacity ``C`` (bits/s).  Queue
*i* holds weight ``w_i`` and receives the fluid share
``γ_i = w_i / Σw`` of the link.  With a marking threshold ``k_i`` on the
queue, the DCTCP sawtooth gives (all lengths in *packets*, windows in
packets):

- queue length        ``Q_i(t) = n_i·W(t) − γ_i·C·RTT``            (Eq. 7)
- peak queue length   ``Q_i^max = k_i + n_i``                       (Eq. 8)
- oscillation size    ``A_i = ½·√(2·n_i·(γ_i·C·RTT + k_i))``        (Eq. 9)
- worst-case trough   ``Q_i^- = 7/8·k_i − γ_i·C·RTT/8``             (Eq. 10)
  attained at         ``n_i = (γ_i·C·RTT + k_i)/8``                 (Eq. 11)

Requiring ``Q_i^- > 0`` yields **Theorem IV.1**:

    ``k_i > γ_i · C·RTT / 7``                                       (Eq. 12)

— the per-queue filter threshold that avoids underflow (throughput loss)
for any number of flows.  Summing the bounds over queues gives the port
threshold the evaluation uses ("we can obtain the port's threshold by
summing up the thresholds of all queues", §VI).

``C·RTT`` is converted to packets through ``packet_size_bytes`` so the
results are directly comparable with the packet-denominated thresholds
used throughout the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..net.packet import MTU_BYTES

__all__ = [
    "bdp_packets",
    "gamma",
    "queue_threshold_lower_bound",
    "port_threshold_lower_bound",
    "queue_peak_length",
    "oscillation_amplitude",
    "queue_min_length",
    "worst_case_flow_count",
    "queue_min_lower_bound",
    "SteadyStateModel",
]


def bdp_packets(capacity_bps: float, rtt: float,
                packet_size_bytes: int = MTU_BYTES) -> float:
    """The bandwidth-delay product ``C·RTT`` expressed in packets."""
    if capacity_bps <= 0 or rtt <= 0:
        raise ValueError("capacity and RTT must be positive")
    return capacity_bps * rtt / (8.0 * packet_size_bytes)


def gamma(weights: Sequence[float], queue_index: int) -> float:
    """Fluid bandwidth share ``γ_i = w_i / Σw`` of one queue."""
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return weights[queue_index] / total


def queue_threshold_lower_bound(
    weights: Sequence[float],
    queue_index: int,
    capacity_bps: float,
    rtt: float,
    packet_size_bytes: int = MTU_BYTES,
) -> float:
    """Theorem IV.1: the minimum ``k_i`` (packets) avoiding underflow."""
    share = gamma(weights, queue_index)
    return share * bdp_packets(capacity_bps, rtt, packet_size_bytes) / 7.0


def port_threshold_lower_bound(
    weights: Sequence[float],
    capacity_bps: float,
    rtt: float,
    packet_size_bytes: int = MTU_BYTES,
) -> float:
    """Port threshold = Σ_i k_i^min = C·RTT/7 packets (shares sum to 1)."""
    return sum(
        queue_threshold_lower_bound(weights, i, capacity_bps, rtt, packet_size_bytes)
        for i in range(len(weights))
    )


def queue_peak_length(k_i: float, n_i: float) -> float:
    """Eq. 8: maximum queue length ``Q_i^max = k_i + n_i`` (packets)."""
    return k_i + n_i


def oscillation_amplitude(n_i: float, gamma_i: float, bdp_pkts: float,
                          k_i: float) -> float:
    """Eq. 9: sawtooth amplitude ``A_i`` (packets)."""
    if n_i <= 0:
        raise ValueError("flow count must be positive")
    return 0.5 * math.sqrt(2.0 * n_i * (gamma_i * bdp_pkts + k_i))


def queue_min_length(n_i: float, gamma_i: float, bdp_pkts: float,
                     k_i: float) -> float:
    """Trough of the sawtooth: ``Q_i^min = Q_i^max − A_i`` (packets)."""
    peak = queue_peak_length(k_i, n_i)
    return peak - oscillation_amplitude(n_i, gamma_i, bdp_pkts, k_i)


def worst_case_flow_count(gamma_i: float, bdp_pkts: float, k_i: float) -> float:
    """Eq. 11: the ``n_i`` minimizing ``Q_i^min``."""
    return (gamma_i * bdp_pkts + k_i) / 8.0


def queue_min_lower_bound(gamma_i: float, bdp_pkts: float, k_i: float) -> float:
    """Eq. 10: ``Q_i^- = 7/8·k_i − γ_i·C·RTT/8`` (packets)."""
    return 0.875 * k_i - gamma_i * bdp_pkts / 8.0


@dataclass(frozen=True)
class SteadyStateModel:
    """Convenience wrapper evaluating the whole §IV-D model for one port.

    Attributes mirror Table III: ``capacity_bps`` is C, ``rtt`` the common
    round-trip time, ``weights`` the per-queue weights.
    """

    capacity_bps: float
    rtt: float
    weights: Sequence[float]
    packet_size_bytes: int = MTU_BYTES

    @property
    def bdp_pkts(self) -> float:
        return bdp_packets(self.capacity_bps, self.rtt, self.packet_size_bytes)

    def gamma(self, queue_index: int) -> float:
        return gamma(self.weights, queue_index)

    def threshold_bound(self, queue_index: int) -> float:
        """Theorem IV.1 bound for one queue, in packets."""
        return queue_threshold_lower_bound(
            self.weights, queue_index, self.capacity_bps, self.rtt,
            self.packet_size_bytes,
        )

    def port_threshold_bound(self) -> float:
        """Sum of the per-queue bounds — the recommended port threshold."""
        return port_threshold_lower_bound(
            self.weights, self.capacity_bps, self.rtt, self.packet_size_bytes
        )

    def min_queue_length(self, queue_index: int, k_i: float, n_i: float) -> float:
        """``Q_i^min`` for a concrete flow count (packets)."""
        return queue_min_length(n_i, self.gamma(queue_index), self.bdp_pkts, k_i)

    def worst_case_min(self, queue_index: int, k_i: float) -> float:
        """``Q_i^-``: the trough minimized over all flow counts (Eq. 10)."""
        return queue_min_lower_bound(self.gamma(queue_index), self.bdp_pkts, k_i)

    def underflow_free(self, queue_index: int, k_i: float) -> bool:
        """Does ``k_i`` satisfy Theorem IV.1 for this queue?"""
        return k_i > self.threshold_bound(queue_index)

    def sweep_thresholds(self, queue_index: int,
                         k_values: Sequence[float]) -> List[dict]:
        """Evaluate Eq. 10/11 across candidate thresholds (bench T4)."""
        rows = []
        for k_i in k_values:
            rows.append(
                {
                    "k_i": k_i,
                    "bound": self.threshold_bound(queue_index),
                    "worst_case_n": worst_case_flow_count(
                        self.gamma(queue_index), self.bdp_pkts, k_i
                    ),
                    "q_min_lower_bound": self.worst_case_min(queue_index, k_i),
                    "underflow_free": self.underflow_free(queue_index, k_i),
                }
            )
        return rows


def sawtooth_trajectory(
    n_i: int,
    gamma_i: float,
    capacity_bps: float,
    rtt: float,
    k_i: float,
    n_cycles: int = 5,
    packet_size_bytes: int = MTU_BYTES,
) -> List[dict]:
    """Fluid-model trajectory of the §IV-D sawtooth (Eq. 7/8).

    Iterates the DCTCP synchronized-flow dynamics in RTT steps: windows
    grow by one packet per RTT until the queue reaches ``k_i`` (plus the
    one-RTT feedback delay that gives the ``+ n_i`` overshoot of Eq. 8),
    then all flows cut by ``α/2`` with the steady-state
    ``α = √(2/(W*+1))`` approximation of the DCTCP analysis.  Returns a
    list of per-RTT records ``{t_rtts, window, queue}`` covering
    ``n_cycles`` marking cycles — the reference curve the packet
    simulator's buffer trace is validated against.
    """
    if n_i < 1:
        raise ValueError("need at least one flow")
    bdp = gamma_i * bdp_packets(capacity_bps, rtt, packet_size_bytes)
    w_star = (bdp + k_i) / n_i
    alpha = math.sqrt(2.0 / (w_star + 1.0))
    window = max(1.0, bdp / n_i)  # start at the no-queue operating point
    records: List[dict] = []
    cycles = 0
    t = 0
    while cycles < n_cycles and t < 100_000:
        queue = max(0.0, n_i * window - bdp)
        records.append({"t_rtts": t, "window": window, "queue": queue})
        if queue >= k_i:
            # One more RTT of growth happens before the echo arrives
            # (Eq. 8's +n_i), then the synchronized cut.
            window += 1.0
            queue = max(0.0, n_i * window - bdp)
            records.append({"t_rtts": t + 1, "window": window,
                            "queue": queue})
            window = max(1.0, window * (1.0 - alpha / 2.0))
            cycles += 1
            t += 2
        else:
            window += 1.0
            t += 1
    return records


def sawtooth_peak(n_i: int, gamma_i: float, capacity_bps: float, rtt: float,
                  k_i: float, packet_size_bytes: int = MTU_BYTES) -> float:
    """Peak queue of the fluid trajectory — Eq. 8 predicts ``k_i + n_i``."""
    records = sawtooth_trajectory(n_i, gamma_i, capacity_bps, rtt, k_i,
                                  n_cycles=3,
                                  packet_size_bytes=packet_size_bytes)
    return max(record["queue"] for record in records)
