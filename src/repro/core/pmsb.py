"""PMSB — per-Port Marking with Selective Blindness (Algorithm 1).

The switch marks a packet CE only when **both** conditions hold:

1. *port marking*: ``port_length ≥ port_threshold`` — the per-port DCTCP
   condition ``K = C·RTT·λ`` (Eq. 5), giving high throughput and low
   latency like plain per-port ECN;
2. *selective blindness*: ``queue_length_i ≥ queue_threshold_i`` with
   ``queue_threshold_i = (weight_i / weight_sum) × port_threshold``
   (Eq. 6) — a packet whose own queue is below its fair share of the port
   buffer is a *victim* of other queues' occupancy, and its marking is
   revoked.

The comparison operators follow Algorithm 1 exactly: the port check fails
when ``port_length < port_threshold`` (line 1), the queue check passes
when ``queue_length_i ≥ queue_threshold_i`` (line 5).

``blindness_scale`` is an ablation knob (not in the paper's algorithm):
the queue filter threshold is multiplied by it.  ``0`` disables selective
blindness entirely (pure per-port marking); values above 1 make the filter
more conservative.  The paper's design point is ``1.0``.

§IV-C notes PMSB "can directly compare instantaneous or average queue
length with threshold".  ``average_weight`` selects that: ``None`` (the
default) compares instantaneous occupancy; a value in (0, 1] applies an
RED-style EWMA to the *port* occupancy before the port-threshold
comparison (the queue filter always uses instantaneous occupancy — it
protects against a momentary, not average, imbalance).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..ecn.base import Marker, MarkPoint
from ..net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["PmsbMarker"]


class PmsbMarker(Marker):
    """Algorithm 1: per-port marking gated by a per-queue share filter."""

    _THRESHOLD_FIELDS = ("port_threshold_packets", "blindness_scale")

    def __init__(
        self,
        port_threshold_packets: float,
        mark_point: MarkPoint = MarkPoint.ENQUEUE,
        blindness_scale: float = 1.0,
        average_weight: float = None,
    ):
        super().__init__(mark_point)
        if port_threshold_packets < 0:
            raise ValueError("port threshold cannot be negative")
        if blindness_scale < 0:
            raise ValueError("blindness_scale cannot be negative")
        if average_weight is not None and not 0.0 < average_weight <= 1.0:
            raise ValueError("average_weight must be in (0, 1] or None")
        self.port_threshold_packets = float(port_threshold_packets)
        self.blindness_scale = float(blindness_scale)
        self.average_weight = average_weight
        self._avg_port = 0.0
        # Cached sum of the attached port's scheduler weights: Eq. 6
        # needs it for every marking decision and the weight vector is
        # fixed for the port's lifetime, so it is computed once at
        # attach (and refreshed on reset) instead of per packet.
        self._weight_sum = None
        #: Count of packets that qualified per-port marking but were
        #: spared by selective blindness — the protected victims.
        self.victims_protected = 0

    def attach(self, port: "Port") -> None:
        super().attach(port)
        self._weight_sum = self._compute_weight_sum(port)

    def _validate_thresholds(self, merged) -> None:
        if merged["port_threshold_packets"] < 0:
            raise ValueError("port threshold cannot be negative")
        if merged["blindness_scale"] < 0:
            raise ValueError("blindness_scale cannot be negative")

    def _apply_thresholds(self, changes) -> None:
        for name, value in changes.items():
            setattr(self, name, float(value))

    def on_reset(self, port: "Port") -> None:
        super().on_reset(port)
        # §IV-C averaged-occupancy variant: the port EWMA tracks the
        # discarded buffer contents, so it restarts from empty.
        self._avg_port = 0.0
        self._weight_sum = self._compute_weight_sum(port)

    @staticmethod
    def _compute_weight_sum(port: "Port") -> float:
        weight_sum = sum(port.weights)
        if weight_sum <= 0:
            raise ValueError(
                f"PMSB needs a positive scheduler weight sum on "
                f"{port.name}, got {weight_sum!r}: Eq. 6 divides the "
                f"port threshold by it")
        return weight_sum

    def port_occupancy(self, port: "Port") -> float:
        """The occupancy compared against the port threshold
        (instantaneous, or EWMA when ``average_weight`` is set)."""
        if self.average_weight is None:
            return float(port.packet_count)
        self._avg_port += self.average_weight * (
            port.packet_count - self._avg_port
        )
        return self._avg_port

    def queue_threshold(self, port: "Port", queue_index: int) -> float:
        """``queue_threshold_i`` of Eq. 6 (packets), scaled for ablations."""
        weight_sum = self._weight_sum
        if weight_sum is None:  # direct call before any attach
            weight_sum = self._compute_weight_sum(port)
        share = port.weights[queue_index] / weight_sum
        return share * self.port_threshold_packets * self.blindness_scale

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        if self.port_occupancy(port) < self.port_threshold_packets:
            return False
        if port.queue_packet_count(queue_index) >= self.queue_threshold(
            port, queue_index
        ):
            return True
        self.victims_protected += 1
        return False

    def _train_unmarked(self, port, queue_index, packet, base_port,
                        base_queue):
        if self.average_weight is not None:
            # The §IV-C EWMA variant mutates state per decision, so the
            # marking prefix has no closed form — per-packet fallback.
            return None
        # Segment i (1-based) sees port occupancy base_port + i and its
        # own queue at base_queue + i.  Both Algorithm 1 conditions are
        # monotone over a back-to-back burst: the port check first holds
        # at i_port, the queue check at i_queue, and the packet is
        # marked from max(i_port, i_queue) on.  Segments in between pass
        # the port check but fail the queue check — the protected
        # victims (Algorithm 1 line 7).
        i_port = max(1, math.ceil(self.port_threshold_packets - base_port))
        i_queue = max(1, math.ceil(
            self.queue_threshold(port, queue_index) - base_queue))
        i_mark = max(i_port, i_queue)
        n = packet.train
        self.victims_protected += max(0, min(i_mark - 1, n) - i_port + 1)
        return i_mark - 1
