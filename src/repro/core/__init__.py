"""PMSB — the paper's contribution: Algorithm 1 (switch marker),
Algorithm 2 (end-host filter), the §IV-D steady-state analysis, and the
Table I capability matrix."""

from .analysis import (
    SteadyStateModel,
    bdp_packets,
    gamma,
    oscillation_amplitude,
    port_threshold_lower_bound,
    queue_min_length,
    queue_min_lower_bound,
    queue_peak_length,
    queue_threshold_lower_bound,
    sawtooth_peak,
    sawtooth_trajectory,
    worst_case_flow_count,
)
from .capabilities import CAPABILITIES, SchemeCapabilities, capability_table
from .pmsb import PmsbMarker
from .pmsb_endhost import AcceptAllFilter, EcnFilter, RttEcnFilter

__all__ = [
    "AcceptAllFilter",
    "CAPABILITIES",
    "EcnFilter",
    "PmsbMarker",
    "RttEcnFilter",
    "SchemeCapabilities",
    "SteadyStateModel",
    "bdp_packets",
    "capability_table",
    "gamma",
    "oscillation_amplitude",
    "port_threshold_lower_bound",
    "queue_min_length",
    "queue_min_lower_bound",
    "queue_peak_length",
    "queue_threshold_lower_bound",
    "sawtooth_peak",
    "sawtooth_trajectory",
    "worst_case_flow_count",
]
