"""PMSB(e) — the end-host heuristic (Algorithm 2).

The immediately-deployable variant needs no switch changes: switches run
plain per-port ECN marking, and the *sender* decides whether to honour an
echoed congestion mark.  Algorithm 2: ignore the mark when there is no
mark (trivially) or when the flow's current RTT is below
``rtt_threshold`` — a small RTT means the flow's own path is not queueing,
so the mark must have been caused by other queues sharing the port and the
flow is a victim.

The filter is a small strategy object the DCTCP sender consults for every
ECE-carrying ACK, so it composes with any ECN-based transport
("it can coexist with other ECN-based transports like DCTCP", §V-B).
``AcceptAllFilter`` is the null strategy used by every non-PMSB(e)
transport.
"""

from __future__ import annotations

__all__ = ["EcnFilter", "AcceptAllFilter", "RttEcnFilter"]


class EcnFilter:
    """Strategy interface: should the sender honour this congestion mark?"""

    def accept_mark(self, current_rtt: float) -> bool:
        """True when the mark should be counted as congestion feedback."""
        raise NotImplementedError


class AcceptAllFilter(EcnFilter):
    """Standard DCTCP behaviour: every echoed mark is congestion."""

    def accept_mark(self, current_rtt: float) -> bool:
        return True


class RttEcnFilter(EcnFilter):
    """Algorithm 2: ignore marks while the measured RTT stays small.

    ``rtt_threshold`` should sit between the flow's uncongested base RTT
    and the RTT it would see if its *own* queue were building (the paper
    sets 40 µs in the static experiments and 85.2 µs at large scale).
    """

    def __init__(self, rtt_threshold: float):
        if rtt_threshold < 0:
            raise ValueError("rtt threshold cannot be negative")
        self.rtt_threshold = rtt_threshold
        self.marks_seen = 0
        self.marks_ignored = 0

    @property
    def ignore_fraction(self) -> float:
        """Fraction of marks this filter has suppressed."""
        if self.marks_seen == 0:
            return 0.0
        return self.marks_ignored / self.marks_seen

    def accept_mark(self, current_rtt: float) -> bool:
        self.marks_seen += 1
        if current_rtt < self.rtt_threshold:
            self.marks_ignored += 1
            return False
        return True
