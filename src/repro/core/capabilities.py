"""Table I — capability comparison of multi-queue ECN schemes.

The table is not just documentation: each capability is backed by a
structural property of the implementation, and the test suite asserts the
two agree (e.g. ``MqEcnMarker.attach`` raises on a non-round-based
scheduler ⇔ ``generic_scheduler=False``; ``TcnMarker.supported_points``
excludes enqueue ⇔ ``early_notification=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["SchemeCapabilities", "CAPABILITIES", "capability_table"]


@dataclass(frozen=True)
class SchemeCapabilities:
    """One row of Table I."""

    name: str
    generic_scheduler: bool
    round_based_scheduler: bool
    early_notification: bool
    no_switch_modification: bool


CAPABILITIES: Dict[str, SchemeCapabilities] = {
    "MQ-ECN": SchemeCapabilities(
        name="MQ-ECN",
        generic_scheduler=False,        # needs a round concept (WRR/DWRR)
        round_based_scheduler=True,
        early_notification=True,        # buffer-based: can mark at enqueue
        no_switch_modification=False,   # per-port T_round register
    ),
    "TCN": SchemeCapabilities(
        name="TCN",
        generic_scheduler=True,
        round_based_scheduler=True,     # generic includes round-based
        early_notification=False,       # sojourn time only exists at dequeue
        no_switch_modification=False,   # per-packet timestamping
    ),
    "PMSB": SchemeCapabilities(
        name="PMSB",
        generic_scheduler=True,
        round_based_scheduler=True,
        early_notification=True,
        no_switch_modification=False,   # marking pipeline change
    ),
    "PMSB(e)": SchemeCapabilities(
        name="PMSB(e)",
        generic_scheduler=True,
        round_based_scheduler=True,
        early_notification=True,
        no_switch_modification=True,    # sender-side filter only
    ),
}

_ROWS = [
    ("Generic scheduler", "generic_scheduler"),
    ("Round-based scheduler", "round_based_scheduler"),
    ("Early notification", "early_notification"),
    ("No switch modification", "no_switch_modification"),
]


def capability_table() -> str:
    """Render Table I as aligned text (used by the Table I bench)."""
    schemes = list(CAPABILITIES.values())
    header = f"{'':24s}" + "".join(f"{s.name:>10s}" for s in schemes)
    lines = [header]
    for label, attr in _ROWS:
        cells = "".join(
            f"{'yes' if getattr(s, attr) else 'no':>10s}" for s in schemes
        )
        lines.append(f"{label:24s}" + cells)
    return "\n".join(lines)
