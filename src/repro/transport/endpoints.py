"""Flow wiring: create sender + receiver and register them at the hosts.

:func:`open_flow` is the one-call way to put a transfer on a built
:class:`~repro.net.topology.Network`: it instantiates the DCTCP endpoints,
hooks them into each host's demultiplexer, and schedules the sender's
start.  The returned :class:`FlowHandle` is how experiments inspect
per-flow state afterwards (FCT, throughput, filter statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..net.topology import Network
from .base import DctcpConfig
from .dctcp import CompletionCallback, DctcpSender
from .flow import Flow
from .receiver import DctcpReceiver

__all__ = ["FlowHandle", "open_flow", "open_flows"]


@dataclass
class FlowHandle:
    """A live flow: descriptor plus both endpoints."""

    flow: Flow
    sender: DctcpSender
    receiver: DctcpReceiver

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time, once the flow finished."""
        return self.sender.fct

    def goodput_bps(self, duration: float) -> float:
        """Average received rate (wire bytes) over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.receiver.bytes_received * 8.0 / duration


def open_flow(
    network: Network,
    flow: Flow,
    config: Optional[DctcpConfig] = None,
    on_complete: Optional[CompletionCallback] = None,
    sender_class: type = DctcpSender,
) -> FlowHandle:
    """Wire one flow onto the network and schedule its start.

    ``sender_class`` selects the congestion-control variant: the default
    :class:`DctcpSender`, or e.g. :class:`~repro.transport.classic_ecn.
    ClassicEcnSender` for an RFC 3168 baseline.
    """
    sim = network.sim
    src_host = network.host(flow.src)
    dst_host = network.host(flow.dst)
    if config is None:
        config = DctcpConfig()
    receiver = DctcpReceiver(sim, dst_host, flow, ack_every=config.ack_every,
                             delack_timeout=config.delack_timeout)
    sender = sender_class(sim, src_host, flow, config, on_complete)
    dst_host.register_flow(flow.flow_id, data_handler=receiver.on_data)
    src_host.register_flow(flow.flow_id, ack_handler=sender.on_ack)
    if flow.start_time > sim.now:
        sim.at(flow.start_time, sender.start)
    else:
        sim.schedule(0.0, sender.start)
    handle = FlowHandle(flow, sender, receiver)
    if sim.auditor is not None:
        # Re-registers the handlers wrapped with transport validators.
        sim.auditor.watch_flow(handle)
    return handle


def open_flows(
    network: Network,
    flows: List[Flow],
    config: Optional[DctcpConfig] = None,
    on_complete: Optional[CompletionCallback] = None,
) -> List[FlowHandle]:
    """Wire a batch of flows with shared configuration."""
    return [open_flow(network, flow, config, on_complete) for flow in flows]
