"""TIMELY — RTT-gradient congestion control (Mittal et al., SIGCOMM 2015).

The paper's reference [10], cited as evidence that datacenter RTTs can
be measured precisely enough for PMSB(e)'s filter.  TIMELY goes further:
it uses RTT as the *only* congestion signal, adjusting a pacing rate by
the RTT gradient.  Per RTT sample:

- ``rtt < t_low``  → additive increase (the network is clearly idle);
- ``rtt > t_high`` → multiplicative decrease proportional to how far the
  RTT overshoots: ``rate ← rate·(1 − β·(1 − t_high/rtt))``;
- otherwise, gradient mode: with the EWMA-smoothed, min-RTT-normalized
  gradient ``g``, a non-positive ``g`` adds ``δ`` (``N·δ`` in
  hyperactive-increase mode after several consecutive non-positive
  gradients), a positive ``g`` multiplies by ``(1 − β·g)``.

The sender reuses the DCTCP reliability machinery (the window stays at
its socket-buffer cap and never reacts to ECN — TIMELY ignores marks);
congestion control happens purely through :attr:`pacing_rate`.  Having
both PMSB(e) (RTT as a *filter* on ECN) and TIMELY (RTT as the *signal*)
in one framework lets the two design points be compared directly.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import Packet
from .dctcp import DctcpSender

__all__ = ["TimelySender"]


class TimelySender(DctcpSender):
    """Rate-based sender driven by the RTT gradient (no ECN reaction)."""

    # TIMELY parameters (paper values, with thresholds sized for a
    # ~20-50 µs-RTT 10G fabric; override after construction if needed).
    t_low = 50e-6
    t_high = 200e-6
    additive_increment = 10e6      # δ, bits/s
    beta = 0.8
    ewma_alpha = 0.3
    hai_threshold = 5              # consecutive ≤0 gradients before HAI
    hai_multiplier = 5
    min_rate = 10e6

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        line_rate = self.host.nic.link.bandwidth if self.host.nic else 10e9
        self.pacing_rate = line_rate
        self._line_rate = line_rate
        self._prev_rtt: Optional[float] = None
        self._min_rtt: Optional[float] = None
        self._rtt_diff = 0.0
        self._negative_gradients = 0
        self._last_update = -float("inf")

    # -- congestion control ------------------------------------------------

    def _take_rtt_sample(self, ack: Packet) -> Optional[float]:
        sample = super()._take_rtt_sample(ack)
        if sample is not None:
            self._timely_update(sample)
        return sample

    def _timely_update(self, rtt: float) -> None:
        if self._min_rtt is None or rtt < self._min_rtt:
            self._min_rtt = rtt
        # TIMELY samples once per completed segment (16-64 KB), not per
        # packet: per-packet gradients measure the sender's own burst
        # ramp and destroy convergence.  Decimate to one update per
        # base-RTT.
        now = self.sim.now
        if now - self._last_update < self._min_rtt:
            return
        self._last_update = now
        if self._prev_rtt is None:
            self._prev_rtt = rtt
            return
        new_diff = rtt - self._prev_rtt
        self._prev_rtt = rtt
        self._rtt_diff = ((1 - self.ewma_alpha) * self._rtt_diff
                          + self.ewma_alpha * new_diff)
        gradient = self._rtt_diff / self._min_rtt

        if rtt < self.t_low:
            self._increase(self.additive_increment)
            return
        if rtt > self.t_high:
            factor = 1.0 - self.beta * (1.0 - self.t_high / rtt)
            self._decrease(factor)
            return
        if gradient <= 0:
            self._negative_gradients += 1
            steps = (self.hai_multiplier
                     if self._negative_gradients >= self.hai_threshold
                     else 1)
            self._increase(steps * self.additive_increment)
        else:
            self._negative_gradients = 0
            self._decrease(1.0 - self.beta * min(gradient, 1.0))

    def _increase(self, delta_bps: float) -> None:
        self.pacing_rate = min(self._line_rate, self.pacing_rate + delta_bps)

    def _decrease(self, factor: float) -> None:
        self.pacing_rate = max(self.min_rate, self.pacing_rate * factor)

    # -- ECN is ignored ------------------------------------------------------

    def _account_alpha_window(self, accepted_mark: bool,
                              weight: int = 1) -> bool:
        # TIMELY does not react to marks; keep the window at its cap and
        # let the pacing rate do all the work.
        self._acks_in_window += weight
        return False
