"""Flow descriptors.

A :class:`Flow` names one sender→receiver transfer: who talks to whom, in
which service class (→ switch queue), how many bytes (None = long-lived),
and when it starts.  Flow ids are globally unique within a scenario; the
ECMP hash and the host demultiplexers key on them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from .base import packets_for_bytes

__all__ = ["Flow"]

_flow_ids = itertools.count(1)


def _next_flow_id() -> int:
    return next(_flow_ids)


@dataclass
class Flow:
    """One transfer through the fabric."""

    src: int
    dst: int
    #: Application bytes to move; None means a long-lived flow that never
    #: completes (static throughput experiments).
    size_bytes: Optional[int] = None
    #: DSCP-like service class → switch queue index.
    service: int = 0
    start_time: float = 0.0
    #: Completion deadline in seconds after ``start_time`` (None = no
    #: deadline).  Only deadline-aware transports (D2TCP) consult it.
    deadline: Optional[float] = None
    flow_id: int = field(default_factory=_next_flow_id)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("flow source and destination must differ")
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise ValueError("flow size must be positive (or None)")
        if self.start_time < 0:
            raise ValueError("start time cannot be negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    @property
    def size_packets(self) -> Optional[int]:
        """Data packets needed for the transfer (None for long-lived)."""
        if self.size_bytes is None:
            return None
        return packets_for_bytes(self.size_bytes)

    @property
    def is_long_lived(self) -> bool:
        return self.size_bytes is None
