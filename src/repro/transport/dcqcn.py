"""DCQCN — Datacenter QCN (Zhu et al., SIGCOMM 2015).

The rate-based ECN transport the paper's introduction cites for RDMA
deployments ("DCQCN … increases/decreases transmission rate according to
the occurrence/ratio of ECN-marked packets").  Unlike DCTCP there is no
window or ACK clock: the sender paces packets at a current rate ``Rc``
and reacts to *Congestion Notification Packets* (CNPs) the receiver
emits — at most one per ``cnp_interval`` — whenever CE-marked data
arrives.

Reaction point (sender) state machine, following the paper:

- on CNP:  ``Rt ← Rc``, ``Rc ← Rc·(1 − α/2)``, ``α ← (1−g)·α + g``, and
  the rate-increase state resets.
- α decays by ``α ← (1−g)·α`` every ``alpha_timer`` without CNPs.
- rate increase is driven by a timer and a byte counter; with ``i`` the
  number of completed increase epochs:
  *fast recovery* (first ``recovery_rounds`` epochs) ``Rc ← (Rt+Rc)/2``;
  *additive increase* ``Rt ← Rt + r_ai`` then halve toward it;
  *hyper increase* after ``recovery_rounds`` consecutive timer epochs:
  ``Rt ← Rt + r_hai``.

Reliability is RoCE-style go-back-N: the receiver NACKs the expected
sequence on a gap; the sender rewinds.  The receiver detects flow
completion (it knows the flow's size) and sends one final ACK so FCT can
be recorded.

The class exists to demonstrate (and test) that PMSB is
transport-agnostic: its marking decision composes with rate-based ECN
reaction exactly as with window-based DCTCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.host import Host
from ..net.packet import (ACK, ACK_BYTES, CNP, MTU_BYTES, NACK,
                          Packet, POOL, make_data, release)
from ..sim.engine import Simulator
from ..sim.timers import Timer
from .flow import Flow

__all__ = ["DcqcnConfig", "DcqcnSender", "DcqcnReceiver", "open_dcqcn_flow"]


@dataclass
class DcqcnConfig:
    """Knobs of the DCQCN reaction/notification points (paper defaults,
    scaled to the simulated 10G fabric)."""

    mss_bytes: int = MTU_BYTES
    #: Line rate the sender starts at and may never exceed (bits/s).
    line_rate_bps: float = 10e9
    #: Minimum sending rate (bits/s) — the paper's RP floor.
    min_rate_bps: float = 10e6
    #: EWMA gain for alpha.
    g: float = 1.0 / 16.0
    #: Receiver emits at most one CNP per this interval (paper: 50 µs).
    cnp_interval: float = 50e-6
    #: Alpha decays when no CNP arrived for this long (paper: 55 µs).
    alpha_timer: float = 55e-6
    #: Rate-increase timer period (paper: 55 µs fast variant).
    increase_timer: float = 55e-6
    #: Rate-increase byte counter (paper: 10 MB; scaled down so the
    #: state machine exercises within millisecond simulations).
    increase_bytes: int = 150_000
    #: Epochs of fast recovery before additive increase (paper F = 5).
    recovery_rounds: int = 5
    #: Additive increase step (bits/s).
    r_ai: float = 40e6
    #: Hyper increase step (bits/s).
    r_hai: float = 400e6


class DcqcnReceiver:
    """Notification point: delivers data, emits CNPs and NACKs."""

    __slots__ = ("sim", "host", "flow", "config", "expected_seq",
                 "packets_received", "bytes_received", "marked_packets",
                 "cnps_sent", "nacks_sent", "_last_cnp", "_gap_nacked",
                 "completed")

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 config: Optional[DcqcnConfig] = None):
        self.sim = sim
        self.host = host
        self.flow = flow
        self.config = config if config is not None else DcqcnConfig()
        self.expected_seq = 0
        self.packets_received = 0
        self.bytes_received = 0
        self.marked_packets = 0
        self.cnps_sent = 0
        self.nacks_sent = 0
        self._last_cnp = -float("inf")
        self._gap_nacked = False
        self.completed = False

    def on_data(self, packet: Packet) -> None:
        if packet.ce:
            self.marked_packets += 1
            now = self.sim.now
            if now - self._last_cnp >= self.config.cnp_interval:
                self._last_cnp = now
                self.cnps_sent += 1
                self._send_control(CNP, packet)

        if packet.seq == self.expected_seq:
            # RoCE receivers deliver strictly in order.
            self.expected_seq += 1
            self.packets_received += 1
            self.bytes_received += packet.size
            self._gap_nacked = False
            total = self.flow.size_packets
            if total is not None and self.expected_seq >= total and \
                    not self.completed:
                self.completed = True
                self._send_control(ACK, packet)
        elif packet.seq > self.expected_seq and not self._gap_nacked:
            # Out-of-order: one NACK per gap event (go-back-N).
            self._gap_nacked = True
            self.nacks_sent += 1
            self._send_control(NACK, packet)
        # seq < expected: duplicate from a rewind — silently dropped.
        # This receiver is the data packet's terminal consumer.
        release(packet)

    def _send_control(self, kind: int, trigger: Packet) -> None:
        control = POOL.acquire(kind, self.flow.flow_id, self.flow.dst,
                               self.flow.src, trigger.seq, ACK_BYTES,
                               self.flow.service, False)
        control.ack_seq = self.expected_seq
        self.host.send(control)


class DcqcnSender:
    """Reaction point: rate-paced transmission with CNP-driven control."""

    __slots__ = ("sim", "host", "flow", "config", "on_complete",
                 "rate_current", "rate_target", "alpha",
                 "next_seq", "total_packets", "started", "completed", "fct",
                 "packets_sent", "cnps_received", "nacks_received",
                 "_send_timer", "_alpha_timer", "_increase_timer",
                 "_bytes_since_increase", "_timer_epochs", "_byte_epochs",
                 "_consecutive_timer_epochs")

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 config: Optional[DcqcnConfig] = None,
                 on_complete: Optional[Callable] = None):
        self.sim = sim
        self.host = host
        self.flow = flow
        self.config = config if config is not None else DcqcnConfig()
        self.on_complete = on_complete
        self.rate_current = self.config.line_rate_bps
        self.rate_target = self.config.line_rate_bps
        self.alpha = 1.0
        self.next_seq = 0
        self.total_packets = flow.size_packets
        self.started = False
        self.completed = False
        self.fct: Optional[float] = None
        self.packets_sent = 0
        self.cnps_received = 0
        self.nacks_received = 0
        self._send_timer = Timer(sim, self._send_next)
        self._alpha_timer = Timer(sim, self._decay_alpha)
        self._increase_timer = Timer(sim, self._timer_epoch)
        self._bytes_since_increase = 0
        self._timer_epochs = 0
        self._byte_epochs = 0
        self._consecutive_timer_epochs = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self._alpha_timer.restart(self.config.alpha_timer)
        self._increase_timer.restart(self.config.increase_timer)
        self._send_next()

    def stop(self) -> None:
        self.completed = True
        self._send_timer.cancel()
        self._alpha_timer.cancel()
        self._increase_timer.cancel()

    # -- transmission ------------------------------------------------------

    def _send_next(self) -> None:
        if self.completed or not self.started:
            return
        if self.total_packets is not None and \
                self.next_seq >= self.total_packets:
            return  # all sent; waiting for the final ACK (or a NACK)
        packet = make_data(self.flow.flow_id, self.flow.src,
                           self.flow.dst, self.next_seq, self.config.mss_bytes,
                           self.flow.service, ect=True)
        packet.sent_time = self.sim.now
        self.next_seq += 1
        self.packets_sent += 1
        self._bytes_since_increase += packet.size
        self.host.send(packet)
        if self._bytes_since_increase >= self.config.increase_bytes:
            self._bytes_since_increase = 0
            self._byte_epoch()
        interval = packet.size * 8.0 / self.rate_current
        self._send_timer.restart(interval)

    # -- control-plane input -----------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        """Demux entry for all reverse-path packets (CNP/NACK/final ACK).

        Terminal consumer: recycles the control packet on return.
        """
        if self.completed:
            release(packet)
            return
        if packet.kind == CNP:
            self._on_cnp()
        elif packet.kind == NACK:
            self.nacks_received += 1
            # Go-back-N rewind to the receiver's expected sequence.
            self.next_seq = packet.ack_seq
            if not self._send_timer.armed:
                self._send_next()
        elif packet.kind == ACK:
            self.completed = True
            self.fct = self.sim.now - self.flow.start_time
            self.stop()
            if self.on_complete is not None:
                self.on_complete(self.flow, self.fct, self)
        release(packet)

    def _on_cnp(self) -> None:
        self.cnps_received += 1
        g = self.config.g
        self.alpha = (1.0 - g) * self.alpha + g
        self.rate_target = self.rate_current
        self.rate_current = max(
            self.config.min_rate_bps,
            self.rate_current * (1.0 - self.alpha / 2.0),
        )
        self._timer_epochs = 0
        self._byte_epochs = 0
        self._consecutive_timer_epochs = 0
        self._alpha_timer.restart(self.config.alpha_timer)

    # -- alpha decay and rate increase --------------------------------------

    def _decay_alpha(self) -> None:
        if self.completed:
            return
        self.alpha *= 1.0 - self.config.g
        self._alpha_timer.restart(self.config.alpha_timer)

    def _timer_epoch(self) -> None:
        if self.completed:
            return
        self._timer_epochs += 1
        self._consecutive_timer_epochs += 1
        self._increase_epoch(hyper_eligible=True)
        self._increase_timer.restart(self.config.increase_timer)

    def _byte_epoch(self) -> None:
        self._byte_epochs += 1
        self._consecutive_timer_epochs = 0
        self._increase_epoch(hyper_eligible=False)

    def _increase_epoch(self, hyper_eligible: bool) -> None:
        epochs = max(self._timer_epochs, self._byte_epochs)
        if epochs > self.config.recovery_rounds:
            if hyper_eligible and (self._consecutive_timer_epochs
                                   > self.config.recovery_rounds):
                self.rate_target += self.config.r_hai
            else:
                self.rate_target += self.config.r_ai
        self.rate_target = min(self.rate_target, self.config.line_rate_bps)
        self.rate_current = min(
            self.config.line_rate_bps,
            (self.rate_target + self.rate_current) / 2.0,
        )


def open_dcqcn_flow(network, flow: Flow,
                    config: Optional[DcqcnConfig] = None,
                    on_complete: Optional[Callable] = None):
    """Wire a DCQCN flow onto a network (the rate-based counterpart of
    :func:`~repro.transport.endpoints.open_flow`)."""
    sim = network.sim
    src_host = network.host(flow.src)
    dst_host = network.host(flow.dst)
    receiver = DcqcnReceiver(sim, dst_host, flow, config)
    sender = DcqcnSender(sim, src_host, flow, config, on_complete)
    dst_host.register_flow(flow.flow_id, data_handler=receiver.on_data)
    src_host.register_flow(flow.flow_id, ack_handler=sender.on_ack)
    if flow.start_time > sim.now:
        sim.at(flow.start_time, sender.start)
    else:
        sim.schedule(0.0, sender.start)
    return sender, receiver
