"""Transport configuration.

One :class:`DctcpConfig` object parameterizes every sender in a scenario.
Defaults follow the paper's §VI settings (DCTCP, initial window 16
packets) and the DCTCP paper's recommended gain ``g = 1/16``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.pmsb_endhost import AcceptAllFilter, EcnFilter
from ..net.packet import HEADER_BYTES, MTU_BYTES

__all__ = ["DctcpConfig", "PAYLOAD_BYTES", "packets_for_bytes"]

#: Application payload carried by one full-sized data packet.
PAYLOAD_BYTES = MTU_BYTES - HEADER_BYTES


def packets_for_bytes(size_bytes: int) -> int:
    """Number of full-sized packets needed to carry ``size_bytes``."""
    if size_bytes <= 0:
        raise ValueError("flow size must be positive")
    return max(1, math.ceil(size_bytes / PAYLOAD_BYTES))


@dataclass
class DctcpConfig:
    """Knobs of the DCTCP sender."""

    #: Wire size of a data packet (bytes).
    mss_bytes: int = MTU_BYTES
    #: Initial congestion window in packets (paper §VI: 16).
    init_cwnd: float = 16.0
    #: EWMA gain for the marked fraction (DCTCP paper: 1/16).
    g: float = 1.0 / 16.0
    #: Initial marked-fraction estimate.  Starting at 1.0 makes the first
    #: congestion reaction a full halving — the conservative convention
    #: used by production DCTCP implementations.
    init_alpha: float = 1.0
    #: Upper bound on the congestion window (packets) — the socket-buffer
    #: bound.  256 packets ≈ 384 KB, more than 10× the BDP of every
    #: scenario in the paper, so it never constrains a congested flow; it
    #: only stops an *unmarked* solo flow from building unbounded
    #: bufferbloat in its own NIC queue.
    max_cwnd: float = 256.0
    #: Initial slow-start threshold (packets).
    init_ssthresh: float = float("inf")
    #: Floor of the retransmission timeout (seconds).
    min_rto: float = 10e-3
    #: Cap of the exponential RTO backoff (seconds).
    max_rto: float = 1.0
    #: Duplicate ACKs triggering fast retransmit.
    dupack_threshold: int = 3
    #: Sender-side ECN mark filter — :class:`~repro.core.pmsb_endhost.
    #: RttEcnFilter` turns a stock DCTCP sender into PMSB(e).  The factory
    #: is called once per flow so filters can keep per-flow statistics.
    ecn_filter_factory: Callable[[], EcnFilter] = field(default=AcceptAllFilter)
    #: Application pacing rate in bits/s of wire bytes (None = unpaced).
    #: Models the paper's "start a 5 Gbps TCP flow" sources.
    rate_limit_bps: Optional[float] = None
    #: Record every RTT sample on the sender (``sender.rtt_samples``).
    #: Opt-in: large-scale runs take millions of samples.
    record_rtt: bool = False
    #: Receiver acknowledgement coalescing: 1 = per-packet ACKs
    #: ("accurate ECN echo", the default); m > 1 enables delayed ACKs
    #: with the DCTCP CE state machine.
    ack_every: int = 1
    #: Delayed-ACK timer (only relevant when ``ack_every > 1``).
    delack_timeout: float = 1e-3
    #: Packet-train width: N > 1 lets the sender emit window-limited
    #: bursts as single train units of up to N MTU segments (one event
    #: per train instead of per packet — the ``--trains`` fast tier).
    #: Switch ports transparently fall back to per-packet granularity
    #: near marking thresholds, under shared buffers, and under the
    #: auditor; retransmissions are always sent per-packet.  1 (the
    #: default) is the exact per-packet datapath.
    train_packets: int = 1

    def __post_init__(self) -> None:
        if self.mss_bytes < 64:
            raise ValueError("mss_bytes must be at least 64")
        if self.init_cwnd < 1.0:
            raise ValueError("init_cwnd must be at least 1 packet")
        if not 0.0 < self.g <= 1.0:
            raise ValueError("g must be in (0, 1]")
        if not 0.0 <= self.init_alpha <= 1.0:
            raise ValueError("init_alpha must be in [0, 1]")
        if self.max_cwnd < self.init_cwnd:
            raise ValueError("max_cwnd cannot be below init_cwnd")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        if self.dupack_threshold < 1:
            raise ValueError("dupack_threshold must be at least 1")
        if self.rate_limit_bps is not None and self.rate_limit_bps <= 0:
            raise ValueError("rate_limit_bps must be positive (or None)")
        if self.ack_every < 1:
            raise ValueError("ack_every must be at least 1")
        if self.delack_timeout <= 0:
            raise ValueError("delack_timeout must be positive")
        if self.train_packets < 1:
            raise ValueError("train_packets must be at least 1")
