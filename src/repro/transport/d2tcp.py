"""D2TCP — Deadline-aware Datacenter TCP (Vamanan et al., SIGCOMM 2012).

One of the ECN-based transports the paper's introduction cites alongside
DCTCP.  D2TCP gamma-corrects DCTCP's congestion response with *deadline
imminence*: on marking the window is cut by ``p/2`` with penalty

    p = α^d,   d = clamp(Tc / D, 0.5, 2.0)

where ``Tc`` is the time the flow still needs at its current rate
(``remaining × RTT / cwnd``) and ``D`` the time left to its deadline.
Since ``α ≤ 1``, a larger exponent gives a *smaller* penalty: a flow
that cannot afford to slow down (``Tc`` approaching ``D`` → ``d > 1``)
backs off less, while a flow with slack (``d < 1``) backs off more and
donates bandwidth.  Flows without a deadline use ``d = 1`` and behave
exactly like DCTCP.
"""

from __future__ import annotations

from .dctcp import DctcpSender

__all__ = ["D2tcpSender"]

#: The paper's clamp on the imminence exponent.
D_MIN = 0.5
D_MAX = 2.0


class D2tcpSender(DctcpSender):
    """DCTCP with deadline-aware gamma-corrected back-off."""

    def deadline_imminence(self) -> float:
        """Current exponent ``d`` (1.0 when no deadline or already late)."""
        deadline = self.flow.deadline
        if deadline is None or self.total_packets is None:
            return 1.0
        remaining_packets = self.total_packets - self.snd_una
        if remaining_packets <= 0:
            return 1.0
        time_left = (self.flow.start_time + deadline) - self.sim.now
        if time_left <= 0:
            # Already past the deadline: the flow races at maximum
            # urgency; D2TCP pins d at the cap.
            return D_MAX
        rtt = (self.srtt if self.srtt is not None and self.srtt > 0
               else self.rto)
        needed = remaining_packets * rtt / max(self.cwnd, 1.0)
        return min(D_MAX, max(D_MIN, needed / time_left))

    def _account_alpha_window(self, accepted_mark: bool,
                              weight: int = 1) -> bool:
        self._acks_in_window += weight
        if accepted_mark:
            self._marks_in_window += weight
            if not self._cut_done:
                self._cut_done = True
                penalty = self.alpha ** self.deadline_imminence()
                self.ssthresh = max(2.0, self.cwnd * (1.0 - penalty / 2.0))
                self.cwnd = self.ssthresh
                return True
        return False
