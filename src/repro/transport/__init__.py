"""End-host transport: DCTCP with ECN-filter hook (PMSB(e)) and pacing."""

from .base import DctcpConfig, PAYLOAD_BYTES, packets_for_bytes
from .classic_ecn import ClassicEcnSender
from .d2tcp import D2tcpSender
from .dcqcn import DcqcnConfig, DcqcnReceiver, DcqcnSender, open_dcqcn_flow
from .dctcp import DctcpSender
from .endpoints import FlowHandle, open_flow, open_flows
from .flow import Flow
from .receiver import DctcpReceiver
from .timely import TimelySender

__all__ = [
    "ClassicEcnSender",
    "D2tcpSender",
    "DcqcnConfig",
    "DcqcnReceiver",
    "DcqcnSender",
    "DctcpConfig",
    "DctcpReceiver",
    "DctcpSender",
    "Flow",
    "FlowHandle",
    "PAYLOAD_BYTES",
    "TimelySender",
    "open_dcqcn_flow",
    "open_flow",
    "open_flows",
    "packets_for_bytes",
]
