"""DCTCP sender.

A faithful packet-granularity DCTCP model (Alizadeh et al., SIGCOMM 2010):

- **ECN reaction**: the receiver echoes CE per packet; the sender keeps a
  running estimate ``α`` of the marked fraction, updated once per window
  of data with gain ``g`` (``α ← (1−g)·α + g·F``), and cuts the window by
  ``α/2`` at most once per window, on the first accepted mark.
- **Window growth**: standard slow start / congestion avoidance.
- **Loss recovery**: three duplicate ACKs trigger fast retransmit with a
  standard halving; a retransmission timeout falls back to go-back-N with
  exponential backoff.  Karn's rule: no RTT samples from retransmissions.
- **PMSB(e) hook**: every ECE is first shown to the flow's
  :class:`~repro.core.pmsb_endhost.EcnFilter` together with the current
  RTT; a rejected mark is invisible to the congestion machinery
  (Algorithm 2's *selective blindness at the sender*).
- **Pacing**: an optional application rate limit spaces transmissions,
  modelling the paper's "start a 5 Gbps TCP flow" sources.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.host import Host
from ..net.packet import Packet, make_data, release
from ..sim.engine import Simulator
from ..sim.timers import Timer
from .base import DctcpConfig
from .flow import Flow

__all__ = ["DctcpSender"]

#: Largest congestion window (segments) whose window-filling data unit
#: still carries PSH.  Zero disables window-fill PSH entirely (leaving
#: only the flow-final PSH below): measured on the 1:8 incast and the
#: fig3/fig8 scenarios, pushing at *any* window size collapses the ACK
#: clock of window-limited flows into one-burst-per-RTT and starves
#: them against denser queues under DWRR's work conservation, while the
#: microsecond-scale delack timer already bounds the coalescing stall a
#: window-filling unit can suffer.  Kept as a constant because the
#: regimes provably conflict — no value satisfies both scenarios.
_PUSH_CWND_LIMIT = 0

#: Callback invoked when a finite flow completes: (flow, fct_seconds, sender).
CompletionCallback = Callable[[Flow, float, "DctcpSender"], None]


class DctcpSender:
    """Sender side of one flow."""

    __slots__ = (
        "sim", "host", "flow", "config", "on_complete",
        # connection state
        "started", "completed", "fct",
        # window state
        "cwnd", "ssthresh", "next_seq", "snd_una", "total_packets",
        # DCTCP alpha state
        "alpha", "_window_end", "_acks_in_window", "_marks_in_window",
        "_cut_done",
        # recovery state
        "dup_acks", "in_recovery", "_recover_seq",
        # RTT / RTO state
        "srtt", "rttvar", "rto", "last_rtt", "_rto_timer",
        # pacing
        "pacing_rate", "_next_send_time", "_pace_timer",
        # filter + counters
        "ecn_filter", "packets_sent", "retransmissions", "fast_retransmits",
        "timeouts", "acks_received", "marks_accepted", "marks_filtered",
        "nic_drops", "rtt_samples",
    )

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: Flow,
        config: Optional[DctcpConfig] = None,
        on_complete: Optional[CompletionCallback] = None,
    ):
        self.sim = sim
        self.host = host
        self.flow = flow
        self.config = config if config is not None else DctcpConfig()
        self.on_complete = on_complete

        self.started = False
        self.completed = False
        self.fct: Optional[float] = None

        self.cwnd = float(self.config.init_cwnd)
        self.ssthresh = float(self.config.init_ssthresh)
        self.next_seq = 0
        self.snd_una = 0
        self.total_packets = flow.size_packets

        self.alpha = float(self.config.init_alpha)
        self._window_end = 0
        self._acks_in_window = 0
        self._marks_in_window = 0
        self._cut_done = False

        self.dup_acks = 0
        self.in_recovery = False
        self._recover_seq = 0

        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = self.config.min_rto
        self.last_rtt: Optional[float] = None
        self._rto_timer = Timer(sim, self._on_rto)

        #: Current pacing rate in bits/s (None = unpaced).  Seeded from
        #: the config; rate-controlled variants (TIMELY) adjust it live.
        self.pacing_rate: Optional[float] = self.config.rate_limit_bps
        self._next_send_time = 0.0
        self._pace_timer = Timer(sim, self._try_send)

        self.ecn_filter = self.config.ecn_filter_factory()
        self.packets_sent = 0
        self.retransmissions = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.acks_received = 0
        self.marks_accepted = 0
        self.marks_filtered = 0
        self.nic_drops = 0
        self.rtt_samples: Optional[list] = [] if self.config.record_rtt else None

    # -- public API --------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (scheduled at ``flow.start_time``)."""
        if self.started:
            return
        self.started = True
        self._try_send()
        # The first alpha window is the initial burst.
        self._window_end = self.next_seq

    @property
    def in_flight(self) -> int:
        """Unacknowledged packets currently outstanding."""
        return self.next_seq - self.snd_una

    @property
    def bytes_acked(self) -> int:
        return self.snd_una * self.config.mss_bytes

    def stop(self) -> None:
        """Abort the flow (long-lived flows at scenario teardown)."""
        self.completed = True
        self._rto_timer.cancel()
        self._pace_timer.cancel()

    # -- ACK processing ----------------------------------------------------

    def on_ack(self, ack: Packet) -> None:
        """Host demux entry point for this flow's ACKs.

        The sender is the ACK's terminal consumer: the packet is recycled
        through the pool when processing finishes (observers that keep
        references pin their packets, which makes the release a no-op).
        """
        if self.completed:
            release(ack)
            return
        self.acks_received += 1
        rtt_sample = self._take_rtt_sample(ack)
        accepted_mark = self._filter_mark(ack, rtt_sample)
        # ACKs echo the width of the data unit they answer (1 for plain
        # packets), so the alpha estimate stays segment-weighted under
        # packet trains.
        cut_applied = self._account_alpha_window(accepted_mark, ack.train)

        if ack.ack_seq > self.snd_una:
            self._on_new_ack(ack.ack_seq, grow=not cut_applied)
        else:
            self._on_duplicate_ack()
        release(ack)

    def _take_rtt_sample(self, ack: Packet) -> Optional[float]:
        if ack.retransmit or ack.echo_time is None:
            return None
        sample = self.sim.now - ack.echo_time
        self.last_rtt = sample
        if self.rtt_samples is not None:
            self.rtt_samples.append(sample)
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(
            max(self.srtt + 4.0 * self.rttvar, self.config.min_rto),
            self.config.max_rto,
        )
        return sample

    def _filter_mark(self, ack: Packet, rtt_sample: Optional[float]) -> bool:
        if not ack.ece:
            return False
        if rtt_sample is not None:
            current_rtt = rtt_sample
        elif self.last_rtt is not None:
            current_rtt = self.last_rtt
        else:
            # No measurement yet: fail open (treat the mark as genuine).
            current_rtt = float("inf")
        if self.ecn_filter.accept_mark(current_rtt):
            self.marks_accepted += 1
            return True
        self.marks_filtered += 1
        return False

    def _account_alpha_window(self, accepted_mark: bool,
                              weight: int = 1) -> bool:
        """Account one ACK; returns True when a window cut was applied."""
        self._acks_in_window += weight
        if accepted_mark:
            self._marks_in_window += weight
            if not self._cut_done:
                # React once per window, immediately on the first mark.
                self._cut_done = True
                self.ssthresh = max(2.0, self.cwnd * (1.0 - self.alpha / 2.0))
                self.cwnd = self.ssthresh
                return True
        return False

    def _maybe_roll_alpha_window(self) -> None:
        if self.snd_una < self._window_end or self._acks_in_window == 0:
            return
        fraction = self._marks_in_window / self._acks_in_window
        g = self.config.g
        self.alpha = (1.0 - g) * self.alpha + g * fraction
        self._acks_in_window = 0
        self._marks_in_window = 0
        self._cut_done = False
        self._window_end = self.next_seq

    def _on_new_ack(self, ack_seq: int, grow: bool) -> None:
        newly_acked = ack_seq - self.snd_una
        self.snd_una = ack_seq
        if self.next_seq < self.snd_una:
            # An RTO rewound next_seq to the old snd_una while ACKs for the
            # original (pre-rewind) transmissions were still in flight; this
            # late ACK just acknowledged past the rewind point.  The acked
            # data was genuinely sent, so resume transmission at the
            # cumulative point — never below it (snd_una <= next_seq must
            # hold, or in_flight goes negative and already-acked sequence
            # numbers get resent).
            self.next_seq = self.snd_una
        self.dup_acks = 0
        if self.in_recovery and self.snd_una >= self._recover_seq:
            self.in_recovery = False
        self._maybe_roll_alpha_window()
        # No additive increase on the ACK that carried the congestion cut
        # (CWR semantics) nor while recovering from loss.
        if grow and not self.in_recovery:
            self._grow_window(newly_acked)
        if self.total_packets is not None and self.snd_una >= self.total_packets:
            self._complete()
            return
        if self.in_flight > 0:
            self._rto_timer.restart(self.rto)
        else:
            self._rto_timer.cancel()
        self._try_send()

    def _grow_window(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, self.config.max_cwnd)
        else:
            self.cwnd = min(
                self.cwnd + newly_acked / self.cwnd, self.config.max_cwnd
            )

    def _on_duplicate_ack(self) -> None:
        self.dup_acks += 1
        if self.dup_acks == self.config.dupack_threshold and not self.in_recovery:
            self.fast_retransmits += 1
            self.in_recovery = True
            self._recover_seq = self.next_seq
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = self.ssthresh
            self._transmit(self.snd_una, retransmit=True)
            self._rto_timer.restart(self.rto)

    # -- timeout -----------------------------------------------------------

    def _on_rto(self) -> None:
        if self.completed or self.in_flight == 0:
            return
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.count("timer")
        self.timeouts += 1
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_recovery = False
        # Go-back-N: rewind to the first unacknowledged packet.
        self.next_seq = self.snd_una
        self._window_end = self.snd_una
        self._acks_in_window = 0
        self._marks_in_window = 0
        self._cut_done = False
        self.rto = min(self.rto * 2.0, self.config.max_rto)
        self._try_send()

    # -- transmission ------------------------------------------------------

    def _window_allows(self) -> bool:
        return self.in_flight < max(1, int(self.cwnd))

    def _has_data(self) -> bool:
        return self.total_packets is None or self.next_seq < self.total_packets

    def _try_send(self) -> None:
        if self.completed or not self.started:
            return
        rate = self.pacing_rate
        train = self.config.train_packets
        while self._window_allows() and self._has_data():
            if rate is not None:
                now = self.sim.now
                if now < self._next_send_time:
                    profiler = self.sim.profiler
                    if profiler is not None:
                        profiler.count("pacing")
                    self._pace_timer.restart(self._next_send_time - now)
                    return
            is_retransmit = self.next_seq < self.snd_una  # guarded in _on_new_ack
            count = 1
            if train > 1 and not is_retransmit:
                # Coalesce new data into one train unit, bounded by the
                # window headroom and the flow's remaining data.
                # Retransmissions always go per-packet: the receiver's
                # gap state is per-segment.
                count = max(1, int(self.cwnd)) - self.in_flight
                if count > train:
                    count = train
                if self.total_packets is not None:
                    remaining = self.total_packets - self.next_seq
                    if count > remaining:
                        count = remaining
                if count < 1:
                    count = 1
            self._transmit(self.next_seq, retransmit=is_retransmit,
                           count=count)
            self.next_seq += count
        if self.in_flight > 0 and not self._rto_timer.armed:
            self._rto_timer.restart(self.rto)

    def _transmit(self, seq: int, retransmit: bool, count: int = 1) -> None:
        cfg = self.config
        packet = make_data(
            self.flow.flow_id, self.flow.src, self.flow.dst,
            seq, cfg.mss_bytes * count, self.flow.service, ect=True,
        )
        if count > 1:
            packet.train = count
        window = max(1, int(self.cwnd))
        if ((self.in_flight + count >= window
             and window <= _PUSH_CWND_LIMIT)
                or (self.total_packets is not None
                    and seq + count >= self.total_packets)):
            # PSH semantics: this unit fills a *small* congestion window
            # (or ends the flow), so nothing more is coming until it is
            # acknowledged — a delayed-ACK receiver must answer now
            # rather than sit on the delack timer for a whole window.
            # Large windows keep several units outstanding, so the
            # receiver's coalescing cadence self-clocks without PSH;
            # pushing every window there would collapse the ACK clock
            # to one burst per RTT.
            packet.push = True
        packet.sent_time = self.sim.now
        packet.retransmit = retransmit
        self.packets_sent += count
        if retransmit:
            self.retransmissions += 1
        if not self.host.send(packet):
            # The NIC queue overflowed; the loss is recovered like any
            # other (dup ACKs or RTO).
            self.nic_drops += 1
        if self.pacing_rate is not None:
            interval = cfg.mss_bytes * count * 8.0 / self.pacing_rate
            self._next_send_time = max(self._next_send_time, self.sim.now) + interval
        if not self._rto_timer.armed:
            self._rto_timer.restart(self.rto)

    # -- completion --------------------------------------------------------

    def _complete(self) -> None:
        self.completed = True
        self.fct = self.sim.now - self.flow.start_time
        self._rto_timer.cancel()
        self._pace_timer.cancel()
        if self.on_complete is not None:
            self.on_complete(self.flow, self.fct, self)
