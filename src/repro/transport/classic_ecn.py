"""Classic ECN TCP (RFC 3168 semantics) — a non-DCTCP baseline.

A standard TCP responds to an echoed congestion mark exactly as to a
loss: halve the window, at most once per round trip.  Unlike DCTCP's
proportional ``α/2`` cut, classic ECN over-reacts to light marking —
which is why datacenters moved to DCTCP (paper §II background, [1]).

The class reuses the whole DCTCP machinery (windowing, recovery, pacing,
the PMSB(e) filter hook) and only replaces the congestion response; the
α estimator still runs but never influences the cut.
"""

from __future__ import annotations

from .dctcp import DctcpSender

__all__ = ["ClassicEcnSender"]


class ClassicEcnSender(DctcpSender):
    """TCP with RFC 3168 ECN response: halve once per window on a mark."""

    def _account_alpha_window(self, accepted_mark: bool,
                              weight: int = 1) -> bool:
        self._acks_in_window += weight
        if accepted_mark:
            self._marks_in_window += weight
            if not self._cut_done:
                self._cut_done = True
                self.ssthresh = max(2.0, self.cwnd / 2.0)
                self.cwnd = self.ssthresh
                return True
        return False
