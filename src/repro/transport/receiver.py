"""DCTCP receiver endpoint.

Two acknowledgement modes:

- **per-packet ACKs** (``ack_every=1``, the default): every data packet
  is acknowledged and echoes its own CE codepoint — "accurate ECN echo".
  The sender's marked fraction ``F`` is exact.
- **delayed ACKs with the DCTCP CE state machine** (``ack_every=m>1``):
  one cumulative ACK per ``m`` packets, *except* that a change in the
  arriving CE codepoint immediately flushes a pending ACK carrying the
  old state (the two-state machine of the DCTCP paper §3.2).  This keeps
  the sender's marked-byte accounting accurate despite coalescing.  A
  delayed-ACK timer bounds how long the last packets of a burst can sit
  unacknowledged.

Out-of-order data always triggers an immediate duplicate ACK so fast
retransmit works regardless of mode.

The receiver is the terminal consumer of every data packet dispatched to
it: ``on_data`` recycles the packet through the packet pool when it
returns.  Coalesced-ACK state therefore keeps only a scalar metadata
tuple of the last data packet (never the object itself), so a delayed
ACK can be built long after the packet was recycled.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..net.host import Host
from ..net.packet import Packet, make_reply_ack, release
from ..sim.engine import Simulator
from ..sim.timers import Timer
from .flow import Flow

__all__ = ["DctcpReceiver"]

#: Scalar fields of the data packet a coalesced ACK answers:
#: (flow_id, ack_src, ack_dst, seq, service, echo_time, retransmit, train).
AckMeta = Tuple[int, int, int, int, int, Optional[float], bool, int]


class DctcpReceiver:
    """Receiver side of one flow."""

    __slots__ = (
        "sim",
        "host",
        "flow",
        "ack_every",
        "expected_seq",
        "_out_of_order",
        "_pending_acks",
        "_ce_state",
        "_last_meta",
        "_delack_timer",
        "delack_timeout",
        "packets_received",
        "bytes_received",
        "marked_packets",
        "duplicate_packets",
        "acks_sent",
        "first_arrival",
        "last_arrival",
    )

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 ack_every: int = 1, delack_timeout: float = 1e-3):
        if ack_every < 1:
            raise ValueError("ack_every must be at least 1")
        self.sim = sim
        self.host = host
        self.flow = flow
        self.ack_every = ack_every
        self.expected_seq = 0
        self._out_of_order: Set[int] = set()
        self._pending_acks = 0
        self._ce_state = False
        self._last_meta: Optional[AckMeta] = None
        self._delack_timer = Timer(sim, self._on_delack_timeout)
        #: Seconds a coalesced ACK may be delayed before the timer fires.
        self.delack_timeout = delack_timeout
        self.packets_received = 0
        self.bytes_received = 0
        self.marked_packets = 0
        self.duplicate_packets = 0
        self.acks_sent = 0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None

    @staticmethod
    def _meta(packet: Packet) -> AckMeta:
        # Matches make_ack: the ACK's src is the data packet's dst.
        return (packet.flow_id, packet.dst, packet.src, packet.seq,
                packet.service, packet.sent_time, packet.retransmit,
                packet.train)

    def on_data(self, packet: Packet) -> None:
        """Host demux entry point for this flow's data packets."""
        now = self.sim.now
        if self.first_arrival is None:
            self.first_arrival = now
        self.last_arrival = now
        if packet.ce:
            self.marked_packets += 1

        if (self.ack_every > 1 and self._pending_acks > 0
                and packet.ce != self._ce_state):
            # CE transition: flush the coalesced ACK *before* this packet
            # advances the cumulative point, carrying the old CE state —
            # the marked-byte accounting partitions exactly.  The flush
            # uses the *previous* packet's metadata.
            self._flush_pending(ece=self._ce_state)

        seq = packet.seq
        train = packet.train
        in_order = seq == self.expected_seq
        if in_order:
            # A train covers seqs [seq, seq + train): the cumulative
            # point jumps over the whole unit.
            self.expected_seq += train
            while self.expected_seq in self._out_of_order:
                self._out_of_order.remove(self.expected_seq)
                self.expected_seq += 1
            self.packets_received += train
            self.bytes_received += packet.size
        elif seq > self.expected_seq:
            if seq not in self._out_of_order:
                for i in range(train):
                    self._out_of_order.add(seq + i)
                self.packets_received += train
                self.bytes_received += packet.size
            else:
                self.duplicate_packets += 1
        else:
            # Below the cumulative ACK point: a spurious retransmission.
            self.duplicate_packets += 1

        self._last_meta = self._meta(packet)
        if self.ack_every == 1 or not in_order or self._out_of_order:
            # Accurate-echo mode, or a gap: acknowledge immediately.
            self._flush_pending(ece=packet.ce)
            release(packet)
            return

        # Delayed-ACK mode with the DCTCP CE state machine (any pending
        # CE transition was flushed above, before the cumulative point
        # moved).  Pending is counted in *data units* (packets or whole
        # trains), not segments: a window-limited sender may have its
        # entire window inside one wide unit, and a segment count would
        # then never reach the flush mark — the classic delayed-ACK
        # stall, paid at every window on the delack timer.
        self._ce_state = packet.ce
        self._pending_acks += 1
        if self._pending_acks >= self.ack_every or packet.push:
            self._flush_pending(ece=packet.ce)
        else:
            self._delack_timer.restart(self.delack_timeout)
        release(packet)

    def _flush_pending(self, ece: bool) -> None:
        self._pending_acks = 0
        self._delack_timer.cancel()
        self.acks_sent += 1
        (flow_id, src, dst, seq, service, echo_time, retransmit,
         train) = self._last_meta
        ack = make_reply_ack(
            flow_id, src, dst, seq, service, echo_time, retransmit,
            self.expected_seq, ece)
        # Echo the width of the acknowledged data unit so the sender can
        # weight its alpha accounting by segments, not ACK events.
        ack.train = train
        self.host.send(ack)

    def _on_delack_timeout(self) -> None:
        if self._pending_acks > 0 and self._last_meta is not None:
            self._flush_pending(ece=self._ce_state)
