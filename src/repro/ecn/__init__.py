"""ECN marking schemes: commodity baselines (per-queue, per-port, pool)
and research baselines (MQ-ECN, TCN).  The paper's contribution, PMSB,
lives in :mod:`repro.core`."""

from .base import Marker, MarkPoint, NullMarker
from .mq_ecn import MqEcnMarker
from .per_port import PerPortMarker
from .per_queue import PerQueueMarker, fractional_thresholds, standard_thresholds
from .phantom import PhantomQueueMarker
from .red import RedMarker
from .service_pool import BufferPool, DynamicThresholdPool, ServicePoolMarker
from .tcn import TcnMarker

__all__ = [
    "BufferPool",
    "DynamicThresholdPool",
    "MarkPoint",
    "Marker",
    "MqEcnMarker",
    "NullMarker",
    "PerPortMarker",
    "PerQueueMarker",
    "PhantomQueueMarker",
    "RedMarker",
    "ServicePoolMarker",
    "TcnMarker",
    "fractional_thresholds",
    "standard_thresholds",
]
