"""Per-service-pool ECN marking.

Commodity chips can also mark against a *shared buffer pool* spanning
several ports.  The paper argues (end of §II-B) this violates weighted
fair sharing even across ports, for the same reason per-port marking does
within a port.  We model the pool as an explicit accounting object that
member ports debit/credit, with an optional admission capacity.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..net.packet import Packet
from .base import Marker, MarkPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["BufferPool", "DynamicThresholdPool", "ServicePoolMarker"]


class BufferPool:
    """Shared buffer accounting across the ports that reference it.

    Admission is a simple global cap: a packet is admitted while the pool
    holds fewer than ``capacity_packets``.  See
    :class:`DynamicThresholdPool` for the Choudhury–Hahne policy real
    shared-memory switches use.
    """

    __slots__ = ("name", "capacity_packets", "packet_count", "byte_count", "rejections")

    def __init__(self, capacity_packets: Optional[int] = None, name: str = "pool"):
        self.name = name
        self.capacity_packets = capacity_packets
        self.packet_count = 0
        self.byte_count = 0
        #: Failed admissions, charged by the port at the drop site
        #: (:meth:`admits` itself is pure).
        self.rejections = 0

    @property
    def is_full(self) -> bool:
        if self.capacity_packets is None:
            return False
        return self.packet_count >= self.capacity_packets

    def admits(self, port_occupancy: int) -> bool:
        """May a port currently holding ``port_occupancy`` packets admit
        one more?

        A **pure** query: any caller (metrics probe, the invariant
        auditor, a what-if policy evaluation) may call it speculatively
        without perturbing statistics.  The drop site —
        :meth:`repro.net.port.Port.enqueue` — charges ``rejections``
        when an actual admission fails.
        """
        return not self.is_full

    def add(self, nbytes: int) -> None:
        self.packet_count += 1
        self.byte_count += nbytes

    def remove(self, nbytes: int) -> None:
        self.credit(1, nbytes)

    def credit(self, packets: int, nbytes: int) -> None:
        """Return ``packets``/``nbytes`` to the pool in one step.

        The per-packet transmission path lands here via :meth:`remove`;
        bulk callers (:meth:`repro.net.port.Port.reset` returning a whole
        buffer at once) call it directly.  Routing every credit through
        one method keeps the negative-accounting guard — and any policy
        subclass bookkeeping — impossible to bypass.
        """
        self.packet_count -= packets
        self.byte_count -= nbytes
        if self.packet_count < 0 or self.byte_count < 0:
            raise RuntimeError(f"{self.name}: pool accounting went negative "
                               f"({self.packet_count}pkts/{self.byte_count}B)")


class DynamicThresholdPool(BufferPool):
    """Choudhury–Hahne dynamic-threshold buffer sharing.

    A port may grow its occupancy only up to ``alpha × free``, where
    ``free`` is the unused pool space.  A single congested port therefore
    self-limits to ``alpha/(1+alpha)`` of the buffer, always leaving
    headroom that lets other ports absorb micro-bursts — the behaviour
    the paper's micro-burst references ([13], [14]) build on.
    """

    __slots__ = ("alpha",)

    def __init__(self, capacity_packets: int, alpha: float = 1.0,
                 name: str = "dt-pool"):
        if capacity_packets is None or capacity_packets < 1:
            raise ValueError("dynamic threshold needs a finite capacity")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        super().__init__(capacity_packets, name)
        self.alpha = alpha

    def threshold(self) -> float:
        """The instantaneous per-port occupancy limit ``alpha × free``."""
        free = self.capacity_packets - self.packet_count
        return self.alpha * max(0, free)

    def admits(self, port_occupancy: int) -> bool:
        return not self.is_full and port_occupancy < self.threshold()


class ServicePoolMarker(Marker):
    """Mark when the shared pool's total occupancy reaches the threshold."""

    _THRESHOLD_FIELDS = ("threshold_packets",)

    def __init__(
        self,
        pool: BufferPool,
        threshold_packets: float,
        mark_point: MarkPoint = MarkPoint.ENQUEUE,
    ):
        super().__init__(mark_point)
        if threshold_packets < 0:
            raise ValueError("threshold cannot be negative")
        self.pool = pool
        self.threshold_packets = float(threshold_packets)

    def _validate_thresholds(self, merged) -> None:
        if merged["threshold_packets"] < 0:
            raise ValueError("threshold cannot be negative")

    def _apply_thresholds(self, changes) -> None:
        self.threshold_packets = float(changes["threshold_packets"])

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        return self.pool.packet_count >= self.threshold_packets
