"""ECN marker interface.

A :class:`Marker` is attached to one switch output port.  The port invokes
:meth:`Marker.on_enqueue` right after a packet is admitted (occupancy
counters already include it) and :meth:`Marker.on_dequeue` right before a
packet starts transmission (occupancy counters still include it).  The
marker sets the CE codepoint on ECN-capable packets when its scheme's
condition holds at its configured :class:`MarkPoint`.

The *mark point* matters: marking at dequeue delivers congestion
information one queueing delay earlier than marking at enqueue (paper
§II-C, Figs. 4/5 and 11/12).  Schemes whose signal is only observable at
dequeue (TCN's sojourn time) cannot use the enqueue point at all — their
``supported_points`` declares that.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, FrozenSet, Optional

from ..net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["MarkPoint", "Marker", "NullMarker"]


class MarkPoint(enum.Enum):
    """Where in the port pipeline the CE decision is evaluated."""

    ENQUEUE = "enqueue"
    DEQUEUE = "dequeue"


class Marker:
    """Base class: evaluates :meth:`decide` at the configured mark point."""

    #: Mark points the scheme can support (subclasses narrow this).
    supported_points: FrozenSet[MarkPoint] = frozenset(
        {MarkPoint.ENQUEUE, MarkPoint.DEQUEUE}
    )

    def __init__(self, mark_point: MarkPoint = MarkPoint.ENQUEUE):
        if mark_point not in self.supported_points:
            raise ValueError(
                f"{type(self).__name__} does not support marking at {mark_point.value}"
            )
        self.mark_point = mark_point
        self.packets_marked = 0
        self.packets_seen = 0
        self._attached_port: Optional["Port"] = None

    def attach(self, port: "Port") -> None:
        """Called once when the owning port is constructed.

        A marker instance belongs to exactly one port: its state (link
        capacity, round observers, phantom queues) is per-port, so
        re-attaching to a second port would silently corrupt the first
        port's marking.  Re-attaching raises :class:`ValueError`; shared
        state across ports goes through an explicit object instead (see
        :class:`~repro.ecn.service_pool.BufferPool`).

        Schemes that need port context (link capacity, scheduler round
        notifications) extend this — always calling ``super().attach``.
        """
        if self._attached_port is not None and self._attached_port is not port:
            raise ValueError(
                f"{type(self).__name__} is already attached to "
                f"{self._attached_port.name!r}; markers are per-port — "
                "construct one instance per port"
            )
        self._attached_port = port

    def on_reset(self, port: "Port") -> None:
        """Called by :meth:`repro.net.port.Port.reset`.

        Stateful schemes (MQ-ECN round estimates, phantom queues, RED
        averages, PMSB occupancy EWMAs) override this to discard their
        per-port dynamic state so a reused port behaves like a freshly
        built one; cumulative statistics (``packets_marked``,
        ``packets_seen``) are preserved, mirroring the port's own
        counters.  The base implementation is a no-op — stateless
        markers need nothing.
        """

    @property
    def mark_fraction(self) -> float:
        """Fraction of ECN-capable packets this marker has marked."""
        if self.packets_seen == 0:
            return 0.0
        return self.packets_marked / self.packets_seen

    def on_enqueue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        """Port hook: packet admitted, counters include it."""
        if self.mark_point is MarkPoint.ENQUEUE:
            self._evaluate(port, queue_index, packet)

    def on_dequeue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        """Port hook: packet leaving, counters still include it."""
        if self.mark_point is MarkPoint.DEQUEUE:
            self._evaluate(port, queue_index, packet)

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        """Return True when the scheme says this packet should carry CE."""
        raise NotImplementedError

    def _evaluate(self, port: "Port", queue_index: int, packet: Packet) -> None:
        if not packet.ect:
            return
        self.packets_seen += 1
        if self.decide(port, queue_index, packet):
            packet.ce = True
            self.packets_marked += 1


class NullMarker(Marker):
    """Never marks — drop-tail behaviour (host NICs, non-ECN baselines).

    The port hooks are overridden as true no-ops: host NIC ports sit on
    the datapath's hottest path and a marker that never marks has no
    reason to pay the evaluate/decide dispatch per packet.  As a
    consequence ``packets_seen`` stays 0 (``mark_fraction`` is 0.0 either
    way).
    """

    def on_enqueue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        return

    def on_dequeue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        return

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        return False
