"""ECN marker interface.

A :class:`Marker` is attached to one switch output port.  The port invokes
:meth:`Marker.on_enqueue` right after a packet is admitted (occupancy
counters already include it) and :meth:`Marker.on_dequeue` right before a
packet starts transmission (occupancy counters still include it).  The
marker sets the CE codepoint on ECN-capable packets when its scheme's
condition holds at its configured :class:`MarkPoint`.

The *mark point* matters: marking at dequeue delivers congestion
information one queueing delay earlier than marking at enqueue (paper
§II-C, Figs. 4/5 and 11/12).  Schemes whose signal is only observable at
dequeue (TCN's sojourn time) cannot use the enqueue point at all — their
``supported_points`` declares that.

Runtime-tunable thresholds
--------------------------

Every scheme's tunable parameters are first-class runtime state,
exposed uniformly through :meth:`Marker.thresholds` /
:meth:`Marker.set_thresholds`.  ``set_thresholds`` *stages* validated
changes; they take effect at the next packet boundary (the next
``on_enqueue``/``on_dequeue`` hook), never between one packet's enqueue
decision and its dequeue decision.  Each committed batch bumps
``threshold_epoch``, which is how the fabric auditor distinguishes a
legal boundary commit from a raw mid-packet attribute mutation (the
``marker-threshold-boundary`` rule).  ``Port.reset`` restores the
spec'd construction-time baseline through :meth:`Marker.on_reset`, so
controller-tuned ports re-enter a sweep iteration exactly as built.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Optional, Tuple

from ..net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["MarkPoint", "Marker", "NullMarker"]


class MarkPoint(enum.Enum):
    """Where in the port pipeline the CE decision is evaluated."""

    ENQUEUE = "enqueue"
    DEQUEUE = "dequeue"


class Marker:
    """Base class: evaluates :meth:`decide` at the configured mark point."""

    #: Mark points the scheme can support (subclasses narrow this).
    supported_points: FrozenSet[MarkPoint] = frozenset(
        {MarkPoint.ENQUEUE, MarkPoint.DEQUEUE}
    )

    #: Attribute names of the scheme's runtime-tunable threshold
    #: parameters (subclasses declare; schemes with derived threshold
    #: state override :meth:`thresholds` / :meth:`_apply_thresholds`).
    _THRESHOLD_FIELDS: Tuple[str, ...] = ()

    def __init__(self, mark_point: MarkPoint = MarkPoint.ENQUEUE):
        if mark_point not in self.supported_points:
            raise ValueError(
                f"{type(self).__name__} does not support marking at {mark_point.value}"
            )
        self.mark_point = mark_point
        self.packets_marked = 0
        self.packets_seen = 0
        self._attached_port: Optional["Port"] = None
        #: Bumped once per committed ``set_thresholds`` batch (and per
        #: reset restore).  The fabric auditor keys its boundary rule on
        #: it: values that changed at an unchanged epoch were mutated
        #: behind the staging surface.
        self.threshold_epoch = 0
        self._pending_thresholds: Optional[Dict[str, Any]] = None
        #: Construction-time threshold values, captured at attach;
        #: ``Port.reset`` restores them.
        self._baseline_thresholds: Dict[str, Any] = {}

    def attach(self, port: "Port") -> None:
        """Called once when the owning port is constructed.

        A marker instance belongs to exactly one port: its state (link
        capacity, round observers, phantom queues) is per-port, so
        re-attaching to a second port would silently corrupt the first
        port's marking.  Re-attaching raises :class:`ValueError`; shared
        state across ports goes through an explicit object instead (see
        :class:`~repro.ecn.service_pool.BufferPool`).

        Schemes that need port context (link capacity, scheduler round
        notifications) extend this — always calling ``super().attach``.
        """
        if self._attached_port is not None and self._attached_port is not port:
            raise ValueError(
                f"{type(self).__name__} is already attached to "
                f"{self._attached_port.name!r}; markers are per-port — "
                "construct one instance per port"
            )
        self._attached_port = port
        self._baseline_thresholds = self.thresholds()

    # -- runtime-tunable thresholds ---------------------------------------

    def thresholds(self) -> Dict[str, Any]:
        """Current values of the scheme's tunable threshold parameters.

        A fresh plain dict (safe to snapshot); keys are stable per
        scheme and documented in ``docs/API.md``.
        """
        return {name: getattr(self, name) for name in self._THRESHOLD_FIELDS}

    def set_thresholds(self, **changes: Any) -> None:
        """Stage new threshold values, applied at the next packet boundary.

        Validates eagerly (unknown keys and scheme-specific range checks
        raise :class:`ValueError` immediately, at the controller's call
        site) but *applies lazily*: the staged batch is committed by the
        next ``on_enqueue``/``on_dequeue`` hook, before that packet's
        decision, so a decision never sees a threshold change mid-packet.
        Successive calls between two packets merge into one commit.
        """
        if not changes:
            return
        current = self.thresholds()
        unknown = [key for key in changes if key not in current]
        if unknown:
            raise ValueError(
                f"{type(self).__name__} has no tunable threshold(s) "
                f"{sorted(unknown)!r}; it exposes {sorted(current)!r}")
        merged = dict(current)
        if self._pending_thresholds:
            merged.update(self._pending_thresholds)
        merged.update(changes)
        self._validate_thresholds(merged)
        pending = self._pending_thresholds
        if pending is None:
            pending = {}
            self._pending_thresholds = pending
        pending.update(changes)

    def _validate_thresholds(self, merged: Dict[str, Any]) -> None:
        """Scheme-specific range checks over the *merged* full view.

        Subclasses override with the same constraints their constructor
        enforces; the base accepts anything.
        """

    def _apply_thresholds(self, changes: Dict[str, Any]) -> None:
        """Install already-validated values (derived state refresh hook)."""
        for name, value in changes.items():
            setattr(self, name, value)

    def _commit_thresholds(self) -> None:
        changes = self._pending_thresholds
        self._pending_thresholds = None
        self._apply_thresholds(changes)  # type: ignore[arg-type]
        self.threshold_epoch += 1

    def on_reset(self, port: "Port") -> None:
        """Called by :meth:`repro.net.port.Port.reset`.

        Stateful schemes (MQ-ECN round estimates, phantom queues, RED
        averages, PMSB occupancy EWMAs) override this — always calling
        ``super().on_reset`` — to discard their per-port dynamic state
        so a reused port behaves like a freshly built one; cumulative
        statistics (``packets_marked``, ``packets_seen``) are preserved,
        mirroring the port's own counters.  The base implementation
        restores controller-set thresholds to the construction-time
        baseline (discarding any staged batch) and bumps the epoch so
        the restore registers as a legal boundary change.
        """
        self._pending_thresholds = None
        if self._baseline_thresholds:
            self._apply_thresholds(dict(self._baseline_thresholds))
            self.threshold_epoch += 1

    @property
    def mark_fraction(self) -> float:
        """Fraction of ECN-capable packets this marker has marked."""
        if self.packets_seen == 0:
            return 0.0
        return self.packets_marked / self.packets_seen

    def on_enqueue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        """Port hook: packet admitted, counters include it."""
        if self._pending_thresholds is not None:
            self._commit_thresholds()
        if self.mark_point is MarkPoint.ENQUEUE:
            self._evaluate(port, queue_index, packet)

    def on_dequeue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        """Port hook: packet leaving, counters still include it."""
        if self._pending_thresholds is not None:
            self._commit_thresholds()
        if self.mark_point is MarkPoint.DEQUEUE:
            self._evaluate(port, queue_index, packet)

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        """Return True when the scheme says this packet should carry CE."""
        raise NotImplementedError

    def _evaluate(self, port: "Port", queue_index: int, packet: Packet) -> None:
        if not packet.ect:
            return
        self.packets_seen += 1
        if self.decide(port, queue_index, packet):
            packet.ce = True
            self.packets_marked += 1

    # -- packet trains -----------------------------------------------------

    def train_split(self, port: "Port", queue_index: int, packet: Packet,
                    base_port: int, base_queue: int) -> Optional[int]:
        """Closed-form marking for a whole packet train at enqueue.

        Called by :meth:`repro.net.port.Port.enqueue` *instead of*
        :meth:`on_enqueue` when ``packet.train > 1``.  ``base_port`` /
        ``base_queue`` are the port / queue occupancies (packets)
        *before* the train — in per-packet mode a sender's burst
        enqueues back-to-back inside one callback, so segment ``i``
        (1-based) deterministically sees occupancy ``base + i``.

        Returns the number of *unmarked leading segments* ``u`` in
        ``[0, n]``: the port marks segments ``u+1 .. n`` CE (splitting
        the train at the crossing), which reproduces the enqueue-point
        decision sequence of any scheme whose condition is monotone in
        occupancy.  Returns ``None`` when no closed form exists —
        dequeue-point marking, or a scheme whose decision mutates state
        per packet (EWMAs, round clocks) — and the port falls back to a
        full per-packet split.

        Subclasses implement :meth:`_train_unmarked`; this wrapper owns
        the threshold-boundary commit, the ECT gate and the
        seen/marked statistics, mirroring :meth:`_evaluate`.
        """
        if self._pending_thresholds is not None:
            self._commit_thresholds()
        if self.mark_point is not MarkPoint.ENQUEUE:
            return None
        n = packet.train
        if not packet.ect:
            return n
        unmarked = self._train_unmarked(port, queue_index, packet,
                                        base_port, base_queue)
        if unmarked is None:
            return None
        unmarked = max(0, min(n, unmarked))
        self.packets_seen += n
        self.packets_marked += n - unmarked
        return unmarked

    def _train_unmarked(self, port: "Port", queue_index: int, packet: Packet,
                        base_port: int, base_queue: int) -> Optional[int]:
        """Scheme hook for :meth:`train_split`: the unmarked-prefix
        length, or None when the scheme has no closed form.  The base
        marker declares no closed form, so unknown schemes stay exact
        via the per-packet fallback."""
        return None


class NullMarker(Marker):
    """Never marks — drop-tail behaviour (host NICs, non-ECN baselines).

    The port hooks are overridden as true no-ops: host NIC ports sit on
    the datapath's hottest path and a marker that never marks has no
    reason to pay the evaluate/decide dispatch per packet.  As a
    consequence ``packets_seen`` stays 0 (``mark_fraction`` is 0.0 either
    way).
    """

    def on_enqueue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        return

    def on_dequeue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        return

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        return False

    def train_split(self, port: "Port", queue_index: int, packet: Packet,
                    base_port: int, base_queue: int) -> Optional[int]:
        # A marker that never marks leaves every train segment unmarked
        # — and host NIC ports, the datapath's hottest trains path, skip
        # the whole evaluate/accounting dispatch exactly like the no-op
        # per-packet hooks above.
        return packet.train
