"""RED — Random Early Detection (Floyd & Jacobson 1993).

The paper's §II background: "DCTCP uses a special parameter setting of
RED ECN marking".  This is the general mechanism: an EWMA of the queue
length is compared against ``min_th``/``max_th``; between them packets
are marked with probability rising linearly to ``max_p`` (and the count
correction spreads marks evenly); above ``max_th`` every packet is
marked.

:meth:`RedMarker.dctcp_profile` instantiates the degenerate setting the
paper (and production DCTCP) uses: ``min_th = max_th = K``, weight 1
(instantaneous queue), ``max_p = 1`` — a step function at K.

RED here watches the *port* occupancy; combine with
:class:`~repro.ecn.per_queue.PerQueueMarker` semantics by setting
``per_queue=True`` to watch the packet's own queue instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..net.packet import Packet
from .base import Marker, MarkPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["RedMarker"]


class RedMarker(Marker):
    """Classic RED over packet-count occupancy."""

    def __init__(
        self,
        min_threshold: float,
        max_threshold: float,
        max_probability: float = 0.1,
        weight: float = 0.002,
        per_queue: bool = False,
        mark_point: MarkPoint = MarkPoint.ENQUEUE,
        seed: int = 0,
    ):
        super().__init__(mark_point)
        if not 0 <= min_threshold <= max_threshold:
            raise ValueError("need 0 <= min_threshold <= max_threshold")
        if not 0.0 < max_probability <= 1.0:
            raise ValueError("max_probability must be in (0, 1]")
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        self.min_threshold = float(min_threshold)
        self.max_threshold = float(max_threshold)
        self.max_probability = float(max_probability)
        #: EWMA gain; 1.0 means "instantaneous queue" (DCTCP setting).
        self.weight = float(weight)
        self.per_queue = per_queue
        self._avg = 0.0
        #: Packets since the last mark while in the linear region — RED's
        #: count correction spreads marks uniformly.
        self._count = 0
        self._rng = np.random.default_rng(seed)

    @classmethod
    def dctcp_profile(cls, threshold_packets: float,
                      per_queue: bool = False,
                      mark_point: MarkPoint = MarkPoint.ENQUEUE) -> "RedMarker":
        """The paper's setting: instantaneous step marking at K."""
        return cls(
            min_threshold=threshold_packets,
            max_threshold=threshold_packets,
            max_probability=1.0,
            weight=1.0,
            per_queue=per_queue,
            mark_point=mark_point,
        )

    def on_reset(self, port: "Port") -> None:
        # The EWMA and the count correction describe the discarded
        # queue; a reused port starts from an empty average.
        self._avg = 0.0
        self._count = 0

    @property
    def average_queue(self) -> float:
        """Current EWMA of the watched occupancy (packets)."""
        return self._avg

    def _occupancy(self, port: "Port", queue_index: int) -> int:
        if self.per_queue:
            return port.queue_packet_count(queue_index)
        return port.packet_count

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        occupancy = self._occupancy(port, queue_index)
        self._avg += self.weight * (occupancy - self._avg)
        if self._avg < self.min_threshold:
            self._count = 0
            return False
        if self._avg >= self.max_threshold:
            self._count = 0
            return True
        # Linear region with count correction.
        span = self.max_threshold - self.min_threshold
        base_p = self.max_probability * (self._avg - self.min_threshold) / span
        self._count += 1
        denominator = 1.0 - self._count * base_p
        probability = base_p / denominator if denominator > 0 else 1.0
        if self._rng.random() < probability:
            self._count = 0
            return True
        return False
