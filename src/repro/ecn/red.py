"""RED — Random Early Detection (Floyd & Jacobson 1993).

The paper's §II background: "DCTCP uses a special parameter setting of
RED ECN marking".  This is the general mechanism: an EWMA of the queue
length is compared against ``min_th``/``max_th``; between them packets
are marked with probability rising linearly to ``max_p`` (and the count
correction spreads marks evenly); above ``max_th`` every packet is
marked.

:meth:`RedMarker.dctcp_profile` instantiates the degenerate setting the
paper (and production DCTCP) uses: ``min_th = max_th = K``, weight 1
(instantaneous queue), ``max_p = 1`` — a step function at K.

RED here watches the *port* occupancy; combine with
:class:`~repro.ecn.per_queue.PerQueueMarker` semantics by setting
``per_queue=True`` to watch the packet's own queue instead.

Determinism: ``seed`` is a *base* seed — at attach time the marker
derives its private stream from ``(seed, port-name digest)`` with the
same splitmix64 mixing the fault layer uses, so every RED port in a
fabric draws an independent sequence, different run seeds produce
different coin flips, and results are identical at any ``--jobs`` level.
Topology builders need no extra plumbing: their per-port marker
factories construct one instance per port and the attach-time
derivation decorrelates them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..net.packet import MTU_BYTES, Packet
from ..sim.rng import make_rng, stable_digest, stable_hash
from .base import Marker, MarkPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["RedMarker"]


class RedMarker(Marker):
    """Classic RED over packet-count occupancy."""

    _THRESHOLD_FIELDS = ("min_threshold", "max_threshold",
                         "max_probability", "weight")

    def __init__(
        self,
        min_threshold: float,
        max_threshold: float,
        max_probability: float = 0.1,
        weight: float = 0.002,
        per_queue: bool = False,
        mark_point: MarkPoint = MarkPoint.ENQUEUE,
        seed: int = 0,
    ):
        super().__init__(mark_point)
        if not 0 <= min_threshold <= max_threshold:
            raise ValueError("need 0 <= min_threshold <= max_threshold")
        if not 0.0 < max_probability <= 1.0:
            raise ValueError("max_probability must be in (0, 1]")
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        self.min_threshold = float(min_threshold)
        self.max_threshold = float(max_threshold)
        self.max_probability = float(max_probability)
        #: EWMA gain; 1.0 means "instantaneous queue" (DCTCP setting).
        self.weight = float(weight)
        self.per_queue = per_queue
        #: Base seed; the per-port stream is derived at attach time.
        self.seed = int(seed)
        self._avg = 0.0
        #: Packets since the last mark while in the linear region — RED's
        #: count correction spreads marks uniformly.
        self._count = 0
        self._rng = None
        #: One MTU transmission time on the attached link — the sample
        #: interval of the idle correction (infinite until attach, so an
        #: unattached marker never decays).
        self._mtu_time = float("inf")

    @classmethod
    def dctcp_profile(cls, threshold_packets: float,
                      per_queue: bool = False,
                      mark_point: MarkPoint = MarkPoint.ENQUEUE) -> "RedMarker":
        """The paper's setting: instantaneous step marking at K."""
        return cls(
            min_threshold=threshold_packets,
            max_threshold=threshold_packets,
            max_probability=1.0,
            weight=1.0,
            per_queue=per_queue,
            mark_point=mark_point,
        )

    def attach(self, port: "Port") -> None:
        super().attach(port)
        self._mtu_time = MTU_BYTES * 8.0 / port.link.bandwidth
        self._rng = self._derive_stream()

    def _derive_stream(self):
        """Per-port coin-flip stream: (base seed, port-name digest).

        Same keying discipline as ``repro.sim.faults``: ports draw
        independent sequences, and the stream is reproducible across
        processes, ``--jobs`` levels, and resets.
        """
        token = 0
        if self._attached_port is not None:
            token = int(stable_digest(self._attached_port.name)[:16], 16)
        return make_rng(stable_hash(self.seed, token))

    def _validate_thresholds(self, merged) -> None:
        if not 0 <= merged["min_threshold"] <= merged["max_threshold"]:
            raise ValueError("need 0 <= min_threshold <= max_threshold")
        if not 0.0 < merged["max_probability"] <= 1.0:
            raise ValueError("max_probability must be in (0, 1]")
        if not 0.0 < merged["weight"] <= 1.0:
            raise ValueError("weight must be in (0, 1]")

    def _apply_thresholds(self, changes) -> None:
        for name, value in changes.items():
            setattr(self, name, float(value))

    def on_reset(self, port: "Port") -> None:
        super().on_reset(port)
        # The EWMA and the count correction describe the discarded
        # queue; a reused port starts from an empty average, and the
        # coin-flip stream restarts deterministically.
        self._avg = 0.0
        self._count = 0
        self._rng = self._derive_stream()

    @property
    def average_queue(self) -> float:
        """Current EWMA of the watched occupancy (packets)."""
        return self._avg

    def _occupancy(self, port: "Port", queue_index: int) -> int:
        if self.per_queue:
            return port.queue_packet_count(queue_index)
        return port.packet_count

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        # Classic RED idle correction: while the port sat idle the queue
        # was empty, but no packets arrived to sample it, so the EWMA
        # goes stale at its last (possibly high) value and would mark
        # the first packets of a fresh burst.  Decay it as if m empty
        # samples were taken, one per MTU transmission time of idleness
        # (Floyd & Jacobson §11).  ``port.busy`` is the true idle signal
        # — one-MTU gaps between back-to-back transmissions must not
        # count (same discipline as MQ-ECN's T_idle reset).
        if self.weight < 1.0 and self._avg > 0.0 and not port.busy:
            idle = port.sim.now - port.last_departure
            if idle > self._mtu_time:
                self._avg *= (1.0 - self.weight) ** (idle / self._mtu_time)
        occupancy = self._occupancy(port, queue_index)
        self._avg += self.weight * (occupancy - self._avg)
        if self._avg < self.min_threshold:
            self._count = 0
            return False
        if self._avg >= self.max_threshold:
            self._count = 0
            return True
        # Linear region with count correction.
        span = self.max_threshold - self.min_threshold
        base_p = self.max_probability * (self._avg - self.min_threshold) / span
        self._count += 1
        denominator = 1.0 - self._count * base_p
        probability = base_p / denominator if denominator > 0 else 1.0
        if self._rng.random() < probability:
            self._count = 0
            return True
        return False
