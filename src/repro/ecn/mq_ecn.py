"""MQ-ECN (Bai et al., NSDI 2016) — the round-based baseline.

MQ-ECN keeps a *dynamic* per-queue threshold

    K_i = min(quantum_i / T_round, C) × RTT × λ          (paper Eq. 3)

where ``T_round`` is a smoothed estimate of how long the scheduler takes
to serve all backlogged queues once.  Busy rounds → large ``T_round`` →
small ``K_i`` (latency protected); few active queues → small ``T_round``
→ ``K_i`` saturates at the standard threshold (throughput protected).

``T_round`` only exists for round-based schedulers (WRR/DWRR): the marker
subscribes to the scheduler's ``round_observer`` at attach time and
refuses schedulers without rounds — reproducing MQ-ECN's structural
limitation (Table I).

Following the paper's §VI settings, the round sample is smoothed with
``β = 0.75`` and the estimate is reset after the port has been idle for
``T_idle`` (default: one MTU transmission time), so a freshly busy port
starts from the permissive standard threshold.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..net.packet import MTU_BYTES, Packet
from .base import Marker, MarkPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["MqEcnMarker"]


class MqEcnMarker(Marker):
    """Dynamic per-queue thresholds driven by the scheduler round time."""

    _THRESHOLD_FIELDS = ("rtt", "lam", "t_idle")

    def __init__(
        self,
        rtt: float,
        lam: float = 1.0,
        beta: float = 0.75,
        t_idle: Optional[float] = None,
        mark_point: MarkPoint = MarkPoint.ENQUEUE,
    ):
        super().__init__(mark_point)
        if rtt <= 0:
            raise ValueError("rtt must be positive")
        if not 0.0 <= beta < 1.0:
            raise ValueError("beta must be in [0, 1)")
        self.rtt = rtt
        self.lam = lam
        self.beta = beta
        #: Idle gap after which T_round resets (None until attach when
        #: defaulted, since it needs the link rate).
        self.t_idle = t_idle
        self._port: Optional["Port"] = None
        self._capacity_bps = 0.0
        self._t_round = 0.0
        self._last_round_start: Optional[float] = None

    @property
    def t_round(self) -> float:
        """Current smoothed round-time estimate in seconds."""
        return self._t_round

    def attach(self, port: "Port") -> None:
        if not port.scheduler.is_round_based:
            raise ValueError(
                "MQ-ECN requires a round-based scheduler (WRR/DWRR); "
                f"{type(port.scheduler).__name__} has no round concept"
            )
        super().attach(port)
        self._port = port
        self._capacity_bps = port.link.bandwidth
        if self.t_idle is None:
            self.t_idle = MTU_BYTES * 8.0 / self._capacity_bps
            # Re-capture: the baseline must hold the resolved default,
            # not the ``None`` placeholder ``super().attach`` saw.
            self._baseline_thresholds = self.thresholds()
        port.scheduler.round_observer = self._on_round

    def _validate_thresholds(self, merged) -> None:
        if merged["rtt"] <= 0:
            raise ValueError("rtt must be positive")
        if merged["t_idle"] is not None and merged["t_idle"] < 0:
            raise ValueError("t_idle cannot be negative")

    def on_reset(self, port: "Port") -> None:
        super().on_reset(port)
        # Round bookkeeping is per-traffic-epoch: a reset port starts
        # from the permissive standard threshold, exactly like the
        # T_idle path, instead of carrying a stale round estimate into
        # the next sweep iteration.
        self._t_round = 0.0
        self._last_round_start = None

    # -- round-time estimation -------------------------------------------

    def _on_round(self) -> None:
        now = self._port.sim.now
        if self._last_round_start is not None:
            sample = now - self._last_round_start
            self._t_round = self.beta * self._t_round + (1.0 - self.beta) * sample
        self._last_round_start = now

    def on_enqueue(self, port: "Port", queue_index: int, packet: Packet) -> None:
        # A packet arriving at an idle port after more than T_idle of
        # silence: MQ-ECN resets its round-time estimate, so the freshly
        # busy port starts from the permissive standard threshold rather
        # than a stale (large) T_round.  ``port.busy`` is the true idle
        # signal — gaps between back-to-back transmissions are exactly one
        # MTU time and must NOT count as idle.
        if not port.busy and port.sim.now - port.last_departure > self.t_idle:
            self._t_round = 0.0
            self._last_round_start = None
        super().on_enqueue(port, queue_index, packet)

    # -- marking -----------------------------------------------------------

    def queue_threshold_bytes(self, port: "Port", queue_index: int) -> float:
        """Current dynamic threshold ``K_i`` of one queue, in bytes."""
        capacity_Bps = self._capacity_bps / 8.0
        t_round = self._t_round
        if t_round <= 0.0:
            drain_Bps = capacity_Bps
        else:
            quantum = port.scheduler.queue_quantum(queue_index)  # type: ignore[attr-defined]
            drain_Bps = min(quantum / t_round, capacity_Bps)
        return drain_Bps * self.rtt * self.lam

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        return port.queue_byte_count(queue_index) >= self.queue_threshold_bytes(
            port, queue_index
        )
