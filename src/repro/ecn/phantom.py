"""Phantom-queue marking (HULL, Alizadeh et al., NSDI 2012).

A *phantom queue* is a counter that simulates a virtual queue draining at
a fraction ``drain_factor < 1`` of the line rate: each departing packet
adds its size to the counter, which leaks at ``drain_factor × C``.
Marking against the phantom queue signals congestion *before* any real
queue forms, trading a few percent of bandwidth headroom for near-zero
queueing latency.

Included as the third design point of the low-latency ECN literature the
paper builds on (buffer-based DCTCP/PMSB, time-based TCN, utilization-
based HULL); like TCN it is scheduler-agnostic, and like per-port
schemes it is blind to queue identity — combine with PMSB-style
filtering by wrapping if desired.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..net.packet import Packet
from .base import Marker, MarkPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["PhantomQueueMarker"]


class PhantomQueueMarker(Marker):
    """Mark when the virtual (phantom) queue exceeds the threshold."""

    supported_points = frozenset({MarkPoint.DEQUEUE})
    _THRESHOLD_FIELDS = ("threshold_bytes", "drain_factor")

    def __init__(self, threshold_bytes: float, drain_factor: float = 0.95):
        super().__init__(MarkPoint.DEQUEUE)
        if threshold_bytes < 0:
            raise ValueError("threshold cannot be negative")
        if not 0.0 < drain_factor <= 1.0:
            raise ValueError("drain_factor must be in (0, 1]")
        self.threshold_bytes = float(threshold_bytes)
        self.drain_factor = float(drain_factor)
        self._phantom_bytes = 0.0
        self._last_update = 0.0
        self._drain_Bps = 0.0

    def attach(self, port: "Port") -> None:
        super().attach(port)
        self._drain_Bps = self.drain_factor * port.link.bandwidth / 8.0

    def _validate_thresholds(self, merged) -> None:
        if merged["threshold_bytes"] < 0:
            raise ValueError("threshold cannot be negative")
        if not 0.0 < merged["drain_factor"] <= 1.0:
            raise ValueError("drain_factor must be in (0, 1]")

    def _apply_thresholds(self, changes) -> None:
        super()._apply_thresholds(changes)
        if "drain_factor" in changes and self._attached_port is not None:
            self._drain_Bps = (self.drain_factor
                               * self._attached_port.link.bandwidth / 8.0)

    def on_reset(self, port: "Port") -> None:
        super().on_reset(port)
        # The virtual queue drains with the discarded real one; anchoring
        # the leak clock at now prevents a huge retroactive leak window.
        self._phantom_bytes = 0.0
        self._last_update = port.sim.now

    @property
    def phantom_bytes(self) -> float:
        """Current virtual-queue depth (bytes, before leak update)."""
        return self._phantom_bytes

    def _leak(self, now: float) -> None:
        elapsed = now - self._last_update
        self._last_update = now
        self._phantom_bytes = max(
            0.0, self._phantom_bytes - elapsed * self._drain_Bps
        )

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        self._leak(port.sim.now)
        self._phantom_bytes += packet.size
        return self._phantom_bytes > self.threshold_bytes
