"""Per-queue ECN marking.

Each queue carries its own static threshold and is marked independently —
the scheme commodity chips offer out of the box.  Two canonical
configurations from the paper's motivation (§II-B):

- *standard*: every queue gets the full ``K = C·RTT·λ``.  Throughput is
  safe, but with many active queues the port holds up to ``N·K`` packets →
  high latency (Fig. 1).
- *fractional*: ``K_i = (w_i/Σw)·K``.  Latency is safe, but a lone active
  queue is throttled below link capacity (Fig. 2).
"""

from __future__ import annotations

import math
from typing import List, Sequence, TYPE_CHECKING, Union

from ..net.packet import Packet
from .base import Marker, MarkPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["PerQueueMarker", "standard_thresholds", "fractional_thresholds"]


def standard_thresholds(n_queues: int, threshold_packets: float) -> List[float]:
    """Every queue gets the full standard threshold."""
    return [float(threshold_packets)] * n_queues


def fractional_thresholds(
    weights: Sequence[float], threshold_packets: float
) -> List[float]:
    """Apportion the standard threshold by weight (Eq. 2 of the paper)."""
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return [w / total * threshold_packets for w in weights]


class PerQueueMarker(Marker):
    """Mark when a packet's own queue exceeds that queue's threshold."""

    def __init__(
        self,
        thresholds: Union[float, Sequence[float]],
        mark_point: MarkPoint = MarkPoint.ENQUEUE,
    ):
        super().__init__(mark_point)
        self._scalar: float = -1.0
        self._vector: List[float] = []
        self._install(thresholds)

    def _install(self, thresholds: Union[float, Sequence[float]]) -> None:
        if isinstance(thresholds, (int, float)):
            self._scalar = float(thresholds)
            self._vector = []
        else:
            self._scalar = -1.0
            self._vector = [float(t) for t in thresholds]
            if any(t < 0 for t in self._vector):
                raise ValueError("thresholds cannot be negative")

    # The tunable value is scalar-or-vector, so the generic attribute
    # mapping does not apply; ``queue_thresholds`` is the uniform key.
    def thresholds(self):
        value = tuple(self._vector) if self._vector else self._scalar
        return {"queue_thresholds": value}

    def _validate_thresholds(self, merged) -> None:
        value = merged["queue_thresholds"]
        if isinstance(value, (int, float)):
            if value < 0:
                raise ValueError("thresholds cannot be negative")
        elif any(t < 0 for t in value):
            raise ValueError("thresholds cannot be negative")

    def _apply_thresholds(self, changes) -> None:
        self._install(changes["queue_thresholds"])

    def threshold(self, queue_index: int) -> float:
        """The marking threshold (packets) applied to one queue."""
        if self._vector:
            return self._vector[queue_index]
        return self._scalar

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        return port.queue_packet_count(queue_index) >= self.threshold(queue_index)

    def _train_unmarked(self, port, queue_index, packet, base_port,
                        base_queue):
        # Segment i sees its own queue at base_queue + i; unmarked while
        # base_queue + i < K_q (same closed form as the per-port scheme,
        # on the queue axis).
        threshold = self.threshold(queue_index)
        return max(0, math.ceil(threshold - base_queue) - 1)
