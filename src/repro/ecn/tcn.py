"""TCN (Bai et al., CoNEXT 2016) — the sojourn-time baseline.

TCN marks a departing packet when its *sojourn time* (dequeue time minus
enqueue time) exceeds ``T_k = RTT × λ``.  Because the signal is the time a
packet actually spent queued, TCN works over any scheduler — but it can
only be evaluated at dequeue, after the delay has been experienced, so it
cannot deliver congestion information early (paper §II-C, Fig. 5).  The
class enforces that structural property: constructing it with an enqueue
mark point raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..net.packet import Packet
from .base import Marker, MarkPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["TcnMarker"]


class TcnMarker(Marker):
    """Mark at dequeue when sojourn time exceeds the threshold."""

    supported_points = frozenset({MarkPoint.DEQUEUE})
    _THRESHOLD_FIELDS = ("sojourn_threshold",)

    def __init__(self, sojourn_threshold: float):
        super().__init__(MarkPoint.DEQUEUE)
        if sojourn_threshold < 0:
            raise ValueError("sojourn threshold cannot be negative")
        self.sojourn_threshold = sojourn_threshold

    def _validate_thresholds(self, merged) -> None:
        if merged["sojourn_threshold"] < 0:
            raise ValueError("sojourn threshold cannot be negative")

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        if packet.enqueue_time is None:  # pragma: no cover - port always stamps
            return False
        sojourn = port.sim.now - packet.enqueue_time
        return sojourn > self.sojourn_threshold
