"""Per-port ECN marking.

One threshold on the port's aggregate occupancy, shared by all queues.
Throughput and latency are both good (the port behaves like DCTCP's
single queue), but packets of an un-congested queue get marked because
*other* queues fill the port — the victim-flow effect of Fig. 3 that PMSB
exists to fix.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..net.packet import Packet
from .base import Marker, MarkPoint

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port

__all__ = ["PerPortMarker"]


class PerPortMarker(Marker):
    """Mark when the whole port's occupancy reaches the threshold."""

    _THRESHOLD_FIELDS = ("threshold_packets",)

    def __init__(
        self,
        threshold_packets: float,
        mark_point: MarkPoint = MarkPoint.ENQUEUE,
    ):
        super().__init__(mark_point)
        if threshold_packets < 0:
            raise ValueError("threshold cannot be negative")
        self.threshold_packets = float(threshold_packets)

    def _validate_thresholds(self, merged) -> None:
        if merged["threshold_packets"] < 0:
            raise ValueError("threshold cannot be negative")

    def _apply_thresholds(self, changes) -> None:
        self.threshold_packets = float(changes["threshold_packets"])

    def decide(self, port: "Port", queue_index: int, packet: Packet) -> bool:
        return port.packet_count >= self.threshold_packets

    def _train_unmarked(self, port, queue_index, packet, base_port,
                        base_queue):
        # Segment i (1-based) sees occupancy base_port + i; it is
        # unmarked while base_port + i < K, so the prefix length is the
        # count of positive integers strictly below K - base_port.
        return max(0, math.ceil(self.threshold_packets - base_port) - 1)
