"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Every event
is a plain callback scheduled at an absolute simulation time.  Ties are
broken by a monotonically increasing sequence number, which makes runs
fully deterministic: two events scheduled for the same instant always fire
in the order they were scheduled.

The engine deliberately avoids coroutine/process abstractions.  Network
simulations at packet granularity schedule millions of very small events;
plain callbacks keep the hot loop tight and the call stacks shallow.

Cancellation and heap compaction
--------------------------------

Cancelling an event does not remove it from the heap (a heap delete is
O(n)); the entry is skipped when popped.  Transport workloads cancel
aggressively — every ACK pushes back the retransmission timer — so dead
entries would otherwise accumulate and inflate every push/pop by a log
factor.  The engine therefore counts live cancellations and **compacts**
the heap (filters the dead entries out and re-heapifies, an O(n) pass)
whenever more than half of it is cancelled.  Two consequences callers can
observe:

- :attr:`Simulator.pending_events` may *shrink* spontaneously after a
  burst of cancellations — it counts heap entries, cancelled ones
  included, and a compaction drops the dead ones all at once.
- :attr:`Simulator.cancelled_pending` (dead entries currently in the
  heap) and :attr:`Simulator.compactions` expose the mechanism for
  benchmarks and the profiler.

Executed and cancelled events whose handles are no longer referenced
anywhere are recycled through a small free-list, so steady-state
schedule/fire churn does not allocate.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .audit import FabricAuditor
    from .profile import SimProfiler

__all__ = ["Event", "Simulator", "SimulationError"]

#: Compact only when the heap is at least this large — tiny heaps are
#: cheap to scan linearly and not worth the heapify churn.
_COMPACT_MIN_HEAP = 64

#: Upper bound on recycled Event objects kept around.
_FREELIST_MAX = 4096


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Event:
    """A handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`.  The only public operation is :meth:`cancel`;
    cancelled events stay in the heap but are skipped when popped, which
    is much cheaper than a heap delete.  (The owning simulator counts
    cancellations and compacts the heap when dead entries dominate —
    see the module docstring.)
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "in_heap", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.in_heap = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references eagerly: a cancelled retransmission timer may
        # otherwise pin a large packet object in the heap for a long time.
        self.callback = _noop
        self.args = ()
        if self.in_heap and self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-6, port.try_transmit)
        sim.run(until=0.1)

    All times are in **seconds**.  The clock only moves forward; scheduling
    an event in the past raises :class:`SimulationError`.
    """

    __slots__ = (
        "_heap", "_now", "_seq", "_events_processed", "_running",
        "_cancelled", "_compactions", "_freelist", "profiler", "auditor",
    )

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._cancelled = 0
        self._compactions = 0
        self._freelist: list[Event] = []
        #: Optional :class:`~repro.sim.profile.SimProfiler`; hot-path
        #: components check it for None before reporting counters.
        self.profiler: Optional["SimProfiler"] = None
        #: Optional :class:`~repro.sim.audit.FabricAuditor`; installed
        #: by its constructor.  When None (the default) no audit hook
        #: exists anywhere on the datapath.
        self.auditor: Optional["FabricAuditor"] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones).

        May shrink without any event firing: a heap compaction drops all
        cancelled entries at once (see the module docstring).
        """
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed so far."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} seconds in the past")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        self._seq += 1
        freelist = self._freelist
        if freelist:
            event = freelist.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, self._seq, callback, args, self)
        event.in_heap = True
        heapq.heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        """One live heap entry was cancelled; compact when they dominate."""
        self._cancelled += 1
        if (
            self._cancelled * 2 > len(self._heap)
            and len(self._heap) >= _COMPACT_MIN_HEAP
        ):
            self._compact()

    def _compact(self) -> None:
        """Filter cancelled entries out of the heap and re-heapify.

        Mutates ``self._heap`` in place so the alias held by a running
        :meth:`run` loop stays valid.
        """
        heap = self._heap
        live = []
        for event in heap:
            if event.cancelled:
                event.in_heap = False
            else:
                live.append(event)
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled = 0
        self._compactions += 1

    # Free-list discipline: recycling an Event someone still holds a
    # handle to would let a stale ``cancel()`` kill an unrelated future
    # event, so the run loop pools an object only when its local variable
    # is the sole remaining reference (sys.getrefcount == local binding +
    # getrefcount argument = 2).

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        Returns the number of events executed by this call.  When ``until``
        is given the clock is advanced to exactly ``until`` on return even
        if the heap drained earlier, so back-to-back ``run`` calls observe
        a consistent timeline.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from within an event")
        heap = self._heap
        freelist = self._freelist
        heappop = heapq.heappop
        getrefcount = sys.getrefcount
        executed = 0
        self._running = True
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    event.in_heap = False
                    self._cancelled -= 1
                    # Recycle only provably-unshared handles (see _recycle).
                    if len(freelist) < _FREELIST_MAX and getrefcount(event) == 2:
                        freelist.append(event)
                    continue
                if until is not None and event.time > until:
                    break
                heappop(heap)
                event.in_heap = False
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                self._events_processed += 1
                if len(freelist) < _FREELIST_MAX and getrefcount(event) == 2:
                    event.callback = _noop
                    event.args = ()
                    freelist.append(event)
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        return self.run(max_events=1) == 1

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched).

        Careful at scenario teardown: any component holding scheduled
        state — most notably a :class:`~repro.net.port.Port` whose
        ``busy`` flag is set while its transmission-completion event is
        in this heap — is left inconsistent by a bare ``clear()``.  Call
        :meth:`repro.net.port.Port.reset` on every port afterwards (or
        instead) to return the datapath to a consistent idle state.
        """
        for event in self._heap:
            event.in_heap = False
        self._heap.clear()
        self._cancelled = 0
        if self.auditor is not None:
            self.auditor.on_clear()
