"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Every event
is a plain callback scheduled at an absolute simulation time.  Ties are
broken by a monotonically increasing sequence number, which makes runs
fully deterministic: two events scheduled for the same instant always fire
in the order they were scheduled.

The engine deliberately avoids coroutine/process abstractions.  Network
simulations at packet granularity schedule millions of very small events;
plain callbacks keep the hot loop tight and the call stacks shallow.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Event:
    """A handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`.  The only public operation is :meth:`cancel`;
    cancelled events stay in the heap but are skipped when popped, which
    is much cheaper than a heap delete.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True
        # Drop references eagerly: a cancelled retransmission timer may
        # otherwise pin a large packet object in the heap for a long time.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-6, port.try_transmit)
        sim.run(until=0.1)

    All times are in **seconds**.  The clock only moves forward; scheduling
    an event in the past raises :class:`SimulationError`.
    """

    __slots__ = ("_heap", "_now", "_seq", "_events_processed", "_running")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} seconds in the past")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        self._seq += 1
        event = Event(time, self._seq, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        Returns the number of events executed by this call.  When ``until``
        is given the clock is advanced to exactly ``until`` on return even
        if the heap drained earlier, so back-to-back ``run`` calls observe
        a consistent timeline.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from within an event")
        heap = self._heap
        executed = 0
        self._running = True
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                self._events_processed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        return self.run(max_events=1) == 1

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        self._heap.clear()
