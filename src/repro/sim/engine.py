"""Discrete-event simulation engine.

The engine is a two-tier calendar queue.  Every event is a plain callback
scheduled at an absolute simulation time.  Ties are broken by a
monotonically increasing sequence number, which makes runs fully
deterministic: two events scheduled for the same instant always fire in
the order they were scheduled.

The engine deliberately avoids coroutine/process abstractions.  Network
simulations at packet granularity schedule millions of very small events;
plain callbacks keep the hot loop tight and the call stacks shallow.

Timing-wheel tier
-----------------

Packet workloads schedule almost exclusively *short-horizon* events:
link serialization/propagation completions, paced transmissions and
delayed ACKs all land microseconds-to-a-millisecond ahead of ``now``.
Those go into a bucketed timing wheel (:data:`_WHEEL_SLOTS` buckets of
:data:`_WHEEL_TICK` seconds, ~4 ms of horizon); only sparse long-horizon
timers (RTOs, periodic sampling tasks) still use the heap.  Wheel buckets
store plain ``(time, seq, event)`` tuples so sorting and the wheel/heap
merge compare at C speed instead of through ``Event.__lt__``, which
profiling shows is the dominant heap cost (~7 comparisons per event).

Determinism is preserved exactly: the run loop merges the wheel and the
heap by global ``(time, seq)`` order, so the firing order is identical to
a single-heap engine.  ``REPRO_SLOW_PATH=1`` (or
``Simulator(slow_path=True)``) disables the wheel and runs the original
heap-only loop — differential tests assert byte-identical experiment
exports between the two paths.

Cancellation and compaction
---------------------------

Cancelling an event does not remove it from its tier (a heap delete is
O(n)); the entry is skipped when popped.  Transport workloads cancel
aggressively — every ACK pushes back the retransmission timer — so dead
entries would otherwise accumulate.  The engine counts live cancellations
per tier and **compacts** (filters the dead entries out; re-heapifies for
the heap tier) whenever more than half of a tier is cancelled.  Two
consequences callers can observe:

- :attr:`Simulator.pending_events` may *shrink* spontaneously after a
  burst of cancellations — it counts entries in both tiers, cancelled
  ones included, and a compaction drops the dead ones all at once.
- :attr:`Simulator.cancelled_pending` (dead entries currently held in
  either tier) and :attr:`Simulator.compactions` expose the mechanism
  for benchmarks and the profiler.

Executed and cancelled events whose handles are no longer referenced
anywhere are recycled through a small free-list, so steady-state
schedule/fire churn does not allocate.
"""

from __future__ import annotations

import heapq
import math
import os
import sys
from bisect import insort
from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .audit import FabricAuditor
    from .profile import SimProfiler

__all__ = ["Event", "Simulator", "SimulationError", "slow_path_default"]

#: Compact only when the tier is at least this large — small tiers are
#: cheap to scan linearly and not worth the churn.
_COMPACT_MIN_HEAP = 64

#: Upper bound on recycled Event objects kept around.
_FREELIST_MAX = 4096

#: Wheel bucket width in seconds.  1 µs resolves every serialization
#: time the topologies produce (40 B @ 40 Gbps = 8 ns is sub-tick, but
#: bucket *ordering* is by exact (time, seq), so resolution only affects
#: which events share a bucket, never their firing order).
_WHEEL_TICK = 1e-6
_INV_TICK = 1.0 / _WHEEL_TICK

#: Number of wheel buckets (power of two so slot = bucket & mask).  With
#: a 1 µs tick the wheel spans ~4.1 ms: delayed ACKs (1 ms) land in the
#: wheel, min RTO (10 ms) and periodic tasks go to the heap.
_WHEEL_SLOTS = 4096
_WHEEL_MASK = _WHEEL_SLOTS - 1

_INF = float("inf")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


def slow_path_default() -> bool:
    """True when ``REPRO_SLOW_PATH`` requests the pre-optimization path.

    Read at :class:`Simulator` construction (and by
    :mod:`repro.net.packet` for the packet pool), so tests can flip the
    environment variable between simulator instances.
    """
    return _env_flag("REPRO_SLOW_PATH")


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Event:
    """A handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`.  The only public operation is :meth:`cancel`;
    cancelled events stay in their tier but are skipped when reached,
    which is much cheaper than a delete.  (The owning simulator counts
    cancellations and compacts a tier when dead entries dominate — see
    the module docstring.)
    """

    __slots__ = (
        "time", "seq", "callback", "args", "cancelled",
        "in_heap", "in_wheel", "_sim",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.in_heap = False
        self.in_wheel = False
        self._sim = sim

    @property
    def scheduled(self) -> bool:
        """True while the event is pending in the engine (either tier).

        Observers that previously checked ``in_heap`` (e.g. the fabric
        auditor's engine-hygiene pass) must use this instead: a
        short-horizon event lives in the timing wheel, not the heap.
        """
        return self.in_heap or self.in_wheel

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references eagerly: a cancelled retransmission timer may
        # otherwise pin a large packet object in the heap for a long time.
        self.callback = _noop
        self.args = ()
        sim = self._sim
        if sim is not None:
            if self.in_heap:
                sim._note_cancelled()
            elif self.in_wheel:
                sim._note_cancelled_wheel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-6, port.try_transmit)
        sim.run(until=0.1)

    All times are in **seconds**.  The clock only moves forward; scheduling
    an event in the past raises :class:`SimulationError`.

    ``slow_path=True`` (default: the ``REPRO_SLOW_PATH`` environment
    variable) disables the timing-wheel tier and runs the heap-only loop;
    event firing order — and therefore every simulation result — is
    identical on both paths.
    """

    __slots__ = (
        "_heap", "_now", "_seq", "_events_processed", "_running",
        "_cancelled", "_compactions", "_freelist", "profiler", "auditor",
        "_slow", "_wheel", "_cursor", "_active", "_active_pos",
        "_now_bucket", "_wheel_count", "_wheel_cancelled",
        "_wheel_scheduled", "_heap_scheduled",
        "_wheel_processed", "_heap_processed", "barrier_hook",
        "_batch", "_slot_batches", "_batched_events",
    )

    def __init__(self, slow_path: Optional[bool] = None,
                 batch_slots: Optional[bool] = None) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._cancelled = 0
        self._compactions = 0
        self._freelist: list[Event] = []
        self._slow = slow_path_default() if slow_path is None else bool(slow_path)
        # Whole-bucket batch drain (fast path only).  When disabled every
        # wheel event goes through the exact single-event merge path —
        # identical firing order, different mechanism — which gives
        # differential tests a real toggle (``REPRO_NO_SLOT_BATCH=1`` or
        # ``Simulator(batch_slots=False)``).
        if batch_slots is None:
            batch_slots = not _env_flag("REPRO_NO_SLOT_BATCH")
        self._batch = (not self._slow) and bool(batch_slots)
        self._slot_batches = 0
        self._batched_events = 0
        # Timing wheel state (fast path only).  Buckets hold
        # (time, seq, event) tuples; ``_cursor`` is the absolute index of
        # the bucket currently being drained (``_active``, consumed up to
        # ``_active_pos`` with drained slots set to None), ``_now_bucket``
        # anchors the wheel/heap routing window at the clock.
        self._wheel: Optional[list[list]] = (
            None if self._slow else [[] for _ in range(_WHEEL_SLOTS)]
        )
        self._cursor = 0
        self._active: Optional[list] = None
        self._active_pos = 0
        self._now_bucket = 0
        self._wheel_count = 0
        self._wheel_cancelled = 0
        self._wheel_scheduled = 0
        self._heap_scheduled = 0
        self._wheel_processed = 0
        self._heap_processed = 0
        #: Optional :class:`~repro.sim.profile.SimProfiler`; hot-path
        #: components check it for None before reporting counters.
        self.profiler: Optional["SimProfiler"] = None
        #: Optional :class:`~repro.sim.audit.FabricAuditor`; installed
        #: by its constructor.  When None (the default) no audit hook
        #: exists anywhere on the datapath.
        self.auditor: Optional["FabricAuditor"] = None
        #: Optional shard-synchronisation callback: called with the LBTS
        #: bound after every :meth:`run_until_lbts` window completes.
        self.barrier_hook: Optional[Callable[[float], None]] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def slow_path(self) -> bool:
        """True when the timing-wheel tier is disabled."""
        return self._slow

    @property
    def batch_slots(self) -> bool:
        """True when the whole-bucket batch drain is enabled."""
        return self._batch

    @property
    def slot_batches(self) -> int:
        """Number of whole-bucket batch drains executed so far."""
        return self._slot_batches

    @property
    def batched_events(self) -> int:
        """Events executed inside whole-bucket batch drains."""
        return self._batched_events

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def wheel_events_processed(self) -> int:
        """Events executed out of the timing-wheel tier."""
        return self._wheel_processed

    @property
    def heap_events_processed(self) -> int:
        """Events executed out of the heap tier."""
        return self._heap_processed

    @property
    def wheel_scheduled(self) -> int:
        """Events routed into the timing wheel by :meth:`at`."""
        return self._wheel_scheduled

    @property
    def heap_scheduled(self) -> int:
        """Events routed into the heap by :meth:`at`."""
        return self._heap_scheduled

    @property
    def wheel_pending(self) -> int:
        """Entries currently in the wheel (including cancelled ones)."""
        return self._wheel_count

    @property
    def pending_events(self) -> int:
        """Number of events still pending (including cancelled ones).

        Counts both tiers.  May shrink without any event firing: a
        compaction drops all cancelled entries of a tier at once (see
        the module docstring).
        """
        return len(self._heap) + self._wheel_count

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying engine slots (both tiers)."""
        return self._cancelled + self._wheel_cancelled

    @property
    def compactions(self) -> int:
        """Number of tier compactions performed so far."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} seconds in the past")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        self._seq += 1
        seq = self._seq
        freelist = self._freelist
        if freelist:
            event = freelist.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, seq, callback, args, self)
        if not self._slow:
            bucket_index = int(time * _INV_TICK)
            # The routing window is anchored at the *clock* bucket, not
            # the cursor: every live wheel entry then provably lies
            # within [now_bucket, now_bucket + _WHEEL_SLOTS), so two live
            # entries can never collide a lap apart in the same slot.
            if bucket_index - self._now_bucket < _WHEEL_SLOTS:
                event.in_wheel = True
                self._wheel_count += 1
                self._wheel_scheduled += 1
                cursor = self._cursor
                if bucket_index < cursor:
                    # A heap event fired while the cursor sat at a later
                    # wheel bucket, and its callback scheduled something
                    # nearer: rewind the cursor (the invariant is only
                    # cursor <= earliest nonempty bucket) and deactivate
                    # the active bucket so it is re-sorted on arrival.
                    active = self._active
                    if active is not None:
                        if self._active_pos:
                            # Strip consumed (None) slots so a future
                            # re-sort never compares None against tuples.
                            del active[: self._active_pos]
                            self._active_pos = 0
                        self._active = None
                    self._cursor = bucket_index
                    self._wheel[bucket_index & _WHEEL_MASK].append(
                        (time, seq, event)
                    )
                elif bucket_index == cursor and self._active is not None:
                    # Inserting into the bucket currently being drained:
                    # keep its tail sorted so the merge stays exact.
                    insort(self._active, (time, seq, event), self._active_pos)
                else:
                    self._wheel[bucket_index & _WHEEL_MASK].append(
                        (time, seq, event)
                    )
                return event
        event.in_heap = True
        self._heap_scheduled += 1
        heapq.heappush(self._heap, event)
        return event

    def at_ff(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget scheduling: ``callback(*args)`` at ``time``.

        No :class:`Event` handle is created — the call cannot be
        cancelled and returns nothing.  Intended for the datapath's
        highest-volume timers that are never cancelled individually
        (link serialization/propagation completions); they are dropped
        wholesale by :meth:`clear` like any other pending entry.

        Firing order is identical to :meth:`at`: a sequence number is
        allocated the same way, so fire-and-forget entries interleave
        deterministically with Event-backed ones, and the slow path
        (``REPRO_SLOW_PATH=1``) degrades to a plain :meth:`at` call.
        """
        if self._slow:
            self.at(time, callback, *args)
            return
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        bucket_index = int(time * _INV_TICK)
        if bucket_index - self._now_bucket >= _WHEEL_SLOTS:
            # Beyond the wheel window: fall back to an Event in the heap.
            self.at(time, callback, *args)
            return
        self._seq += 1
        entry = (time, self._seq, callback, args)
        self._wheel_count += 1
        self._wheel_scheduled += 1
        cursor = self._cursor
        if bucket_index < cursor:
            active = self._active
            if active is not None:
                if self._active_pos:
                    del active[: self._active_pos]
                    self._active_pos = 0
                self._active = None
            self._cursor = bucket_index
            self._wheel[bucket_index & _WHEEL_MASK].append(entry)
        elif bucket_index == cursor and self._active is not None:
            insort(self._active, entry, self._active_pos)
        else:
            self._wheel[bucket_index & _WHEEL_MASK].append(entry)

    def _note_cancelled(self) -> None:
        """One live heap entry was cancelled; compact when they dominate."""
        self._cancelled += 1
        if (
            self._cancelled * 2 > len(self._heap)
            and len(self._heap) >= _COMPACT_MIN_HEAP
        ):
            self._compact()

    def _note_cancelled_wheel(self) -> None:
        """One live wheel entry was cancelled; compact when they dominate."""
        self._wheel_cancelled += 1
        if (
            self._wheel_cancelled * 2 > self._wheel_count
            and self._wheel_count >= _COMPACT_MIN_HEAP
        ):
            self._compact_wheel()

    def _compact(self) -> None:
        """Filter cancelled entries out of the heap and re-heapify.

        Mutates ``self._heap`` in place so the alias held by a running
        :meth:`run` loop stays valid.
        """
        heap = self._heap
        live = []
        for event in heap:
            if event.cancelled:
                event.in_heap = False
            else:
                live.append(event)
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled = 0
        self._compactions += 1

    def _compact_wheel(self) -> None:
        """Filter cancelled entries out of every wheel bucket.

        Buckets are mutated in place (slice assignment) so the active
        bucket alias held by a running :meth:`run` loop stays valid; the
        active bucket is only filtered past ``_active_pos`` so consumed
        (None) slots are untouched.
        """
        active = self._active
        removed = 0
        for bucket in self._wheel:
            if not bucket:
                continue
            # Fire-and-forget 4-tuples (no Event at index 2) are never
            # cancelled and always survive compaction.
            if bucket is active:
                pos = self._active_pos
                tail = bucket[pos:]
                live = [entry for entry in tail
                        if len(entry) == 4 or not entry[2].cancelled]
                if len(live) != len(tail):
                    for entry in tail:
                        if len(entry) == 3 and entry[2].cancelled:
                            entry[2].in_wheel = False
                    bucket[pos:] = live
                    removed += len(tail) - len(live)
            else:
                live = [entry for entry in bucket
                        if len(entry) == 4 or not entry[2].cancelled]
                dead = len(bucket) - len(live)
                if dead:
                    for entry in bucket:
                        if len(entry) == 3 and entry[2].cancelled:
                            entry[2].in_wheel = False
                    bucket[:] = live
                    removed += dead
        self._wheel_count -= removed
        self._wheel_cancelled -= removed
        self._compactions += 1

    # Free-list discipline: recycling an Event someone still holds a
    # handle to would let a stale ``cancel()`` kill an unrelated future
    # event, so the run loop pools an object only when its local variable
    # is the sole remaining reference (sys.getrefcount == local binding +
    # getrefcount argument = 2).  Wheel entries drop their (time, seq,
    # event) tuple before the check by overwriting the bucket slot with
    # None.

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None,
            exclusive: bool = False) -> int:
        """Run events until both tiers drain, ``until`` is reached, or
        ``max_events`` have executed.

        Returns the number of events executed by this call.  When ``until``
        is given the clock is advanced to exactly ``until`` on return even
        if the engine drained earlier, so back-to-back ``run`` calls
        observe a consistent timeline.

        ``until`` is normally *inclusive* (an event scheduled exactly at
        ``until`` fires).  With ``exclusive=True`` the window is
        half-open ``[now, until)``: events at exactly ``until`` stay
        pending and fire on the next call.  This is the conservative
        shard-synchronisation contract — a shard may only execute events
        strictly before the fabric's lower bound on incoming timestamps
        (LBTS), because a cross-shard arrival can land exactly *at* it.
        The hot loops are untouched: the bound is simply tightened to
        the largest float below ``until`` before dispatch, and the clock
        is still clamped to the true ``until`` on return.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from within an event")
        bound = until
        if exclusive and until is not None:
            bound = math.nextafter(until, -math.inf)
        self._running = True
        try:
            if self._slow:
                executed = self._run_slow(bound, max_events)
            else:
                executed = self._run_fast(bound, max_events)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        if not self._slow:
            # Re-anchor the routing bucket to the clock.  While an
            # ``until``-bounded run idles, the cursor hunts forward to
            # the next nonempty bucket and drags ``_now_bucket`` with it
            # past the clock; if that stale anchor persisted, an event
            # scheduled between the clock and the anchor (a cross-shard
            # injection, say) would be skipped by the cursor clamp and
            # only resurface a full wheel lap later, with its original
            # timestamp regressing the clock.  Re-anchoring restores the
            # invariant the clamp relies on: no live wheel entry below
            # ``_now_bucket``.
            self._now_bucket = int(self._now * _INV_TICK)
        return executed

    def run_until_lbts(self, lbts: float, inclusive: bool = False) -> int:
        """One conservative synchronisation window: run ``[now, lbts)``.

        The exclusive upper bound makes the window safe under the
        null-message protocol (see :meth:`run`); ``inclusive=True`` is
        for a final window that must consume events at the deadline
        itself.  After the window completes the optional
        :attr:`barrier_hook` is invoked with the bound, so shard runners
        and profilers can observe synchronisation rounds without a hook
        in the event loop.
        """
        executed = self.run(until=lbts, exclusive=not inclusive)
        hook = self.barrier_hook
        if hook is not None:
            hook(lbts)
        return executed

    def _run_slow(self, until: Optional[float], max_events: Optional[int]) -> int:
        """The original heap-only event loop (``REPRO_SLOW_PATH=1``)."""
        heap = self._heap
        freelist = self._freelist
        heappop = heapq.heappop
        getrefcount = sys.getrefcount
        executed = 0
        while heap:
            event = heap[0]
            if event.cancelled:
                heappop(heap)
                event.in_heap = False
                self._cancelled -= 1
                # Recycle only provably-unshared handles (see above).
                if len(freelist) < _FREELIST_MAX and getrefcount(event) == 2:
                    freelist.append(event)
                continue
            if until is not None and event.time > until:
                break
            heappop(heap)
            event.in_heap = False
            self._now = event.time
            event.callback(*event.args)
            executed += 1
            self._events_processed += 1
            self._heap_processed += 1
            if len(freelist) < _FREELIST_MAX and getrefcount(event) == 2:
                event.callback = _noop
                event.args = ()
                freelist.append(event)
            if max_events is not None and executed >= max_events:
                break
        return executed

    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> int:
        """Merge-ordered two-tier loop: exact (time, seq) firing order.

        The loop works in *bucket quanta*.  In fast mode :meth:`at`
        routes every event within the wheel window to the wheel, so a
        heap entry pushed during a bucket's drain is always at least a
        full window (~4 ms) ahead and can never preempt the bucket.  One
        heap-top comparison per bucket therefore suffices: when the heap
        top lies at or beyond the bucket's end the whole bucket is
        drained in a tight loop with no per-event merge bookkeeping.
        Pre-existing heap entries *can* come due inside the current
        bucket (they were scheduled before the window reached them);
        those interleave through the exact single-event merge path.
        """
        heap = self._heap
        wheel = self._wheel
        freelist = self._freelist
        heappop = heapq.heappop
        getrefcount = sys.getrefcount
        until_f = _INF if until is None else until
        budget = _INF if max_events is None else max_events
        batch = self._batch
        executed = 0
        while True:
            cursor = self._cursor
            active = self._active
            pos = self._active_pos
            # -- establish the earliest live wheel entry -----------------
            wheel_time = None
            wheel_seq = 0
            while True:
                if active is not None:
                    n = len(active)
                    while pos < n:
                        entry = active[pos]
                        if len(entry) == 3:
                            event = entry[2]
                            if event.cancelled:
                                active[pos] = None
                                entry = None
                                pos += 1
                                self._wheel_count -= 1
                                self._wheel_cancelled -= 1
                                event.in_wheel = False
                                if (
                                    len(freelist) < _FREELIST_MAX
                                    and getrefcount(event) == 2
                                ):
                                    freelist.append(event)
                                continue
                        wheel_time = entry[0]
                        wheel_seq = entry[1]
                        entry = None
                        break
                    if wheel_time is not None:
                        break
                    # Bucket fully drained (only None slots remain):
                    # return it to its empty reusable state.
                    active.clear()
                    active = None
                    pos = 0
                    cursor += 1
                if self._wheel_count == 0:
                    break
                # No pending wheel entry lives below the clock bucket
                # (the merge fires earliest-first), so clamp a cursor
                # left stale by an idle wheel before scanning: slots are
                # modular and a lagging cursor would otherwise find a
                # bucket a full lap away and misattribute its index.
                if cursor < self._now_bucket:
                    cursor = self._now_bucket
                bucket = wheel[cursor & _WHEEL_MASK]
                while not bucket:
                    cursor += 1
                    bucket = wheel[cursor & _WHEEL_MASK]
                bucket.sort()
                active = bucket
                pos = 0
            self._cursor = cursor
            self._active = active
            self._active_pos = pos
            # -- establish the earliest live heap entry ------------------
            # Single binding throughout so the refcount==2 recycle check
            # below still sees an unshared handle.
            heap_event = None
            while heap:
                heap_event = heap[0]
                if heap_event.cancelled:
                    heappop(heap)
                    heap_event.in_heap = False
                    self._cancelled -= 1
                    if (
                        len(freelist) < _FREELIST_MAX
                        and getrefcount(heap_event) == 2
                    ):
                        freelist.append(heap_event)
                    heap_event = None
                    continue
                break
            if wheel_time is None and heap_event is None:
                break
            if batch and wheel_time is not None and (
                heap_event is None
                or heap_event.time >= (cursor + 1) * _WHEEL_TICK
            ):
                # -- bucket drain: nothing can preempt this bucket -------
                heap_event = None
                self._now_bucket = cursor
                limit = budget - executed
                done = 0
                drained = 0
                stop = False
                # Same-timestamp runs are the common case inside a bucket
                # (a burst enqueued back-to-back shares one clock value),
                # so the clock write is skipped while the time repeats.
                last_time = self._now
                while pos < len(active):
                    entry = active[pos]
                    if len(entry) == 4:
                        # Fire-and-forget entry: no Event bookkeeping.
                        event_time = entry[0]
                        if event_time > until_f:
                            stop = True
                            break
                        active[pos] = None
                        pos += 1
                        drained += 1
                        if event_time != last_time:
                            self._now = event_time
                            last_time = event_time
                        self._active_pos = pos
                        entry[2](*entry[3])
                        entry = None
                        done += 1
                        if done >= limit:
                            stop = True
                            break
                        if self._active is not active:
                            break
                        continue
                    event = entry[2]
                    if event.cancelled:
                        active[pos] = None
                        entry = None
                        pos += 1
                        drained += 1
                        self._wheel_cancelled -= 1
                        event.in_wheel = False
                        if (
                            len(freelist) < _FREELIST_MAX
                            and getrefcount(event) == 2
                        ):
                            freelist.append(event)
                        continue
                    event_time = entry[0]
                    entry = None
                    if event_time > until_f:
                        stop = True
                        break
                    active[pos] = None
                    pos += 1
                    drained += 1
                    event.in_wheel = False
                    if event_time != last_time:
                        self._now = event_time
                        last_time = event_time
                    self._active_pos = pos
                    event.callback(*event.args)
                    done += 1
                    if len(freelist) < _FREELIST_MAX and getrefcount(event) == 2:
                        event.callback = _noop
                        event.args = ()
                        freelist.append(event)
                    if done >= limit:
                        stop = True
                        break
                    if self._active is not active:
                        # The callback rewound the wheel (scheduled into
                        # an earlier bucket) or cleared the engine:
                        # re-establish from shared state.
                        break
                self._wheel_count -= drained
                self._events_processed += done
                self._wheel_processed += done
                if done:
                    self._slot_batches += 1
                    self._batched_events += done
                executed += done
                if self._active is active:
                    self._active_pos = pos
                if stop:
                    break
            elif wheel_time is not None and (
                heap_event is None
                or wheel_time < heap_event.time
                or (wheel_time == heap_event.time and wheel_seq < heap_event.seq)
            ):
                # -- single wheel event: a pre-existing heap entry is due
                # inside this bucket and may interleave -------------------
                if wheel_time > until_f:
                    break
                entry = active[pos]
                active[pos] = None
                pos += 1
                self._wheel_count -= 1
                self._now = wheel_time
                self._now_bucket = cursor
                self._active_pos = pos
                if len(entry) == 4:
                    callback = entry[2]
                    cb_args = entry[3]
                    entry = None
                    callback(*cb_args)
                else:
                    event = entry[2]
                    entry = None
                    event.in_wheel = False
                    event.callback(*event.args)
                    if len(freelist) < _FREELIST_MAX and getrefcount(event) == 2:
                        event.callback = _noop
                        event.args = ()
                        freelist.append(event)
                executed += 1
                self._events_processed += 1
                self._wheel_processed += 1
                if executed >= budget:
                    break
            else:
                # -- heap event fires ------------------------------------
                if heap_event.time > until_f:
                    break
                heappop(heap)
                event = heap_event
                heap_event = None
                event.in_heap = False
                self._now = event.time
                now_bucket = int(event.time * _INV_TICK)
                if now_bucket > self._now_bucket:
                    self._now_bucket = now_bucket
                event.callback(*event.args)
                executed += 1
                self._events_processed += 1
                self._heap_processed += 1
                if len(freelist) < _FREELIST_MAX and getrefcount(event) == 2:
                    event.callback = _noop
                    event.args = ()
                    freelist.append(event)
                if executed >= budget:
                    break
        return executed

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        return self.run(max_events=1) == 1

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched).

        Careful at scenario teardown: any component holding scheduled
        state — most notably a :class:`~repro.net.port.Port` whose
        ``busy`` flag is set while its transmission-completion event is
        in this heap — is left inconsistent by a bare ``clear()``.  Call
        :meth:`repro.net.port.Port.reset` on every port afterwards (or
        instead) to return the datapath to a consistent idle state.
        """
        for event in self._heap:
            event.in_heap = False
        self._heap.clear()
        self._cancelled = 0
        wheel = self._wheel
        if wheel is not None:
            if self._wheel_count:
                for bucket in wheel:
                    if bucket:
                        for entry in bucket:
                            if entry is not None and len(entry) == 3:
                                entry[2].in_wheel = False
                        bucket.clear()
            elif self._active is not None:
                # An exhausted active bucket may still hold consumed
                # (None) slots; reset it so a future sort never sees them.
                self._active.clear()
            self._active = None
            self._active_pos = 0
            self._wheel_count = 0
            self._wheel_cancelled = 0
        if self.auditor is not None:
            self.auditor.on_clear()
