"""Lightweight observability for simulation runs.

A :class:`SimProfiler` attaches to one :class:`~repro.sim.engine.Simulator`
(via ``sim.profiler``) and collects three kinds of data:

- **per-category event counters** — hot-path components report coarse
  categories through :meth:`SimProfiler.count`: the port datapath reports
  ``"tx"`` per transmitted packet, the DCTCP sender reports ``"timer"``
  per retransmission timeout and ``"pacing"`` per pacing stall;
- **heap-size-over-time samples** — a
  :class:`~repro.sim.timers.PeriodicTask` records
  ``(sim_time, pending_events, cancelled_pending, events_processed,
  wall_seconds)`` every ``sample_interval`` simulated seconds, which is
  how benchmarks assert the engine's heap compaction keeps
  ``pending_events`` bounded;
- **events/sec** — executed events divided by wall-clock time between
  :meth:`start` and :meth:`stop`.

The component hooks cost one attribute load and a None check per event
when no profiler is attached, so profiling is safe to leave compiled in.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, NamedTuple, Optional

from .engine import Simulator
from .timers import PeriodicTask

__all__ = ["HeapSample", "SimProfiler"]


class HeapSample(NamedTuple):
    """One periodic observation of engine state."""

    sim_time: float
    pending_events: int
    cancelled_pending: int
    events_processed: int
    wall_seconds: float


class SimProfiler:
    """Per-run event accounting and heap sampling.

    Typical use::

        sim = Simulator()
        profiler = SimProfiler(sim, sample_interval=1e-3)
        profiler.start()
        ...build scenario, sim.run(until=...)...
        profiler.stop()
        print(profiler.report())
    """

    def __init__(self, sim: Simulator, sample_interval: float = 1e-3):
        self.sim = sim
        self.counters: Dict[str, int] = {}
        self.samples: List[HeapSample] = []
        self._task = PeriodicTask(sim, sample_interval, self._sample)
        self._wall_start: Optional[float] = None
        self._wall_elapsed = 0.0
        self._events_start = 0
        self._events_at_stop: Optional[int] = None
        sim.profiler = self

    # -- counters (the hot-path entry point) ------------------------------

    def count(self, category: str, n: int = 1) -> None:
        """Add ``n`` occurrences of ``category`` (creates it on first use)."""
        counters = self.counters
        counters[category] = counters.get(category, 0) + n

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin wall-clock accounting and periodic heap sampling."""
        if self._wall_start is not None:
            return
        self._wall_start = _time.perf_counter()
        self._events_start = self.sim.events_processed
        self._events_at_stop = None
        self._task.start()

    def stop(self) -> None:
        """Freeze the wall clock and stop sampling.  Idempotent."""
        self._task.stop()
        if self._wall_start is not None:
            self._wall_elapsed += _time.perf_counter() - self._wall_start
            self._wall_start = None
            self._events_at_stop = self.sim.events_processed

    def detach(self) -> None:
        """Stop and disconnect from the simulator's hot-path hook."""
        self.stop()
        if self.sim.profiler is self:
            self.sim.profiler = None

    def _sample(self) -> None:
        sim = self.sim
        self.samples.append(HeapSample(
            sim_time=sim.now,
            pending_events=sim.pending_events,
            cancelled_pending=sim.cancelled_pending,
            events_processed=sim.events_processed,
            wall_seconds=self._wall(),
        ))

    # -- derived views -----------------------------------------------------

    def _wall(self) -> float:
        elapsed = self._wall_elapsed
        if self._wall_start is not None:
            elapsed += _time.perf_counter() - self._wall_start
        return elapsed

    @property
    def events_executed(self) -> int:
        """Events executed between :meth:`start` and :meth:`stop` (or now)."""
        end = self._events_at_stop
        if end is None:
            end = self.sim.events_processed
        return end - self._events_start

    def events_per_second(self) -> float:
        """Executed events per wall-clock second over the profiled span."""
        wall = self._wall()
        if wall <= 0.0:
            return 0.0
        return self.events_executed / wall

    @property
    def max_pending_events(self) -> int:
        """Largest sampled heap size (0 when nothing was sampled)."""
        if not self.samples:
            return 0
        return max(sample.pending_events for sample in self.samples)

    def report(self) -> str:
        """Plain-text summary of counters, throughput and heap behaviour."""
        sim = self.sim
        lines = ["simulation profile"]
        lines.append(f"  events executed : {self.events_executed}")
        lines.append(f"  events/sec      : {self.events_per_second():,.0f}")
        lines.append(f"  heap compactions: {sim.compactions}")
        lines.append(f"  cancelled in heap: {sim.cancelled_pending}")
        if self.counters:
            lines.append("  event categories:")
            for category in sorted(self.counters):
                lines.append(f"    {category:8s}: {self.counters[category]}")
        if self.samples:
            pendings = [sample.pending_events for sample in self.samples]
            lines.append(
                f"  heap size       : min {min(pendings)} / "
                f"mean {sum(pendings) / len(pendings):.0f} / "
                f"max {max(pendings)} over {len(pendings)} samples"
            )
        return "\n".join(lines)
