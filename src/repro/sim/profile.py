"""Lightweight observability for simulation runs.

A :class:`SimProfiler` attaches to one :class:`~repro.sim.engine.Simulator`
(via ``sim.profiler``) and collects three kinds of data:

- **per-category event counters** — hot-path components report coarse
  categories through :meth:`SimProfiler.count`: the port datapath reports
  ``"tx"`` per transmitted packet, the DCTCP sender reports ``"timer"``
  per retransmission timeout and ``"pacing"`` per pacing stall;
- **heap-size-over-time samples** — a
  :class:`~repro.sim.timers.PeriodicTask` records
  ``(sim_time, pending_events, cancelled_pending, events_processed,
  wall_seconds)`` every ``sample_interval`` simulated seconds, which is
  how benchmarks assert the engine's heap compaction keeps
  ``pending_events`` bounded;
- **events/sec** — executed events divided by wall-clock time between
  :meth:`start` and :meth:`stop`;
- **engine tier split and pool hit rate** — how many executed events
  came from the timing-wheel vs. heap tier, and what fraction of packet
  acquisitions the packet free-list pool served without allocating
  (both deltas over the profiled span).

The component hooks cost one attribute load and a None check per event
when no profiler is attached, so profiling is safe to leave compiled in.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, NamedTuple, Optional

from .engine import Simulator
from .timers import PeriodicTask

__all__ = ["HeapSample", "SimProfiler"]


class HeapSample(NamedTuple):
    """One periodic observation of engine state."""

    sim_time: float
    pending_events: int
    cancelled_pending: int
    events_processed: int
    wall_seconds: float


class SimProfiler:
    """Per-run event accounting and heap sampling.

    Typical use::

        sim = Simulator()
        profiler = SimProfiler(sim, sample_interval=1e-3)
        profiler.start()
        ...build scenario, sim.run(until=...)...
        profiler.stop()
        print(profiler.report())
    """

    def __init__(self, sim: Simulator, sample_interval: float = 1e-3):
        self.sim = sim
        self.counters: Dict[str, int] = {}
        self.samples: List[HeapSample] = []
        self._task = PeriodicTask(sim, sample_interval, self._sample)
        self._wall_start: Optional[float] = None
        self._wall_elapsed = 0.0
        self._events_start = 0
        self._events_at_stop: Optional[int] = None
        self._wheel_start = 0
        self._wheel_at_stop: Optional[int] = None
        self._heap_start = 0
        self._heap_at_stop: Optional[int] = None
        self._pool_start = (0, 0)
        self._pool_at_stop: Optional[tuple] = None
        sim.profiler = self

    # -- counters (the hot-path entry point) ------------------------------

    def count(self, category: str, n: int = 1) -> None:
        """Add ``n`` occurrences of ``category`` (creates it on first use)."""
        counters = self.counters
        counters[category] = counters.get(category, 0) + n

    # -- lifecycle ---------------------------------------------------------

    @staticmethod
    def _pool_counters() -> tuple:
        from ..net.packet import POOL
        return (POOL.allocated, POOL.reused)

    def start(self) -> None:
        """Begin wall-clock accounting and periodic heap sampling."""
        if self._wall_start is not None:
            return
        self._wall_start = _time.perf_counter()
        self._events_start = self.sim.events_processed
        self._events_at_stop = None
        self._wheel_start = self.sim.wheel_events_processed
        self._wheel_at_stop = None
        self._heap_start = self.sim.heap_events_processed
        self._heap_at_stop = None
        self._pool_start = self._pool_counters()
        self._pool_at_stop = None
        self._task.start()

    def stop(self) -> None:
        """Freeze the wall clock and stop sampling.  Idempotent."""
        self._task.stop()
        if self._wall_start is not None:
            self._wall_elapsed += _time.perf_counter() - self._wall_start
            self._wall_start = None
            self._events_at_stop = self.sim.events_processed
            self._wheel_at_stop = self.sim.wheel_events_processed
            self._heap_at_stop = self.sim.heap_events_processed
            self._pool_at_stop = self._pool_counters()

    def detach(self) -> None:
        """Stop and disconnect from the simulator's hot-path hook."""
        self.stop()
        if self.sim.profiler is self:
            self.sim.profiler = None

    def _sample(self) -> None:
        sim = self.sim
        self.samples.append(HeapSample(
            sim_time=sim.now,
            pending_events=sim.pending_events,
            cancelled_pending=sim.cancelled_pending,
            events_processed=sim.events_processed,
            wall_seconds=self._wall(),
        ))

    # -- derived views -----------------------------------------------------

    def _wall(self) -> float:
        elapsed = self._wall_elapsed
        if self._wall_start is not None:
            elapsed += _time.perf_counter() - self._wall_start
        return elapsed

    @property
    def events_executed(self) -> int:
        """Events executed between :meth:`start` and :meth:`stop` (or now)."""
        end = self._events_at_stop
        if end is None:
            end = self.sim.events_processed
        return end - self._events_start

    def events_per_second(self) -> float:
        """Executed events per wall-clock second over the profiled span."""
        wall = self._wall()
        if wall <= 0.0:
            return 0.0
        return self.events_executed / wall

    @property
    def wheel_events_executed(self) -> int:
        """Events executed out of the timing-wheel tier over the span."""
        end = self._wheel_at_stop
        if end is None:
            end = self.sim.wheel_events_processed
        return end - self._wheel_start

    @property
    def heap_events_executed(self) -> int:
        """Events executed out of the heap tier over the span."""
        end = self._heap_at_stop
        if end is None:
            end = self.sim.heap_events_processed
        return end - self._heap_start

    def pool_hit_rate(self) -> float:
        """Fraction of packet acquisitions served from the free pool
        over the profiled span (0.0 when no packet was acquired)."""
        end = self._pool_at_stop
        if end is None:
            end = self._pool_counters()
        allocated = end[0] - self._pool_start[0]
        reused = end[1] - self._pool_start[1]
        total = allocated + reused
        if total == 0:
            return 0.0
        return reused / total

    @property
    def max_pending_events(self) -> int:
        """Largest sampled heap size (0 when nothing was sampled)."""
        if not self.samples:
            return 0
        return max(sample.pending_events for sample in self.samples)

    def report(self) -> str:
        """Plain-text summary of counters, throughput and heap behaviour."""
        sim = self.sim
        lines = ["simulation profile"]
        lines.append(f"  events executed : {self.events_executed}")
        lines.append(f"  events/sec      : {self.events_per_second():,.0f}")
        executed = self.events_executed
        if executed:
            wheel = self.wheel_events_executed
            heap = self.heap_events_executed
            lines.append(
                f"  tier split      : wheel {wheel} "
                f"({100.0 * wheel / executed:.1f}%) / heap {heap} "
                f"({100.0 * heap / executed:.1f}%)"
            )
        lines.append(f"  pool hit rate   : {100.0 * self.pool_hit_rate():.1f}%")
        lines.append(f"  heap compactions: {sim.compactions}")
        lines.append(f"  cancelled in heap: {sim.cancelled_pending}")
        if self.counters:
            lines.append("  event categories:")
            for category in sorted(self.counters):
                lines.append(f"    {category:8s}: {self.counters[category]}")
        if self.samples:
            pendings = [sample.pending_events for sample in self.samples]
            lines.append(
                f"  heap size       : min {min(pendings)} / "
                f"mean {sum(pendings) / len(pendings):.0f} / "
                f"max {max(pendings)} over {len(pendings)} samples"
            )
        return "\n".join(lines)
