"""Discrete-event simulation engine (event loop, timers, deterministic RNG)."""

from .engine import Event, SimulationError, Simulator
from .audit import FabricAuditor, InvariantViolation, audit_enabled, set_audit_default
from .faults import (FAULT_MODELS, FaultScheduler, FaultSpec, faults_enabled,
                     loss_spec, set_fault_default)
from .profile import HeapSample, SimProfiler
from .rng import make_rng, spawn, stable_hash
from .timers import PeriodicTask, Timer

__all__ = [
    "Event",
    "FAULT_MODELS",
    "FabricAuditor",
    "FaultScheduler",
    "FaultSpec",
    "HeapSample",
    "InvariantViolation",
    "PeriodicTask",
    "SimProfiler",
    "SimulationError",
    "Simulator",
    "Timer",
    "audit_enabled",
    "faults_enabled",
    "loss_spec",
    "make_rng",
    "set_audit_default",
    "set_fault_default",
    "spawn",
    "stable_hash",
]
