"""Discrete-event simulation engine (event loop, timers, deterministic RNG)."""

from .engine import Event, SimulationError, Simulator
from .profile import HeapSample, SimProfiler
from .rng import make_rng, spawn, stable_hash
from .timers import PeriodicTask, Timer

__all__ = [
    "Event",
    "HeapSample",
    "PeriodicTask",
    "SimProfiler",
    "SimulationError",
    "Simulator",
    "Timer",
    "make_rng",
    "spawn",
    "stable_hash",
]
