"""Conservative-lookahead sharded execution of one Clos scenario.

The fabric is partitioned at leaf/pod boundaries into ``N`` shards.
Every shard *rebuilds the full fabric* deterministically (construction
is cheap and keeps all RNG draws, flow ids, and device names identical
to a single-process run), computes the same :class:`ShardPlan` from
device names, and then *cuts* every link whose destination lives in a
different shard:

* the link's ``delay`` is zeroed and its ``dst`` rebound to a
  :class:`BoundaryStub`, so the capture fires in the **same lookahead
  window** as the original ``deliver()`` call;
* the stub recomputes the neighbour-side arrival as
  ``sim.now + wire_delay`` — bit-identical float arithmetic to the
  single-process ``sim.now + link.delay`` — and appends a plain-tuple
  export entry to the destination shard's outbox;
* loss/corruption models still classify at ``deliver()`` time, before
  the stub, so per-link fault streams are byte-identical.

Synchronisation is classic conservative windowed lookahead (LBTS with
null messages): the window ``W`` is the *minimum* boundary-link delay,
so any packet exported during round ``k`` (simulated time
``[kW, (k+1)W)``) arrives at time ``>= (k+1)W`` and can be injected at
the round-``k`` barrier before any shard has advanced past it.  Empty
batches double as null messages.  Imports are merged in sorted
``(arrival, link_name, link_seq)`` order, which makes results
reproducible at any shard count and on both the serial and the
multiprocessing executor.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.packet import POOL, release
from ..net.topology import Network, partition_groups
from .engine import Simulator

__all__ = [
    "ShardPlan",
    "plan_shards",
    "BoundaryStub",
    "CutFabric",
    "ShardScenario",
    "ShardResult",
    "ShardedSimulator",
    "SYNC_TIMEOUT_ENV",
]

#: Seconds a worker waits on its inbox before declaring the fleet dead.
SYNC_TIMEOUT_ENV = "REPRO_SHARD_SYNC_TIMEOUT"
_DEFAULT_SYNC_TIMEOUT = 300.0

# Export-entry tuple layout (plain tuples cross process boundaries
# cheaply and unambiguously):
#   (arrival_time, link_name, link_seq, kind, flow_id, src, dst, seq,
#    size, service, ect, ce, ece, ack_seq, echo_time, sent_time,
#    retransmit)
Entry = Tuple[Any, ...]


# ---------------------------------------------------------------------------
# Partitioning


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic device→shard assignment for one built fabric.

    Computed purely from device *names* and the host→leaf wiring, so
    every process that builds the same fabric derives the same plan.
    """

    n_shards: int
    #: switch name -> owning shard.
    switch_owner: Dict[str, int]
    #: host id -> owning shard (a host follows its leaf switch).
    host_owner: Dict[int, int]
    #: boundary link name -> (src shard, dst shard, wire delay).
    boundary: Dict[str, Tuple[int, int, float]]
    #: Conservative lookahead window: min boundary-link delay (seconds).
    lookahead: float

    def local_hosts(self, shard_id: int) -> set:
        return {h for h, o in self.host_owner.items() if o == shard_id}


_POD_OF_EDGE = re.compile(r"^edge(\d+)_\d+$")
_POD_OF_AGG = re.compile(r"^agg(\d+)_\d+$")


def plan_shards(network: Network, n_shards: int) -> ShardPlan:
    """Partition a built fabric into ``n_shards`` leaf/pod-aligned shards.

    Partitioning rules:

    * host-facing groups (pods in a 3-tier Clos, individual leaves in a
      2-tier one) are assigned contiguously: group ``g`` of ``G`` goes
      to shard ``(g * n_shards) // G``;
    * hosts follow their leaf switch;
    * ``agg{p}_{j}`` aggregation switches follow pod ``p``;
    * remaining switches (spines/cores) are spread round-robin in
      construction order: switch ``i`` of ``S`` to ``(i*n_shards)//S``.

    Raises ``ValueError`` when ``n_shards`` exceeds the group count or
    any boundary link has a non-positive delay (zero lookahead would
    deadlock the conservative protocol).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    groups = partition_groups(network)
    if n_shards > len(groups):
        raise ValueError(
            f"cannot split {len(groups)} leaf/pod groups into "
            f"{n_shards} shards; lower --shards to <= {len(groups)}")

    switch_owner: Dict[str, int] = {}
    pod_owner: Dict[str, int] = {}
    for gi, group in enumerate(groups):
        owner = (gi * n_shards) // len(groups)
        for switch in group:
            switch_owner[switch.name] = owner
            match = _POD_OF_EDGE.match(switch.name)
            if match:
                pod_owner[match.group(1)] = owner

    # Aggregation switches stay with their pod; everything else
    # (spines, cores, unknown names) is spread deterministically.
    rest = [sw for sw in network.switches if sw.name not in switch_owner]
    spread: List[Any] = []
    for switch in rest:
        match = _POD_OF_AGG.match(switch.name)
        if match and match.group(1) in pod_owner:
            switch_owner[switch.name] = pod_owner[match.group(1)]
        else:
            spread.append(switch)
    for index, switch in enumerate(spread):
        switch_owner[switch.name] = (index * n_shards) // len(spread)

    host_owner: Dict[int, int] = {}
    for host in network.hosts:
        leaf = host.nic.link.dst
        host_owner[host.host_id] = switch_owner[leaf.name]

    def device_owner(device: Any) -> int:
        name = getattr(device, "name", None)
        if name in switch_owner:
            return switch_owner[name]
        host_id = getattr(device, "host_id", None)
        if host_id in host_owner:
            return host_owner[host_id]
        raise ValueError(f"cannot determine shard owner of {device!r}")

    boundary: Dict[str, Tuple[int, int, float]] = {}
    for switch in network.switches:
        src_owner = switch_owner[switch.name]
        for port in switch.ports:
            link = port.link
            if link is None or link.dst is None:
                continue
            dst_owner = device_owner(link.dst)
            if dst_owner == src_owner:
                continue
            if link.delay <= 0.0:
                raise ValueError(
                    f"boundary link {link.name} has delay {link.delay}; "
                    "conservative sharding needs positive lookahead")
            boundary[link.name] = (src_owner, dst_owner, link.delay)
    # Host NICs point at the host's own leaf by construction, so they
    # are never boundary links; assert the invariant cheaply.
    for host in network.hosts:
        nic = host.nic
        if nic is not None and nic.link is not None:
            leaf = nic.link.dst
            if switch_owner[leaf.name] != host_owner[host.host_id]:
                raise ValueError(
                    f"{host.name} is wired to a leaf in another shard")

    lookahead = min((d for _, _, d in boundary.values()), default=0.0)
    return ShardPlan(n_shards=n_shards, switch_owner=switch_owner,
                     host_owner=host_owner, boundary=boundary,
                     lookahead=lookahead)


# ---------------------------------------------------------------------------
# Fabric surgery


class BoundaryStub:
    """Receives packets at a cut link and captures them as export entries.

    The owning link has been re-pointed (``link.dst = stub``) with its
    delay zeroed, so :meth:`receive` fires at the exact simulated time
    ``deliver()`` ran; the stub recomputes the neighbour-side arrival
    with the original wire delay and releases the packet back to the
    pool.
    """

    __slots__ = ("fabric", "link_name", "wire_delay", "dst_owner", "seq")

    def __init__(self, fabric: "CutFabric", link_name: str,
                 wire_delay: float, dst_owner: int):
        self.fabric = fabric
        self.link_name = link_name
        self.wire_delay = wire_delay
        self.dst_owner = dst_owner
        self.seq = 0

    def receive(self, packet: Any) -> None:
        fabric = self.fabric
        arrival = fabric.sim._now + self.wire_delay
        self.seq += 1
        fabric.outboxes[self.dst_owner].append((
            arrival, self.link_name, self.seq, packet.kind, packet.flow_id,
            packet.src, packet.dst, packet.seq, packet.size, packet.service,
            packet.ect, packet.ce, packet.ece, packet.ack_seq,
            packet.echo_time, packet.sent_time, packet.retransmit))
        fabric.exported += 1
        release(packet)


class _DeadEnd:
    """Trap destination for links that should never carry traffic."""

    __slots__ = ("link_name",)

    def __init__(self, link_name: str):
        self.link_name = link_name

    def receive(self, packet: Any) -> None:
        raise RuntimeError(
            f"packet reached fully-remote link {self.link_name}; "
            "a flow was wired onto a device this shard does not own")


class CutFabric:
    """One shard's view of the fabric: full build, non-local links cut.

    * Links whose destination is non-local and whose transmitter *is*
      local become export points (``BoundaryStub``).
    * Links arriving from another shard keep their destination; the
      original dst device is recorded in :attr:`import_map` so inbound
      entries can be injected as direct ``device.receive`` events.
    * Fully-remote links get a :class:`_DeadEnd` trap.
    """

    def __init__(self, sim: Simulator, network: Network, plan: ShardPlan,
                 shard_id: int):
        if not 0 <= shard_id < plan.n_shards:
            raise ValueError(f"shard_id {shard_id} out of range")
        self.sim = sim
        self.network = network
        self.plan = plan
        self.shard_id = shard_id
        self.local_host_ids = plan.local_hosts(shard_id)
        #: peer shard -> pending export entries for the current round.
        self.outboxes: Dict[int, List[Entry]] = {
            peer: [] for peer in range(plan.n_shards) if peer != shard_id}
        #: boundary link name -> local dst device for inbound injection.
        self.import_map: Dict[str, Any] = {}
        self.exported = 0
        self.imported = 0
        self.sync_rounds = 0
        self._cut(network, plan, shard_id)
        sim.barrier_hook = self._on_barrier

    def _cut(self, network: Network, plan: ShardPlan, shard_id: int) -> None:
        owner = plan.switch_owner
        for switch in network.switches:
            src_owner = owner[switch.name]
            for port in switch.ports:
                link = port.link
                if link is None or link.dst is None:
                    continue
                spec = plan.boundary.get(link.name)
                if spec is None:
                    # Shard-internal link: leave intact (even if fully
                    # remote — nothing will traverse it).
                    continue
                link_src, link_dst, delay = spec
                if link_dst == shard_id:
                    # Inbound boundary: keep dst, record injection target.
                    self.import_map[link.name] = link.dst
                elif link_src == shard_id:
                    link.delay = 0.0
                    link.dst = BoundaryStub(self, link.name, delay, link_dst)
                else:
                    link.delay = 0.0
                    link.dst = _DeadEnd(link.name)

    def _on_barrier(self, lbts: float) -> None:
        self.sync_rounds += 1

    def take_outboxes(self) -> Dict[int, List[Entry]]:
        """Drain and return this round's per-peer export batches."""
        out = {peer: batch for peer, batch in self.outboxes.items() if batch}
        for peer in self.outboxes:
            self.outboxes[peer] = []
        return out

    def inject(self, entries: List[Entry]) -> None:
        """Schedule inbound entries in deterministic merge order.

        Entries are sorted by ``(arrival, link_name, link_seq)`` and
        scheduled in that order, so the engine's monotone event sequence
        numbers reproduce the same tie-break at any shard count.
        """
        if not entries:
            return
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        sim = self.sim
        import_map = self.import_map
        for (when, link_name, _link_seq, kind, flow_id, src, dst, seq,
             size, service, ect, ce, ece, ack_seq, echo_time, sent_time,
             retransmit) in entries:
            packet = POOL.acquire(kind, flow_id, src, dst, seq, size,
                                  service, ect)
            packet.ce = ce
            packet.ece = ece
            packet.ack_seq = ack_seq
            packet.echo_time = echo_time
            packet.sent_time = sent_time
            packet.retransmit = retransmit
            device = import_map[link_name]
            sim.at(when, device.receive, packet)
            self.imported += 1

    def sync_auditor(self) -> None:
        """Copy export/import counters onto the attached auditor."""
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.external_exported = self.exported
            auditor.external_imported = self.imported
            auditor.local_host_ids = self.local_host_ids


# ---------------------------------------------------------------------------
# Scenario protocol


@dataclass
class ShardScenario:
    """Everything the round driver needs from one shard's experiment.

    ``total_units`` is the fleet-wide completion target (e.g. total flow
    count); ``None`` means "run to the deadline" (fixed-duration
    scenarios).  ``completed`` counts locally-finished units; each unit
    must be counted by exactly one shard.  ``finalize`` runs after the
    last round and returns a *picklable* payload for the parent.
    """

    sim: Simulator
    fabric: CutFabric
    deadline: float
    total_units: Optional[int]
    completed: Callable[[], int]
    finalize: Callable[[], Any]


@dataclass
class ShardResult:
    """Per-shard outcome: experiment payload plus runtime statistics."""

    shard_id: int
    payload: Any
    stats: Dict[str, Any] = field(default_factory=dict)


def _scenario_stats(scenario: ShardScenario, rounds: int,
                    blocked_s: float, wall_s: float) -> Dict[str, Any]:
    sim = scenario.sim
    fabric = scenario.fabric
    return {
        "events_processed": sim.events_processed,
        "wheel_events_processed": sim.wheel_events_processed,
        "heap_events_processed": sim.heap_events_processed,
        "cancelled_pending": sim.cancelled_pending,
        "exported": fabric.exported,
        "imported": fabric.imported,
        "sync_rounds": rounds,
        "blocked_s": blocked_s,
        "wall_s": wall_s,
    }


def _round_targets(k: int, lookahead: float,
                   deadline: float) -> Tuple[float, bool]:
    target = (k + 1) * lookahead
    final = target >= deadline
    return (deadline if final else target), final


# ---------------------------------------------------------------------------
# Serial (in-process) executor — reference implementation


def _run_serial(builder: Callable[[int, int], ShardScenario],
                n_shards: int) -> List[ShardResult]:
    start = _time.perf_counter()
    scenarios = [builder(shard_id, n_shards) for shard_id in range(n_shards)]
    lookahead = scenarios[0].fabric.plan.lookahead
    total_units = scenarios[0].total_units
    k = 0
    while True:
        final = False
        for scenario in scenarios:
            until, final = _round_targets(k, lookahead, scenario.deadline)
            scenario.sim.run_until_lbts(until, inclusive=final)
        outs = [s.fabric.take_outboxes() for s in scenarios]
        dones = [s.completed() for s in scenarios]
        inbound: List[List[Entry]] = [[] for _ in range(n_shards)]
        for out in outs:
            for peer, batch in out.items():
                inbound[peer].extend(batch)
        for shard_id, scenario in enumerate(scenarios):
            scenario.fabric.inject(inbound[shard_id])
        k += 1
        if final or (total_units is not None
                     and sum(dones) >= total_units):
            break
    wall = _time.perf_counter() - start
    results = []
    for shard_id, scenario in enumerate(scenarios):
        payload = scenario.finalize()
        results.append(ShardResult(
            shard_id, payload,
            _scenario_stats(scenario, k, 0.0, wall)))
    return results


# ---------------------------------------------------------------------------
# Multiprocessing executor


def _worker_loop(shard_id: int, n_shards: int,
                 builder: Callable[[int, int], ShardScenario],
                 inboxes: List[Any], results: Any,
                 sync_timeout: float) -> None:
    try:
        start = _time.perf_counter()
        scenario = builder(shard_id, n_shards)
        lookahead = scenario.fabric.plan.lookahead
        total_units = scenario.total_units
        inbox = inboxes[shard_id]
        peers = [p for p in range(n_shards) if p != shard_id]
        pending: Dict[int, List[Tuple[int, List[Entry], int]]] = {}
        blocked = 0.0
        k = 0
        while True:
            until, final = _round_targets(k, lookahead, scenario.deadline)
            scenario.sim.run_until_lbts(until, inclusive=final)
            out = scenario.fabric.take_outboxes()
            local_done = scenario.completed()
            for peer in peers:
                inboxes[peer].put(
                    (shard_id, k, out.get(peer, []), local_done))
            got = pending.pop(k, [])
            wait_start = _time.perf_counter()
            while len(got) < n_shards - 1:
                peer, round_k, batch, done = inbox.get(timeout=sync_timeout)
                if round_k == k:
                    got.append((peer, batch, done))
                else:
                    pending.setdefault(round_k, []).append(
                        (peer, batch, done))
            blocked += _time.perf_counter() - wait_start
            merged: List[Entry] = []
            global_done = local_done
            for _peer, batch, done in got:
                merged.extend(batch)
                global_done += done
            scenario.fabric.inject(merged)
            k += 1
            if final or (total_units is not None
                         and global_done >= total_units):
                break
        wall = _time.perf_counter() - start
        payload = scenario.finalize()
        results.put((shard_id, payload,
                     _scenario_stats(scenario, k, blocked, wall)))
    except BaseException:
        results.put((shard_id, None, traceback.format_exc()))


def _run_process(builder: Callable[[int, int], ShardScenario],
                 n_shards: int, sync_timeout: float) -> List[ShardResult]:
    ctx = multiprocessing.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(n_shards)]
    results_q = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker_loop,
            args=(shard_id, n_shards, builder, inboxes, results_q,
                  sync_timeout),
            daemon=False)
        for shard_id in range(n_shards)
    ]
    for worker in workers:
        worker.start()
    results: List[ShardResult] = []
    failure: Optional[Tuple[int, str]] = None
    try:
        for _ in range(n_shards):
            shard_id, payload, stats = results_q.get(timeout=sync_timeout)
            if payload is None and isinstance(stats, str):
                failure = (shard_id, stats)
                break
            results.append(ShardResult(shard_id, payload, stats))
    finally:
        for worker in workers:
            if failure is not None and worker.is_alive():
                worker.terminate()
            worker.join(timeout=30.0)
        for queue in [*inboxes, results_q]:
            queue.close()
            queue.cancel_join_thread()
    if failure is not None:
        raise RuntimeError(
            f"shard {failure[0]} failed:\n{failure[1]}")
    results.sort(key=lambda r: r.shard_id)
    return results


# ---------------------------------------------------------------------------
# Orchestrator


class ShardedSimulator:
    """Run one scenario across ``n_shards`` conservative-lookahead shards.

    ``builder(shard_id, n_shards)`` must deterministically construct
    that shard's :class:`ShardScenario` — typically: build the full
    fabric, ``plan_shards``, ``CutFabric``, wire only local flows, and
    return the scenario with a picklable ``finalize``.

    ``executor`` selects how shards run: ``"serial"`` interleaves all
    shards round-by-round in this process (the reference
    implementation — byte-identical results, no speedup), ``"process"``
    forks one worker per shard, and ``"auto"`` picks ``process`` when
    fork is available, falling back to ``serial`` when worker processes
    cannot be created (results are identical either way).
    """

    def __init__(self, n_shards: int,
                 builder: Callable[[int, int], ShardScenario],
                 executor: str = "auto",
                 sync_timeout: Optional[float] = None):
        if n_shards < 2:
            raise ValueError("ShardedSimulator needs n_shards >= 2; "
                             "run single-process for shards=1")
        if executor not in ("auto", "serial", "process"):
            raise ValueError(f"unknown executor {executor!r}")
        self.n_shards = n_shards
        self.builder = builder
        self.executor = executor
        if sync_timeout is None:
            sync_timeout = float(os.environ.get(
                SYNC_TIMEOUT_ENV, _DEFAULT_SYNC_TIMEOUT))
        self.sync_timeout = sync_timeout

    def run(self) -> List[ShardResult]:
        mode = self.executor
        if mode == "auto":
            mode = ("process"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else "serial")
        if mode == "process":
            try:
                return _run_process(self.builder, self.n_shards,
                                    self.sync_timeout)
            except (OSError, PermissionError):
                # Sandboxes that forbid fork: the serial executor
                # produces identical results, just without the speedup.
                return _run_serial(self.builder, self.n_shards)
        return _run_serial(self.builder, self.n_shards)


def aggregate_shard_stats(results: List[ShardResult]) -> Dict[str, Any]:
    """Fleet-wide provenance block: totals plus per-shard counters."""
    totals = {
        "events_processed": 0,
        "exported": 0,
        "imported": 0,
    }
    per_shard = []
    sync_rounds = 0
    blocked_s = 0.0
    for result in results:
        stats = result.stats
        totals["events_processed"] += stats.get("events_processed", 0)
        totals["exported"] += stats.get("exported", 0)
        totals["imported"] += stats.get("imported", 0)
        sync_rounds = max(sync_rounds, stats.get("sync_rounds", 0))
        blocked_s += stats.get("blocked_s", 0.0)
        per_shard.append({"shard": result.shard_id, **stats})
    return {
        "n": len(results),
        **totals,
        "sync_rounds": sync_rounds,
        "blocked_s": blocked_s,
        "per_shard": per_shard,
    }
