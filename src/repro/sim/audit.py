"""Runtime invariant auditor — cross-layer conservation checking.

Every paper figure is a ratio of counters kept *independently* by ports,
schedulers, pools, links, hosts and transports.  The auditor attaches
validators across those layers and raises a structured
:class:`InvariantViolation` — naming the counter, the two disagreeing
views, and the event that diverged them — at the first event where any
two views disagree, instead of letting a silent accounting bug skew a
result by a few percent.

Validators
----------

- **packet/byte conservation** (per port): packets seen entering by the
  enqueue listener minus packets seen leaving by the dequeue listener
  must equal the port's occupancy delta, and the port's cumulative
  ``tx_packets``/``drops`` must match the listener counts.
- **port ↔ link conservation**: every transmitted packet is either
  delivered or lost by the attached link.
- **link drop accounting** (chaos runs): every packet a link loses —
  downed wire, injected loss model, CRC corruption, killed in flight by
  ``set_down`` — is reported through :meth:`FabricAuditor.on_link_drop`
  with a reason, and the per-reason ledger must always sum to the
  link's ``packets_lost`` delta, so no injected drop is ever double- or
  un-counted.
- **port ↔ scheduler occupancy**: ``Port._queue_packets[i]`` must equal
  the scheduler's actual queue depth plus the in-service packet (store-
  and-forward: the packet being serialized left the scheduler but still
  occupies the buffer).
- **pool debit/credit balance**: a shared pool's count must equal the
  sum over its audited member ports (plus any residual recorded when the
  members were attached).
- **shared-buffer conservation** (fabric-wide): for a
  :class:`~repro.net.sharedbuf.SharedBuffer`, the switch-wide totals
  must equal the sum of every per-port account at all times (Σ per-port
  debits == pool occupancy), each account must equal its own port's
  occupancy (credits happen exactly once, on tx/drop/reset), and the
  totals may never exceed the configured capacity.
- **transport invariants** (per watched flow): ``snd_una`` is monotone
  and never exceeds ``next_seq``; ``cwnd >= 1``; Karn's rule — an ACK of
  a retransmitted segment changes no RTT state; the receiver's
  cumulative point never regresses; ECE on an ACK implies the receiver
  actually observed CE (``marked_packets > 0``).
- **ECN legality** (per hop): CE without ECT is always illegal, and a
  packet that enters a port unmarked may leave it marked only if that
  port's marker marks at dequeue.
- **marker threshold boundary**: a marker's tunable thresholds may only
  change through the :meth:`~repro.ecn.base.Marker.set_thresholds`
  staging surface, whose commits land at packet boundaries and bump
  ``threshold_epoch``.  Thresholds that differ between two datapath
  events without an epoch bump — e.g. mutated raw between a packet's
  enqueue decision and its dequeue decision — are a violation.
- **engine hygiene**: a port whose ``_tx_event`` is cancelled or no
  longer in the heap (the wedged-port state left behind by
  :meth:`~repro.sim.engine.Simulator.clear` without
  :meth:`~repro.net.port.Port.reset`) is reported at its next datapath
  event; a ``scheduler.clear()`` that bypasses ``Port.reset`` (leaving
  port counters pointing at discarded packets) is caught through the
  scheduler's ``clear_observer`` hook.

Zero cost when disabled
-----------------------

All checks ride existing listener lists and observer slots; when no
auditor is constructed, no hook is installed anywhere — the engine and
port hot paths are untouched (the only added cost in the whole codebase
is one ``None`` check in ``Simulator.clear`` and one per ``open_flow``).

Usage::

    sim = Simulator()
    auditor = FabricAuditor(sim)
    network = single_bottleneck(sim, ...)
    auditor.attach_network(network)       # ports + hosts + switches
    ...                                   # open_flow auto-watches flows
    sim.run(until=0.1)
    auditor.verify_fabric()               # final global conservation pass

The experiments runner (``run_incast`` / ``run_fct_point``) and the CLI
(``--audit``) wire this up automatically; :func:`set_audit_default`
flips the process-wide default the runners consult.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..net.port import Port
    from ..net.topology import Network
    from ..transport.endpoints import FlowHandle
    from .engine import Simulator

__all__ = ["InvariantViolation", "FabricAuditor", "audit_enabled",
           "set_audit_default"]


#: Process-wide default consulted by experiment runners whose ``audit``
#: argument is None.  The CLI's ``--audit`` flag flips it for a command.
_AUDIT_DEFAULT = False


def set_audit_default(enabled: bool) -> None:
    """Set the process-wide audit default (what ``--audit`` toggles)."""
    global _AUDIT_DEFAULT
    _AUDIT_DEFAULT = bool(enabled)


def audit_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve an experiment's ``audit`` argument against the default."""
    if flag is None:
        return _AUDIT_DEFAULT
    return bool(flag)


class InvariantViolation(AssertionError):
    """Two independent views of one counter disagree.

    Structured fields:

    - ``counter``: the invariant that broke (e.g. ``"queue-occupancy"``).
    - ``subject``: the object it broke on (port/pool/flow name).
    - ``view_a`` / ``view_b``: ``(view_name, value)`` pairs — the two
      bookkeepers that disagree.
    - ``event``: the datapath event that diverged them.
    - ``time``: simulation time of that event.
    """

    def __init__(
        self,
        counter: str,
        subject: str,
        view_a: Tuple[str, Any],
        view_b: Tuple[str, Any],
        event: str,
        time: float,
    ):
        self.counter = counter
        self.subject = subject
        self.view_a = view_a
        self.view_b = view_b
        self.event = event
        self.time = time
        super().__init__(
            f"[t={time:.9f}] {counter} violated at {subject} "
            f"during {event}: {view_a[0]}={view_a[1]!r} vs "
            f"{view_b[0]}={view_b[1]!r}"
        )


class _PortAudit:
    """Per-port listener counters and attach-time baselines."""

    __slots__ = (
        "enq_packets", "enq_bytes", "tx_packets", "tx_bytes", "drops",
        "base_occ_packets", "base_occ_bytes", "base_tx_packets",
        "base_tx_bytes", "base_drops", "base_delivered", "base_lost",
        "attach_delivered", "transit_ce", "link_drops",
        "marker_epoch", "marker_thresholds",
    )

    def __init__(self, port: "Port"):
        self.enq_packets = 0
        self.enq_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.drops = 0
        #: drop reason -> count, fed by ``FabricAuditor.on_link_drop``;
        #: must always sum to the link's ``packets_lost`` delta.
        self.link_drops: Dict[str, int] = {}
        self.rebaseline(port)
        #: Link deliveries at attach time.  Unlike ``base_delivered``
        #: this is never re-anchored by a port reset: the fabric-wide
        #: conservation equation compares against the host/switch
        #: baselines, which are also attach-time quantities.
        self.attach_delivered = port.link.packets_delivered
        #: packet uid -> CE bit observed at enqueue, for packets
        #: currently buffered in this port (bounded by occupancy).
        self.transit_ce: Dict[int, bool] = {}

    def rebaseline(self, port: "Port") -> None:
        """Re-anchor all baselines at the port's current counters."""
        self.enq_packets = self.enq_bytes = 0
        self.tx_packets = self.tx_bytes = 0
        self.drops = 0
        self.base_occ_packets = port._packet_count
        self.base_occ_bytes = port._byte_count
        self.base_tx_packets = port.tx_packets
        self.base_tx_bytes = port.tx_bytes
        self.base_drops = port.drops
        self.base_delivered = port.link.packets_delivered
        self.base_lost = port.link.packets_lost
        self.link_drops.clear()
        #: Marker threshold snapshot + epoch: values that change while
        #: the epoch stands still were mutated behind the staging
        #: surface (the ``marker-threshold-boundary`` rule).
        self.marker_epoch = port.marker.threshold_epoch
        self.marker_thresholds = port.marker.thresholds()


class FabricAuditor:
    """Opt-in cross-layer invariant checker for one simulator.

    Construct it right after the :class:`~repro.sim.engine.Simulator`
    (it installs itself as ``sim.auditor``), attach the fabric with
    :meth:`attach_network` (or individual ports with
    :meth:`attach_port`), and call :meth:`verify_fabric` after the run.
    Flows opened through
    :func:`~repro.transport.endpoints.open_flow` while the auditor is
    installed are watched automatically.
    """

    def __init__(self, sim: "Simulator"):
        if sim.auditor is not None:
            raise ValueError("simulator already has an auditor attached")
        self.sim = sim
        sim.auditor = self
        self._ports: "Dict[Port, _PortAudit]" = {}
        #: link -> owning audited port, for the drop-accounting channel.
        self._link_ports: Dict[Any, "Port"] = {}
        #: Drops reported by links no audited port owns (bare-link
        #: tests); counted but not cross-checked.
        self.unattached_link_drops = 0
        #: pool -> (packet residual, byte residual) at member attach time.
        self._pool_residuals: Dict[Any, Tuple[int, int]] = {}
        #: Switch-wide SharedBuffers discovered behind port accounts.
        self._shared_buffers: List[Any] = []
        self._hosts: List[Any] = []
        self._switches: List[Any] = []
        self._base_host_received: List[int] = []
        self._base_switch_forwarded: List[int] = []
        #: Total individual invariant checks evaluated (for reporting).
        self.checks = 0
        #: Flows being watched (count only; handlers are closures).
        self.flows_watched = 0
        #: ``Simulator.clear`` calls observed.
        self.clears_observed = 0
        #: Packets handed to another shard (captured at a boundary stub).
        self.external_exported = 0
        #: Packets injected from another shard's export batch.
        self.external_imported = 0
        #: When sharded, the host ids owned by this shard; ``None`` means
        #: the whole fabric is local (single-process run).
        self.local_host_ids: Optional[set] = None

    # -- attachment --------------------------------------------------------

    def attach_port(self, port: "Port") -> None:
        """Install listeners on one port and record its baselines."""
        if port in self._ports:
            return
        self._ports[port] = _PortAudit(port)
        self._link_ports[port.link] = port
        port.enqueue_listeners.append(self._on_enqueue)
        port.dequeue_listeners.append(self._on_dequeue)
        port.drop_listeners.append(self._on_drop)
        port.scheduler.clear_observer = (
            lambda _port=port: self._on_scheduler_clear(_port)
        )
        if port.pool is not None:
            self._rebalance_pool(port.pool)
            shared = getattr(port.pool, "shared", None)
            if shared is not None and shared not in self._shared_buffers:
                self._shared_buffers.append(shared)

    def attach_network(self, network: "Network") -> None:
        """Attach every switch port and host NIC of a built topology."""
        for switch in network.switches:
            self._switches.append(switch)
            self._base_switch_forwarded.append(switch.forwarded)
            for port in switch.ports:
                self.attach_port(port)
        for host in network.hosts:
            self._hosts.append(host)
            self._base_host_received.append(host.received_packets)
            if host.nic is not None:
                self.attach_port(host.nic)

    def watch_flow(self, handle: "FlowHandle") -> None:
        """Wrap one flow's endpoint handlers with transport validators.

        Called automatically by ``open_flow`` when an auditor is
        installed.  Senders without the DCTCP window interface (e.g.
        rate-based DCQCN wired through its own opener) are skipped.
        """
        sender = handle.sender
        receiver = handle.receiver
        if not hasattr(sender, "snd_una"):
            return
        flow_id = handle.flow.flow_id
        name = f"flow{flow_id}"
        # Under sharding the data-path receiver may live in another
        # shard; the local mirror never sees CE marks, so the ecn-echo
        # cross-check would false-positive on remote-receiver flows.
        receiver_local = (self.local_host_ids is None
                          or handle.flow.dst in self.local_host_ids)

        def audited_on_ack(ack, _s=sender, _r=receiver, _name=name,
                           _rl=receiver_local):
            prev_una = _s.snd_una
            prev_rtt_state = (_s.last_rtt, _s.srtt, _s.rto)
            _s.on_ack(ack)
            self.checks += 1
            event = f"ack(ack_seq={ack.ack_seq})"
            if _rl and ack.ece and _r.marked_packets == 0:
                self._fail("ecn-echo", _name,
                           ("ack.ece", True),
                           ("receiver.marked_packets", 0), event)
            if ack.retransmit and (_s.last_rtt, _s.srtt,
                                   _s.rto) != prev_rtt_state:
                self._fail("karn-rtt-sample", _name,
                           ("rtt state before", prev_rtt_state),
                           ("rtt state after retransmitted ack",
                            (_s.last_rtt, _s.srtt, _s.rto)), event)
            if _s.snd_una < prev_una:
                self._fail("snd_una-monotone", _name,
                           ("snd_una before", prev_una),
                           ("snd_una after", _s.snd_una), event)
            if _s.snd_una > _s.next_seq:
                self._fail("snd_una<=next_seq", _name,
                           ("snd_una", _s.snd_una),
                           ("next_seq", _s.next_seq), event)
            if _s.cwnd < 1.0:
                self._fail("cwnd>=1", _name,
                           ("cwnd", _s.cwnd), ("floor", 1.0), event)

        def audited_on_data(packet, _r=receiver, _name=name):
            prev_expected = _r.expected_seq
            _r.on_data(packet)
            self.checks += 1
            if _r.expected_seq < prev_expected:
                self._fail("receiver-cumulative-monotone", _name,
                           ("expected_seq before", prev_expected),
                           ("expected_seq after", _r.expected_seq),
                           f"data(seq={packet.seq})")

        sender.host.register_flow(flow_id, ack_handler=audited_on_ack)
        receiver.host.register_flow(flow_id, data_handler=audited_on_data)
        self.flows_watched += 1

    def watch_receiver(self, flow, receiver) -> None:
        """Wrap a receiver-only wiring (sharded run, sender elsewhere)."""
        name = f"flow{flow.flow_id}"

        def audited_on_data(packet, _r=receiver, _name=name):
            prev_expected = _r.expected_seq
            _r.on_data(packet)
            self.checks += 1
            if _r.expected_seq < prev_expected:
                self._fail("receiver-cumulative-monotone", _name,
                           ("expected_seq before", prev_expected),
                           ("expected_seq after", _r.expected_seq),
                           f"data(seq={packet.seq})")

        receiver.host.register_flow(flow.flow_id,
                                    data_handler=audited_on_data)
        self.flows_watched += 1

    def detach(self) -> None:
        """Remove all port hooks and release the ``sim.auditor`` slot.

        Flow handler wrappers stay registered (they only re-enter the
        original endpoints plus cheap comparisons).
        """
        for port in self._ports:
            for listeners, hook in (
                (port.enqueue_listeners, self._on_enqueue),
                (port.dequeue_listeners, self._on_dequeue),
                (port.drop_listeners, self._on_drop),
            ):
                if hook in listeners:
                    listeners.remove(hook)
            port.scheduler.clear_observer = None
        self._ports.clear()
        self._link_ports.clear()
        if self.sim.auditor is self:
            self.sim.auditor = None

    # -- event hooks -------------------------------------------------------

    def _on_enqueue(self, port: "Port", queue_index: int, packet) -> None:
        state = self._ports[port]
        # Audited packets are exempt from pool recycling: the transit
        # ledger cross-checks their fields between enqueue and dequeue,
        # which a reused object would silently falsify.
        packet.pinned = True
        state.enq_packets += 1
        state.enq_bytes += packet.size
        event = f"enqueue(queue={queue_index}, pkt={packet.uid})"
        if packet.ce and not packet.ect:
            self._fail("ecn-legality", port.name,
                       ("packet.ce", True), ("packet.ect", False), event)
        state.transit_ce[packet.uid] = packet.ce
        self._check_port(port, state, event)

    def _on_dequeue(self, port: "Port", queue_index: int, packet) -> None:
        state = self._ports[port]
        state.tx_packets += 1
        state.tx_bytes += packet.size
        event = f"dequeue(queue={queue_index}, pkt={packet.uid})"
        if packet.ce and not packet.ect:
            self._fail("ecn-legality", port.name,
                       ("packet.ce", True), ("packet.ect", False), event)
        entry_ce = state.transit_ce.pop(packet.uid, None)
        if entry_ce is False and packet.ce:
            from ..ecn.base import MarkPoint
            if port.marker.mark_point is not MarkPoint.DEQUEUE:
                self._fail(
                    "ce-without-marker", port.name,
                    ("CE set between enqueue and dequeue", True),
                    (f"marker {type(port.marker).__name__} mark_point",
                     port.marker.mark_point.value), event)
        self._check_port(port, state, event)

    def _on_drop(self, port: "Port", queue_index: int, packet) -> None:
        state = self._ports[port]
        state.drops += 1
        event = f"drop(queue={queue_index}, pkt={packet.uid})"
        buffer_full = (port.buffer_packets is not None
                       and port._packet_count >= port.buffer_packets)
        pool_reject = (port.pool is not None
                       and not port.pool.admits(port._packet_count))
        if not (buffer_full or pool_reject):
            self._fail("unjustified-drop", port.name,
                       ("occupancy", port._packet_count),
                       ("buffer_packets", port.buffer_packets), event)
        self._check_port(port, state, event)

    def on_link_drop(self, link, packet, reason: str) -> None:
        """A link dropped ``packet`` for ``reason`` (chaos channel).

        Called by :meth:`repro.net.link.Link.deliver` (downed wire,
        loss-model drop, CRC corruption) and by its delivery completion
        (in-flight kill after ``set_down``) right after the link's own
        counters were charged.  The per-reason ledger must therefore
        already agree with the cumulative ``packets_lost`` delta — a
        disagreement means a drop was double- or un-counted.
        """
        port = self._link_ports.get(link)
        if port is None:
            self.unattached_link_drops += 1
            return
        state = self._ports[port]
        state.link_drops[reason] = state.link_drops.get(reason, 0) + 1
        self.checks += 1
        lost = link.packets_lost - state.base_lost
        ledger = sum(state.link_drops.values())
        if ledger != lost:
            self._fail("link-drop-ledger", link.name,
                       ("drop reports by reason", ledger),
                       ("link.packets_lost delta", lost),
                       f"link_drop(reason={reason}, pkt={packet.uid})")

    def _on_scheduler_clear(self, port: "Port") -> None:
        """``Scheduler.clear`` fired — legal only via ``Port.reset``.

        ``Port.reset`` zeroes the port's occupancy counters (and cancels
        the in-service transmission) *before* clearing the scheduler, so
        at this point a legitimate reset shows an empty port.  A direct
        ``scheduler.clear()`` mid-traffic leaves the port counting
        packets the scheduler just discarded.
        """
        state = self._ports.get(port)
        if state is None:
            return
        self.checks += 1
        tx = port._tx_event
        in_service = 1 if (tx is not None and not tx.cancelled
                           and tx.scheduled) else 0
        if port._packet_count != in_service:
            self._fail(
                "scheduler-cleared-under-port", port.name,
                ("port packet_count", port._packet_count),
                ("scheduler depth + in-service", in_service),
                "scheduler.clear()")

    def on_port_reset(self, port: "Port") -> None:
        """``Port.reset`` completed: re-anchor this port's baselines.

        Reset discards buffered packets without dequeue events, so the
        listener ledgers are re-anchored at the (now empty) port state;
        cumulative counters are preserved by reset and re-baselined.
        """
        state = self._ports.get(port)
        if state is None:
            return
        state.rebaseline(port)
        state.transit_ce.clear()

    def on_clear(self) -> None:
        """``Simulator.clear`` notification (engine hygiene).

        Clearing mid-run legitimately precedes ``Port.reset``, so no
        violation is raised here; instead every audited port's next
        datapath event checks ``_tx_event`` liveness and reports a
        wedged port that was reused without reset.
        """
        self.clears_observed += 1

    # -- validators --------------------------------------------------------

    def _fail(self, counter: str, subject: str, view_a: Tuple[str, Any],
              view_b: Tuple[str, Any], event: str) -> None:
        raise InvariantViolation(counter, subject, view_a, view_b, event,
                                 self.sim.now)

    def _check_port(self, port: "Port", state: _PortAudit,
                    event: str) -> None:
        self.checks += 1
        name = port.name
        # Engine hygiene: the in-service completion event must be live.
        tx = port._tx_event
        in_service_queue = None
        if tx is not None:
            if tx.cancelled or not tx.scheduled:
                self._fail(
                    "engine-hygiene", name,
                    ("port._tx_event", "cancelled/unscheduled"),
                    ("expected", "live heap or wheel entry (reset the "
                     "port after Simulator.clear)"), event)
            else:
                in_service_queue = tx.args[0]
        # Port-internal consistency: total vs per-queue sums.
        queue_sum = sum(port._queue_packets)
        if port._packet_count != queue_sum:
            self._fail("port-occupancy", name,
                       ("port._packet_count", port._packet_count),
                       ("sum(port._queue_packets)", queue_sum), event)
        byte_sum = sum(port._queue_bytes)
        if port._byte_count != byte_sum:
            self._fail("port-occupancy-bytes", name,
                       ("port._byte_count", port._byte_count),
                       ("sum(port._queue_bytes)", byte_sum), event)
        # Port vs scheduler: queue depth + the in-service packet.
        scheduler = port.scheduler
        for i in range(scheduler.n_queues):
            expected = scheduler.queue_len(i) + (
                1 if i == in_service_queue else 0)
            if port._queue_packets[i] != expected:
                self._fail(
                    "queue-occupancy", f"{name}[q{i}]",
                    (f"port._queue_packets[{i}]", port._queue_packets[i]),
                    ("scheduler depth + in-service", expected), event)
        # Packet/byte conservation: enqueued - transmitted == buffered.
        buffered = port._packet_count - state.base_occ_packets
        if state.enq_packets - state.tx_packets != buffered:
            self._fail(
                "packet-conservation", name,
                ("enqueued - transmitted",
                 state.enq_packets - state.tx_packets),
                ("occupancy delta", buffered), event)
        buffered_bytes = port._byte_count - state.base_occ_bytes
        if state.enq_bytes - state.tx_bytes != buffered_bytes:
            self._fail(
                "byte-conservation", name,
                ("enqueued - transmitted bytes",
                 state.enq_bytes - state.tx_bytes),
                ("byte occupancy delta", buffered_bytes), event)
        # Cumulative counters vs listener ledger.
        if port.tx_packets - state.base_tx_packets != state.tx_packets:
            self._fail("tx-counter", name,
                       ("port.tx_packets delta",
                        port.tx_packets - state.base_tx_packets),
                       ("dequeue events seen", state.tx_packets), event)
        if port.tx_bytes - state.base_tx_bytes != state.tx_bytes:
            self._fail("tx-bytes-counter", name,
                       ("port.tx_bytes delta",
                        port.tx_bytes - state.base_tx_bytes),
                       ("dequeued bytes seen", state.tx_bytes), event)
        if port.drops - state.base_drops != state.drops:
            self._fail("drop-counter", name,
                       ("port.drops delta", port.drops - state.base_drops),
                       ("drop events seen", state.drops), event)
        # Threshold boundary: a marker's tunable parameters may change
        # only through a set_thresholds() commit, which lands at a
        # packet boundary and bumps threshold_epoch.  Values that
        # differ from the last event's snapshot at an *unchanged* epoch
        # were mutated raw — mid-packet, between a packet's enqueue
        # decision and its dequeue decision, the decisions disagree
        # about which scheme was in force.
        marker = port.marker
        epoch = marker.threshold_epoch
        if epoch != state.marker_epoch:
            state.marker_epoch = epoch
            state.marker_thresholds = marker.thresholds()
        else:
            live = marker.thresholds()
            if live != state.marker_thresholds:
                self._fail("marker-threshold-boundary", name,
                           ("thresholds at last boundary commit",
                            state.marker_thresholds),
                           ("thresholds now (no epoch bump)", live), event)
        # Port vs link: transmitted == delivered + lost.
        link = port.link
        delivered = link.packets_delivered - state.base_delivered
        lost = link.packets_lost - state.base_lost
        if port.tx_packets - state.base_tx_packets != delivered + lost:
            self._fail("link-conservation", name,
                       ("port.tx_packets delta",
                        port.tx_packets - state.base_tx_packets),
                       ("link delivered + lost", delivered + lost), event)
        # Drop accounting: every loss has exactly one reported reason.
        ledger = sum(state.link_drops.values())
        if ledger != lost:
            self._fail("link-drop-ledger", name,
                       ("drop reports by reason", ledger),
                       ("link.packets_lost delta", lost), event)
        # Pool debit/credit balance.
        if port.pool is not None:
            self._check_pool(port.pool, event)
            shared = getattr(port.pool, "shared", None)
            if shared is not None:
                self._check_shared(shared, event)

    def _member_sums(self, pool) -> Tuple[int, int]:
        packets = bytes_ = 0
        for port in self._ports:
            if port.pool is pool:
                packets += port._packet_count
                bytes_ += port._byte_count
        return packets, bytes_

    def _rebalance_pool(self, pool) -> None:
        """Record the pool residual not explained by audited members."""
        packets, bytes_ = self._member_sums(pool)
        self._pool_residuals[pool] = (pool.packet_count - packets,
                                      pool.byte_count - bytes_)

    def _check_pool(self, pool, event: str) -> None:
        self.checks += 1
        residual_packets, residual_bytes = self._pool_residuals[pool]
        packets, bytes_ = self._member_sums(pool)
        if pool.packet_count != packets + residual_packets:
            self._fail("pool-balance", pool.name,
                       ("pool.packet_count", pool.packet_count),
                       ("sum of member ports + residual",
                        packets + residual_packets), event)
        if pool.byte_count != bytes_ + residual_bytes:
            self._fail("pool-balance-bytes", pool.name,
                       ("pool.byte_count", pool.byte_count),
                       ("sum of member ports + residual",
                        bytes_ + residual_bytes), event)

    def _check_shared(self, shared, event: str) -> None:
        """Fabric-wide conservation for one switch-wide SharedBuffer.

        Σ per-port account debits must equal the pool's totals at every
        event (a packet credited twice — the old ``Port.reset`` bypass —
        or never credited diverges them immediately), and the totals may
        never exceed the configured capacity.  The companion per-account
        rule (account == its port's own occupancy) rides the generic
        :meth:`_check_pool` run on each member account.
        """
        self.checks += 1
        packets = sum(a.packet_count for a in shared.accounts)
        bytes_ = sum(a.byte_count for a in shared.accounts)
        if shared.packet_count != packets:
            self._fail("sharedbuf-conservation", shared.name,
                       ("shared.packet_count", shared.packet_count),
                       ("sum of port accounts", packets), event)
        if shared.byte_count != bytes_:
            self._fail("sharedbuf-conservation-bytes", shared.name,
                       ("shared.byte_count", shared.byte_count),
                       ("sum of port accounts", bytes_), event)
        if shared.packet_count > shared.capacity_packets:
            self._fail("sharedbuf-capacity", shared.name,
                       ("shared.packet_count", shared.packet_count),
                       ("capacity_packets", shared.capacity_packets),
                       event)

    # -- on-demand verification -------------------------------------------

    def verify_port(self, port: "Port") -> None:
        """Run the full per-port validator set right now."""
        self._check_port(port, self._ports[port], "verify_port")

    def verify_fabric(self) -> int:
        """Verify every attached port, pool, and global conservation.

        Global conservation over the audited fabric: every packet a link
        delivered was received by a host or forwarded by a switch, up to
        the packets still propagating (in flight).  In-flight can never
        be negative, and must be exactly zero once the event heap holds
        no live events.  Returns the cumulative check count.
        """
        for port, state in self._ports.items():
            self._check_port(port, state, "verify_fabric")
        for pool in self._pool_residuals:
            self._check_pool(pool, "verify_fabric")
        for shared in self._shared_buffers:
            self._check_shared(shared, "verify_fabric")
        if self._hosts or self._switches:
            self.checks += 1
            delivered = sum(
                port.link.packets_delivered - state.attach_delivered
                for port, state in self._ports.items())
            received = sum(
                host.received_packets - base for host, base in
                zip(self._hosts, self._base_host_received))
            forwarded = sum(
                switch.forwarded - base for switch, base in
                zip(self._switches, self._base_switch_forwarded))
            # Sharded runs: packets captured at a boundary stub were
            # delivered here but consumed elsewhere (exported), and
            # injected packets are consumed here without a local
            # delivery (imported).
            in_flight = (delivered + self.external_imported
                         - received - forwarded - self.external_exported)
            if in_flight < 0:
                self._fail("global-conservation", "fabric",
                           ("links delivered", delivered),
                           ("hosts received + switches forwarded",
                            received + forwarded), "verify_fabric")
            sim = self.sim
            quiescent = sim.pending_events - sim.cancelled_pending == 0
            if quiescent and in_flight != 0:
                self._fail("global-conservation", "fabric",
                           ("packets in flight", in_flight),
                           ("live events pending", 0), "verify_fabric")
        return self.checks

    def report(self) -> str:
        """One-line plain-text summary (mirrors ``SimProfiler.report``)."""
        return (f"audit: {self.checks} checks over {len(self._ports)} "
                f"ports, {self.flows_watched} flows watched, "
                f"0 violations")
