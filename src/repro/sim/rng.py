"""Deterministic random-number plumbing.

Every scenario owns exactly one root :class:`numpy.random.Generator`
seeded from the scenario seed.  Components that need independent streams
(workload generator, ECMP hashing salt, per-flow jitter) derive child
generators through :func:`spawn`, so adding a new consumer never perturbs
the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterator

import numpy as np

__all__ = ["make_rng", "spawn", "stable_hash", "stable_digest"]

_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def make_rng(seed: int) -> np.random.Generator:
    """Create the root generator for a scenario."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int = 1) -> Iterator[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    for seed_seq in rng.bit_generator.seed_seq.spawn(n):  # type: ignore[attr-defined]
        yield np.random.default_rng(seed_seq)


def stable_hash(*parts: int) -> int:
    """A fast, deterministic 64-bit mix of integers.

    Python's built-in ``hash`` is salted per process for strings and must
    not be used for ECMP path selection (runs would not be reproducible).
    This is a splitmix64-style finalizer over the parts.
    """
    acc = 0
    for part in parts:
        acc = (acc + (part & _MASK64) + _GOLDEN64) & _MASK64
        acc ^= acc >> 30
        acc = (acc * 0xBF58476D1CE4E5B9) & _MASK64
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & _MASK64
        acc ^= acc >> 31
    return acc


def _canonical(value: Any) -> Any:
    """Reduce a value to the JSON-stable subset ``stable_digest`` hashes.

    Mappings are key-sorted, sequences become lists, and anything outside
    str/int/float/bool/None is rejected rather than hashed by repr — an
    unhashable-by-accident object must fail loudly, not silently change
    the digest between releases.
    """
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(f"stable_digest keys must be str, got "
                                f"{type(key)!r}")
            out[key] = _canonical(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"not stable-hashable: {type(value)!r}")


def stable_digest(value: Any) -> str:
    """A process-independent SHA-256 hex digest of a JSON-able value.

    The run store keys every experiment point by this digest of its
    canonicalized :class:`~repro.store.ExperimentSpec`; the same spec must
    hash identically in every worker process, on every platform and at
    every ``--jobs`` level.  Canonical form: sorted dict keys, tuples as
    lists, floats via ``repr`` (exact for round-tripping doubles), no
    whitespace.  Python's salted ``hash()`` must never leak in here.
    """
    blob = json.dumps(_canonical(value), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()
