"""Deterministic random-number plumbing.

Every scenario owns exactly one root :class:`numpy.random.Generator`
seeded from the scenario seed.  Components that need independent streams
(workload generator, ECMP hashing salt, per-flow jitter) derive child
generators through :func:`spawn`, so adding a new consumer never perturbs
the draws seen by existing ones.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["make_rng", "spawn", "stable_hash"]

_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def make_rng(seed: int) -> np.random.Generator:
    """Create the root generator for a scenario."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int = 1) -> Iterator[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    for seed_seq in rng.bit_generator.seed_seq.spawn(n):  # type: ignore[attr-defined]
        yield np.random.default_rng(seed_seq)


def stable_hash(*parts: int) -> int:
    """A fast, deterministic 64-bit mix of integers.

    Python's built-in ``hash`` is salted per process for strings and must
    not be used for ECMP path selection (runs would not be reproducible).
    This is a splitmix64-style finalizer over the parts.
    """
    acc = 0
    for part in parts:
        acc = (acc + (part & _MASK64) + _GOLDEN64) & _MASK64
        acc ^= acc >> 30
        acc = (acc * 0xBF58476D1CE4E5B9) & _MASK64
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & _MASK64
        acc ^= acc >> 31
    return acc
