"""Restartable timers on top of the event engine.

Transport protocols need timers that are continually pushed back (a
retransmission timer is re-armed by every ACK).  Cancelling and
re-scheduling a raw :class:`~repro.sim.engine.Event` works, but the
pattern is error-prone; :class:`Timer` packages it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Timer", "PeriodicTask"]


class Timer:
    """A single-shot, restartable timer.

    ``restart(delay)`` cancels any armed instance and arms a new one.
    The callback fires at most once per arm.

    Pushing the expiry *later* — the overwhelmingly common case: a
    retransmission timer is pushed back by every ACK — performs **no heap
    operation at all**: the existing engine event is kept at its earlier
    time and only the true deadline is updated.  When that stale event
    fires early, the timer silently re-arms for the remaining interval.
    At most one extra no-op event per push-back sequence reaches the heap,
    instead of one cancelled entry per ``restart``.
    """

    __slots__ = ("_sim", "_callback", "_event", "_deadline")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self._deadline = 0.0

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when not armed."""
        if self.armed:
            return self._deadline
        return None

    def restart(self, delay: float) -> None:
        """(Re-)arm the timer ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot arm a timer {delay} seconds in the past"
            )
        sim = self._sim
        deadline = sim.now + delay
        event = self._event
        if event is not None and not event.cancelled:
            if deadline >= event.time:
                # Push-back: keep the heap entry, move the real deadline.
                self._deadline = deadline
                return
            event.cancel()
        self._deadline = deadline
        self._event = sim.at(deadline, self._fire)

    def cancel(self) -> None:
        """Disarm without firing.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if self._deadline > self._sim.now:
            # Stale early wake-up from a lazily pushed-back restart:
            # re-arm for the remainder instead of firing.
            self._event = self._sim.at(self._deadline, self._fire)
            return
        self._event = None
        self._callback()


class PeriodicTask:
    """Runs a callback every ``interval`` seconds until stopped.

    Used by metrics samplers (queue-occupancy traces, throughput bins).
    The first invocation happens ``interval`` seconds after :meth:`start`.
    """

    __slots__ = ("_sim", "_callback", "_interval", "_event", "_stopped")

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], Any]):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._sim = sim
        self._callback = callback
        self._interval = interval
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        if not self._stopped:
            return
        self._stopped = False
        self._event = self._sim.schedule(self._interval, self._tick)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._event = self._sim.schedule(self._interval, self._tick)
