"""Deterministic fault injection — the chaos layer.

The paper evaluates PMSB on a pristine fabric, but its core claim —
flows in un-congested queues are protected from collateral ECN
back-off — is exactly the property worth stress-testing when links
lose, corrupt, or flap packets.  This module injects those faults
*deterministically*: every loss draw comes from a dedicated seeded RNG
stream (one per faulted link, derived via :mod:`repro.sim.rng` from the
experiment seed, the spec's salt and the link name), so a chaos run is
exactly as reproducible as a clean one — byte-identical across worker
counts, across resume, and across the fast/slow engine paths.

Fault models
------------

- ``"iid-loss"`` — independent Bernoulli loss at probability ``rate``
  per packet (the classic random-loss wire).
- ``"gilbert-elliott"`` — the two-state burst-loss channel: transitions
  good→bad with probability ``p`` and bad→good with ``r`` per packet,
  losing packets with probability ``h`` in the bad state and ``k`` in
  the good state.  Every packet consumes exactly two draws (one
  transition, one loss), so the stream stays aligned regardless of
  outcomes.
- ``"crc-corrupt"`` — the packet is corrupted on the wire with
  probability ``rate`` and discarded by the *receiving* port after full
  propagation (a CRC check happens on arrival, not at the transmitter).
  The loss is charged to the link the moment the corruption is decided
  so counters never go backwards.
- ``"flap"`` — a timed down/up schedule (no RNG): the link goes down at
  ``start + down`` and back up at ``start + up``, repeating every
  ``period`` seconds (0 = once) until ``stop``.

Loss models attach to :class:`~repro.net.link.Link` objects (the link
consults ``link.fault`` per delivered packet); flaps drive the existing
``set_down``/``set_up`` hooks through simulator events.  A
:class:`FaultScheduler` owns the specs, resolves link selectors against
a built :class:`~repro.net.topology.Network`, installs/uninstalls loss
models at their ``start``/``stop`` times, and reports per-link drop
statistics afterwards.

Determinism guarantees
----------------------

- Draws happen at ``Link.deliver()`` time, and the engine fires
  delivery events in an identical order on the optimized and
  ``REPRO_SLOW_PATH`` reference paths, so both paths see identical loss
  patterns.
- Per-link streams are derived as
  ``stable_hash(seed, spec.salt, sha256(link.name))`` — independent of
  process, platform, worker count and attachment order.
- :meth:`FaultSpec.to_param` renders a spec as nested tuples of JSON
  scalars, so specs hash into
  :class:`~repro.store.ExperimentSpec` params and chaos sweeps
  cache/resume byte-identically.
"""

from __future__ import annotations

import fnmatch
from dataclasses import asdict, dataclass, fields
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Tuple,
                    TYPE_CHECKING)

from .engine import Simulator
from .rng import make_rng, stable_digest, stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from ..net.link import Link
    from ..net.topology import Network

__all__ = [
    "FAULT_MODELS",
    "FaultScheduler",
    "FaultSpec",
    "faults_enabled",
    "loss_spec",
    "set_fault_default",
]

#: Recognized fault models (``FaultSpec.model`` values).
FAULT_MODELS = ("iid-loss", "gilbert-elliott", "crc-corrupt", "flap")

#: ``classify()`` verdicts consumed by :meth:`repro.net.link.Link.deliver`.
DELIVER = 0
DROP_WIRE = 1
DROP_CRC = 2


# -- fault specification ------------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """One fault, declaratively: what, where, when, and which RNG salt.

    A spec is pure data (hashable, JSON-able via :meth:`to_param`), so
    it can ride inside an :class:`~repro.store.ExperimentSpec` — two
    runs with equal specs and seeds replay identical faults.

    Fields not used by a model keep their defaults and are validated
    only where meaningful (e.g. ``rate`` for ``iid-loss`` and
    ``crc-corrupt``; ``p/r/h/k`` for ``gilbert-elliott``; ``down``,
    ``up`` and ``period`` for ``flap``).
    """

    model: str
    #: Link selector: an ``fnmatch`` pattern over link names (see
    #: :mod:`repro.net.topology` for the naming convention, e.g.
    #: ``"sw0->recv"``, ``"leaf*->spine*"``), or the special selector
    #: ``"bottleneck"`` for the network's bottleneck link.
    links: str = "*"
    #: Loss/corruption probability per packet (iid-loss, crc-corrupt).
    rate: float = 0.0
    #: Gilbert-Elliott transition and loss probabilities.
    p: float = 0.0
    r: float = 0.0
    h: float = 1.0
    k: float = 0.0
    #: Flap schedule, relative to ``start``: down at ``start + down``,
    #: up at ``start + up``, repeating every ``period`` seconds (0 =
    #: one flap only).
    down: float = 0.0
    up: float = 0.0
    period: float = 0.0
    #: Active window in simulated seconds; ``stop=None`` means forever.
    start: float = 0.0
    stop: Optional[float] = None
    #: Extra RNG salt: two otherwise-identical specs with different
    #: salts draw from independent streams.
    salt: int = 0

    def __post_init__(self):
        if self.model not in FAULT_MODELS:
            raise ValueError(f"unknown fault model {self.model!r}; "
                             f"choose from {FAULT_MODELS}")
        if self.model in ("iid-loss", "crc-corrupt"):
            if not 0.0 <= self.rate <= 1.0:
                raise ValueError(f"{self.model}: rate must be in [0, 1], "
                                 f"got {self.rate!r}")
        if self.model == "gilbert-elliott":
            for name in ("p", "r", "h", "k"):
                value = getattr(self, name)
                if not 0.0 <= value <= 1.0:
                    raise ValueError(f"gilbert-elliott: {name} must be in "
                                     f"[0, 1], got {value!r}")
        if self.model == "flap":
            if self.down < 0.0 or self.up <= self.down:
                raise ValueError("flap: need 0 <= down < up "
                                 f"(got down={self.down!r}, up={self.up!r})")
            if self.period != 0.0 and self.period < self.up:
                raise ValueError("flap: period must be 0 (one flap) or "
                                 ">= up, got {self.period!r}")
        if self.start < 0.0:
            raise ValueError(f"start cannot be negative: {self.start!r}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(f"stop ({self.stop!r}) must be after start "
                             f"({self.start!r}) or None")

    def to_param(self) -> Tuple[Tuple[str, Any], ...]:
        """Canonical nested-tuple form for ``ExperimentSpec`` params.

        Sorted ``(field, value)`` pairs of JSON scalars — stable under
        :func:`~repro.sim.rng.stable_digest` and recoverable through
        the store's canonical round trip (:meth:`from_param`).
        """
        return tuple(sorted(asdict(self).items()))

    @classmethod
    def from_param(cls, pairs: Iterable[Sequence[Any]]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_param` output (tuples or the
        JSON lists a stored record round-trips them into)."""
        data = {str(key): value for key, value in pairs}
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI spelling ``model:key=value,key=value``.

        Example: ``iid-loss:rate=0.001,links=leaf*->spine*``.  Values
        are coerced by field: ``links`` stays a string, ``salt`` is an
        int, ``stop=none`` means forever, everything else is a float.
        """
        model, _, body = text.partition(":")
        model = model.strip()
        kwargs: Dict[str, Any] = {}
        if body.strip():
            for item in body.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or not key:
                    raise ValueError(
                        f"bad fault option {item!r} in {text!r} "
                        f"(expected key=value)")
                if key == "links":
                    kwargs[key] = value
                elif key == "salt":
                    kwargs[key] = int(value)
                elif key == "stop" and value.lower() in ("none", "inf"):
                    kwargs[key] = None
                else:
                    kwargs[key] = float(value)
        try:
            return cls(model=model, **kwargs)
        except TypeError as exc:
            raise ValueError(f"bad fault spec {text!r}: {exc}") from None


def loss_spec(model: str, rate: float, links: str = "*",
              salt: int = 0) -> FaultSpec:
    """A loss-model spec with one knob: the average per-packet loss rate.

    For ``iid-loss`` and ``crc-corrupt`` this is simply ``rate``.  For
    ``gilbert-elliott`` the burst shape is fixed (recovery ``r`` = 0.25,
    bad-state loss ``h`` = 0.5, good-state loss ``k`` = 0) and ``p`` is
    solved so the stationary loss probability ``h·p/(p+r)`` equals
    ``rate`` — chaos sweeps compare models at matched average loss.
    """
    if model == "flap":
        raise ValueError("loss_spec() builds loss models; construct flap "
                         "FaultSpecs directly")
    if model == "gilbert-elliott":
        r, h = 0.25, 0.5
        if not 0.0 <= rate < h:
            raise ValueError(f"gilbert-elliott average loss must be in "
                             f"[0, {h}), got {rate!r}")
        p = rate * r / (h - rate) if rate > 0.0 else 0.0
        return FaultSpec(model=model, links=links, p=p, r=r, h=h, k=0.0,
                         salt=salt)
    return FaultSpec(model=model, links=links, rate=rate, salt=salt)


# -- process-wide default (the CLI's --faults flag) ---------------------------

_FAULT_DEFAULT: Tuple[FaultSpec, ...] = ()


def set_fault_default(specs: Sequence[FaultSpec]) -> None:
    """Set the process-wide fault default (what ``--faults`` toggles).

    Experiment runners whose ``faults`` argument is None inject these
    specs into every fabric they build — the same pattern as
    :func:`~repro.sim.audit.set_audit_default`.
    """
    global _FAULT_DEFAULT
    _FAULT_DEFAULT = tuple(specs)


def faults_enabled(
    specs: Optional[Sequence[FaultSpec]] = None,
) -> Tuple[FaultSpec, ...]:
    """Resolve an experiment's ``faults`` argument against the default."""
    if specs is None:
        return _FAULT_DEFAULT
    return tuple(specs)


# -- runtime loss models ------------------------------------------------------

class _IidLoss:
    """Independent Bernoulli loss: one draw per packet."""

    __slots__ = ("rng", "rate")

    def __init__(self, rng, rate: float):
        self.rng = rng
        self.rate = rate

    def classify(self) -> int:
        return DROP_WIRE if self.rng.random() < self.rate else DELIVER


class _GilbertElliott:
    """Two-state burst loss.  Exactly two draws per packet (transition
    then loss) so the stream never decoheres between outcomes."""

    __slots__ = ("rng", "p", "r", "h", "k", "bad")

    def __init__(self, rng, p: float, r: float, h: float, k: float):
        self.rng = rng
        self.p = p
        self.r = r
        self.h = h
        self.k = k
        self.bad = False

    def classify(self) -> int:
        rng = self.rng
        transition = rng.random()
        if self.bad:
            if transition < self.r:
                self.bad = False
        elif transition < self.p:
            self.bad = True
        loss = self.h if self.bad else self.k
        return DROP_WIRE if rng.random() < loss else DELIVER


class _CrcCorruption:
    """Wire corruption: decided per packet, discarded at the receiving
    port after full propagation."""

    __slots__ = ("rng", "rate")

    def __init__(self, rng, rate: float):
        self.rng = rng
        self.rate = rate

    def classify(self) -> int:
        return DROP_CRC if self.rng.random() < self.rate else DELIVER


def _build_model(spec: FaultSpec, rng):
    if spec.model == "iid-loss":
        return _IidLoss(rng, spec.rate)
    if spec.model == "gilbert-elliott":
        return _GilbertElliott(rng, spec.p, spec.r, spec.h, spec.k)
    if spec.model == "crc-corrupt":
        return _CrcCorruption(rng, spec.rate)
    raise ValueError(f"{spec.model!r} is not a loss model")


def _link_token(name: str) -> int:
    """A process-stable 64-bit token for a link name (never ``hash``)."""
    return int(stable_digest(name)[:16], 16)


def network_links(network: "Network") -> List["Link"]:
    """Every link of a built topology, in deterministic build order
    (switch ports first, then host NICs)."""
    links: List["Link"] = []
    for switch in network.switches:
        for port in switch.ports:
            links.append(port.link)
    for host in network.hosts:
        if host.nic is not None:
            links.append(host.nic.link)
    return links


# -- orchestration ------------------------------------------------------------

class FaultScheduler:
    """Installs a set of :class:`FaultSpec` onto a fabric's links.

    Construct with the simulator, the specs and the experiment seed,
    then call :meth:`apply` once the topology exists.  Loss models are
    installed at each spec's ``start`` and removed at ``stop`` via
    simulator events; flap schedules drive ``set_down``/``set_up``
    directly.  At most one loss model may target a given link (faults
    on a wire do not compose); any number of flap specs may.

    :meth:`stats` reports the per-link drop breakdown afterwards —
    the counters live on the links themselves
    (:attr:`~repro.net.link.Link.loss_breakdown`), so they stay
    consistent with what the :class:`~repro.sim.audit.FabricAuditor`
    cross-checks.
    """

    def __init__(self, sim: Simulator, specs: Sequence[FaultSpec],
                 seed: int = 0):
        self.sim = sim
        self.specs = tuple(specs)
        self.seed = seed
        #: Links touched by any spec, in selection order (deduplicated).
        self.faulted_links: List["Link"] = []
        #: Scheduled flap transitions (down/up pairs counted once).
        self.flaps_scheduled = 0
        self._loss_owner: Dict[int, FaultSpec] = {}
        self._applied = False

    # -- selection ---------------------------------------------------------

    @staticmethod
    def select_links(links: Sequence["Link"], selector: str,
                     network: Optional["Network"] = None) -> List["Link"]:
        """Resolve one spec's ``links`` selector to concrete links."""
        if selector == "bottleneck":
            observed = [] if network is None else network.observed_ports("bottleneck")
            if not observed:
                raise ValueError(
                    "selector 'bottleneck' needs a network with "
                    "'bottleneck'-role observed ports")
            return [port.link for port in observed]
        if selector == "all":
            return list(links)
        return [link for link in links
                if fnmatch.fnmatchcase(link.name, selector)]

    # -- installation ------------------------------------------------------

    def apply(self, network: Optional["Network"] = None,
              links: Optional[Sequence["Link"]] = None) -> None:
        """Resolve selectors and schedule every fault.

        Pass the built ``network`` (usual case) or an explicit ``links``
        sequence (unit tests on bare links).  Idempotence is not a goal:
        applying twice is an error, as is a selector matching no link.
        """
        if self._applied:
            raise RuntimeError("FaultScheduler.apply() called twice")
        self._applied = True
        if links is None:
            if network is None:
                raise ValueError("apply() needs a network or a links list")
            links = network_links(network)
        seen = set()
        for spec in self.specs:
            targets = self.select_links(links, spec.links, network)
            if not targets:
                raise ValueError(
                    f"fault selector {spec.links!r} matches no link "
                    f"(known: {[link.name for link in links]})")
            for link in targets:
                if id(link) not in seen:
                    seen.add(id(link))
                    self.faulted_links.append(link)
                if spec.model == "flap":
                    self._schedule_flap(link, spec)
                else:
                    self._schedule_loss(link, spec)

    def _stream(self, spec: FaultSpec, link: "Link"):
        """The dedicated RNG stream for (seed, spec.salt, link)."""
        return make_rng(stable_hash(self.seed, spec.salt,
                                    _link_token(link.name)))

    def _schedule_loss(self, link: "Link", spec: FaultSpec) -> None:
        owner = self._loss_owner.get(id(link))
        if owner is not None:
            raise ValueError(
                f"link {link.name!r} already carries a loss model "
                f"({owner.model}); loss faults do not compose")
        self._loss_owner[id(link)] = spec
        model = _build_model(spec, self._stream(spec, link))

        def install() -> None:
            link.fault = model

        def uninstall() -> None:
            if link.fault is model:
                link.fault = None

        if spec.start <= self.sim.now:
            install()
        else:
            self.sim.at(spec.start, install)
        if spec.stop is not None:
            self.sim.at(spec.stop, uninstall)

    def _schedule_flap(self, link: "Link", spec: FaultSpec) -> None:
        stop = spec.stop

        def one_cycle(base: float) -> None:
            down_t = base + spec.down
            if stop is not None and down_t >= stop:
                return
            self.flaps_scheduled += 1
            self.sim.at(down_t, link.set_down)
            self.sim.at(base + spec.up, link.set_up)
            if spec.period > 0.0:
                # Lazily self-rescheduling: one pending event per link
                # regardless of how long the run lasts.
                self.sim.at(base + spec.period, one_cycle,
                            base + spec.period)

        one_cycle(spec.start)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Deterministic drop accounting over the faulted links.

        ``{"links": {name: {"delivered", "lost", "breakdown"}},
        "drops": {reason: total}}`` with names sorted and zero-count
        reasons omitted, so the payload is byte-stable under JSON
        export.
        """
        links: Dict[str, Any] = {}
        totals: Dict[str, int] = {}
        for link in sorted(self.faulted_links, key=lambda link: link.name):
            breakdown = {reason: count for reason, count
                         in link.loss_breakdown.items() if count}
            links[link.name] = {
                "delivered": link.packets_delivered,
                "lost": link.packets_lost,
                "breakdown": breakdown,
            }
            for reason, count in breakdown.items():
                totals[reason] = totals.get(reason, 0) + count
        return {"links": links,
                "drops": {k: totals[k] for k in sorted(totals)}}
