#!/usr/bin/env python
"""CI gate: an interrupted sweep, resumed, matches a clean run byte-for-byte.

Drives the real CLI end to end:

1. a clean TINY sweep exported to ``clean.json``;
2. the same sweep against a fresh cache, killed halfway through via the
   deterministic ``REPRO_SWEEP_CRASH_AFTER`` hook (must exit nonzero and
   leave exactly the completed points in the store);
3. the same command re-run with ``--resume`` and more workers (must exit
   zero and export JSON byte-identical to the clean run);
4. ``repro runs list`` over the resumed cache (must show every point).

Exits 0 only if every step holds.  Run from the repo root:

    PYTHONPATH=src python scripts/check_resume.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

from repro.store import RunStore

SWEEP = [sys.executable, "-m", "repro", "sweep", "--profile", "tiny",
         "--seed", "7"]
TOTAL_POINTS = 4   # TINY: 4 schemes x 1 load
CRASH_AFTER = 2


def run(argv, env=None, expect_failure=False):
    print(f"$ {' '.join(argv)}")
    result = subprocess.run(argv, env=env, capture_output=True, text=True)
    if expect_failure:
        if result.returncode == 0:
            fail(f"expected a nonzero exit, got 0:\n{result.stdout}")
    elif result.returncode != 0:
        fail(f"exit {result.returncode}:\n{result.stdout}\n{result.stderr}")
    return result


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    with tempfile.TemporaryDirectory() as workdir:
        clean_json = os.path.join(workdir, "clean.json")
        resumed_json = os.path.join(workdir, "resumed.json")
        clean_cache = os.path.join(workdir, "clean-cache")
        cache = os.path.join(workdir, "cache")

        print("== step 1: clean run ==")
        run(SWEEP + ["--cache-dir", clean_cache, "--json", clean_json])

        print("== step 2: crash at ~50% ==")
        env = dict(os.environ, REPRO_SWEEP_CRASH_AFTER=str(CRASH_AFTER))
        run(SWEEP + ["--cache-dir", cache, "--jobs", "1"],
            env=env, expect_failure=True)
        persisted = len(RunStore(cache))
        if persisted != CRASH_AFTER:
            fail(f"crashed sweep persisted {persisted} points, "
                 f"expected {CRASH_AFTER}")
        print(f"   crashed as injected; {persisted}/{TOTAL_POINTS} "
              f"points persisted")

        print("== step 3: resume (more workers) ==")
        run(SWEEP + ["--cache-dir", cache, "--resume", "--jobs", "2",
                     "--json", resumed_json])
        with open(clean_json, "rb") as a, open(resumed_json, "rb") as b:
            clean_bytes, resumed_bytes = a.read(), b.read()
        if resumed_bytes != clean_bytes:
            fail("resumed export differs from the clean run "
                 f"({len(clean_bytes)} vs {len(resumed_bytes)} bytes)")
        print(f"   resumed export byte-identical "
              f"({len(clean_bytes)} bytes)")

        print("== step 4: runs list ==")
        listing = run([sys.executable, "-m", "repro", "runs", "list",
                       "--cache-dir", cache])
        if f"{TOTAL_POINTS} record(s)" not in listing.stdout:
            fail(f"runs list did not show {TOTAL_POINTS} records:\n"
                 f"{listing.stdout}")
        if "fct-point" not in listing.stdout:
            fail(f"runs list missing fct-point rows:\n{listing.stdout}")

        print("OK: interrupted sweep resumed byte-identical to clean run")
        return 0


if __name__ == "__main__":
    sys.exit(main())
