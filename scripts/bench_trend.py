#!/usr/bin/env python
"""Aggregate the committed BENCH_*.json artifacts into a markdown report.

Each engineering benchmark records its headline numbers in a small JSON
file at the repo root; this script renders them all as one markdown
document so a CI job can publish the repo's current performance posture
in its step summary (and as a downloadable artifact) without anyone
opening five JSON files.

Usage::

    python scripts/bench_trend.py [--root DIR] [--out FILE]

Scalars are rendered one table per artifact; nested objects contribute
``parent.child`` rows and lists of objects (``BENCH_shard.json`` points,
``BENCH_topology.json`` ladder rungs) become their own sub-tables.
Writes to stdout when ``--out`` is omitted.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _scalar_rows(record: Dict[str, Any], prefix: str = "") -> List[tuple]:
    """Flatten scalars and one level of nested objects to (path, value)."""
    rows = []
    for key, value in record.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_scalar_rows(value, prefix=f"{path}."))
        elif not isinstance(value, list):
            rows.append((path, value))
    return rows


def _table(header: List[str], body: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join(" --- " for _ in header) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in body]
    return lines


def render(root: Path) -> str:
    artifacts = sorted(root.glob("BENCH_*.json"))
    lines = ["# Benchmark trend", ""]
    if not artifacts:
        lines.append("No BENCH_*.json artifacts found.")
        return "\n".join(lines) + "\n"

    # Headline table: one row per artifact with its self-described
    # benchmark and the most load-bearing single number, where present.
    headline = []
    for path in artifacts:
        record = json.loads(path.read_text())
        key_metric = next(
            (k for k in ("speedup", "overhead_enabled",
                         "generator_over_legacy") if k in record), None)
        if key_metric is None and isinstance(record.get("points"), list):
            key_metric = "points"
        shown = (f"{key_metric} = {_fmt(record[key_metric])}"
                 if key_metric and key_metric != "points"
                 else f"{len(record.get('points', []))} ladder points")
        headline.append([path.name,
                         str(record.get("benchmark", "—")), shown])
    lines += _table(["artifact", "benchmark", "headline"], headline)
    lines.append("")

    for path in artifacts:
        record = json.loads(path.read_text())
        lines += [f"## {path.name}", ""]
        scalars = _scalar_rows(record)
        if scalars:
            lines += _table(
                ["metric", "value"],
                [[key, _fmt(value)] for key, value in scalars])
            lines.append("")
        for key, value in record.items():
            if (isinstance(value, list) and value
                    and all(isinstance(item, dict) for item in value)):
                columns = list(value[0])
                lines += [f"### {key}", ""]
                lines += _table(
                    columns,
                    [[_fmt(item.get(col, "—")) for col in columns]
                     for item in value])
                lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n\n")[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory holding BENCH_*.json (repo root)")
    parser.add_argument("--out", type=Path,
                        help="write the markdown here instead of stdout")
    args = parser.parse_args(argv)
    report = render(args.root)
    if args.out:
        args.out.write_text(report)
        print(f"wrote {args.out} ({len(report.splitlines())} lines)")
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
