#!/usr/bin/env python
"""Gate CI on metrics recorded in a committed/produced BENCH_*.json.

Every benchmark in ``benchmarks/`` writes a small JSON artifact at the
repo root (``BENCH_engine.json``, ``BENCH_sharedbuf.json``, ...).  The
benches gate themselves in-process through ``REPRO_*_GATE`` env vars —
useful locally — but CI used to duplicate one bespoke env-var block per
job.  This script replaces those blocks: each job runs its bench with
the in-process gate neutralized and then asserts bounds on the artifact
it produced (or on a committed artifact, for jobs that only consume the
nightly one).

Usage::

    python scripts/check_bench_gate.py BENCH_engine.json \\
        'speedup>=1.1' 'train.speedup_vs_after>=1.5' \\
        --baseline /tmp/BENCH_engine.json \\
        --regression-metric after.events_per_second \\
        --regression-factor 2

Each positional check is ``<dotted.path><op><value>`` with ``op`` one
of ``>=`` or ``<=``.  Dotted paths descend through objects by key and
through arrays by integer index (``points.0.speedup_vs_single``;
negative indices count from the end).  The optional baseline trio
asserts ``current >= baseline / factor`` for one metric — the
anti-regression backstop against the previously committed artifact.

Prints one ``PASS``/``FAIL`` line per check and exits 1 if any failed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, List, Tuple

Check = Tuple[str, str, float]


def resolve(record: Any, dotted: str) -> float:
    """Walk ``dotted`` through nested dicts/lists and return a number."""
    node = record
    walked: List[str] = []
    for part in dotted.split("."):
        walked.append(part)
        where = ".".join(walked)
        if isinstance(node, list):
            try:
                node = node[int(part)]
            except (ValueError, IndexError) as exc:
                raise KeyError(
                    f"{where}: {exc} (array of {len(node)} entries)"
                ) from None
        elif isinstance(node, dict):
            if part not in node:
                raise KeyError(
                    f"{where}: no such key (has {sorted(node)[:8]})")
            node = node[part]
        else:
            raise KeyError(f"{where}: cannot descend into {type(node).__name__}")
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise KeyError(f"{dotted}: {node!r} is not a number")
    return float(node)


def parse_check(spec: str) -> Check:
    for op in (">=", "<="):
        if op in spec:
            path, _, value = spec.partition(op)
            if not path or not value:
                break
            return path.strip(), op, float(value)
    raise argparse.ArgumentTypeError(
        f"check {spec!r} is not of the form <dotted.path>(>=|<=)<value>")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n\n")[0],
    )
    parser.add_argument("artifact", type=Path,
                        help="BENCH_*.json file to check")
    parser.add_argument("checks", nargs="*", type=parse_check, metavar="CHECK",
                        help="bound of the form dotted.path>=1.5 or <=1.1")
    parser.add_argument("--baseline", type=Path,
                        help="previously committed artifact to compare against")
    parser.add_argument("--regression-metric",
                        help="dotted path compared between artifact and "
                             "baseline (required with --baseline)")
    parser.add_argument("--regression-factor", type=float, default=2.0,
                        help="fail when current < baseline / FACTOR "
                             "(default 2)")
    args = parser.parse_args(argv)
    if bool(args.baseline) != bool(args.regression_metric):
        parser.error("--baseline and --regression-metric go together")
    if not args.checks and not args.baseline:
        parser.error("nothing to do: give at least one CHECK or --baseline")

    record = json.loads(args.artifact.read_text())
    failures = 0
    for path, op, bound in args.checks:
        try:
            value = resolve(record, path)
        except KeyError as exc:
            print(f"FAIL {args.artifact}: {exc}")
            failures += 1
            continue
        ok = value >= bound if op == ">=" else value <= bound
        verdict = "PASS" if ok else "FAIL"
        print(f"{verdict} {args.artifact}: {path} = {value:g} "
              f"(need {op} {bound:g})")
        failures += 0 if ok else 1

    if args.baseline:
        if args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
            current = resolve(record, args.regression_metric)
            reference = resolve(baseline, args.regression_metric)
            floor = reference / args.regression_factor
            ok = current >= floor
            verdict = "PASS" if ok else "FAIL"
            print(f"{verdict} {args.artifact}: {args.regression_metric} = "
                  f"{current:g} vs committed {reference:g} "
                  f"(floor {floor:g} at factor {args.regression_factor:g})")
            failures += 0 if ok else 1
        else:
            # First run on a branch that never committed the artifact:
            # nothing to regress against, and failing would block the
            # bootstrap commit.
            print(f"SKIP {args.artifact}: baseline {args.baseline} missing")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
