"""Shared helpers for the figure/table benchmarks.

Every bench runs its experiment exactly once under pytest-benchmark
(``rounds=1``) — the experiments are deterministic simulations, so there
is no run-to-run noise worth averaging, and some take tens of seconds.
The printed tables are the deliverable: they show the same rows/series
the paper's figures plot.  EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from typing import Callable


def run_once(benchmark, fn: Callable):
    """Run ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def heading(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
