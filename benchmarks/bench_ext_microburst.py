"""E-BURST — micro-burst absorption under shared-buffer policies.

Context for the paper's micro-burst references ([13] Shan et al., [14]):
how the switch shares buffer across ports decides whether an incast
burst survives.  A 32-way incast hits port B while port A's long-lived
flows may be hogging memory:

- *complete sharing* lets the hog starve the burst (worst tail FCT);
- a *static split* protects the burst but wastes memory when the hog is
  absent;
- *dynamic threshold* (Choudhury–Hahne, α=2) adapts: near-static tail
  latency under the hog, fewer drops than static without it.
"""

from conftest import heading, run_once

from repro.experiments.extensions import microburst_absorption
from repro.store import RunConfig


def test_microburst_buffer_policies(benchmark):
    def experiment():
        rows = []
        for hog in (True, False):
            for policy in ("static", "shared", "dt"):
                rows.append(microburst_absorption(
                    policy=policy, hog_active=hog, dt_alpha=2.0,
                    config=RunConfig(duration=0.04)))
        return rows

    rows = run_once(benchmark, experiment)
    heading("E-BURST — 32-way incast vs buffer-sharing policy "
            "(200-packet switch memory)")
    print(f"{'hog':>5s} {'policy':>8s} {'drops':>6s} {'completed':>10s} "
          f"{'burst p99':>10s}")
    for row in rows:
        p99 = (f"{row.burst_fct_p99 * 1e3:7.2f}ms"
               if row.burst_fct_p99 else "      --")
        print(f"{str(row.hog_active):>5s} {row.policy:>8s} "
              f"{row.burst_drops:6d} {row.burst_completed:7d}/32 {p99}")

    by_key = {(r.hog_active, r.policy): r for r in rows}
    # Under a hog, complete sharing has the worst burst tail.
    assert (by_key[(True, "shared")].burst_fct_p99
            > by_key[(True, "static")].burst_fct_p99)
    assert (by_key[(True, "dt")].burst_fct_p99
            <= by_key[(True, "shared")].burst_fct_p99)
    # Without the hog, DT wastes less buffer than the static split.
    assert (by_key[(False, "dt")].burst_drops
            < by_key[(False, "static")].burst_drops)
    # Every burst flow eventually completes under every policy.
    assert all(r.burst_completed == r.burst_fanin for r in rows)
