"""E02 / Fig. 2 — per-queue marking with the fractional threshold:
a lone flow cannot fill the link.

Paper setup: 8 equal-weight queues, so the fractional share of a
16-packet standard threshold is 2 packets; one flow.  Expected shape:
K=16 reaches ~10 Gbps, K=2 falls measurably short (paper: −6%; our
store-and-forward occupancy counts the in-service packet, so the loss is
larger — see EXPERIMENTS.md E02).
"""

from conftest import heading, run_once

from repro.experiments.motivation import per_queue_fractional_throughput
from repro.experiments.scale import BENCH


def test_fig02_single_flow_throughput(benchmark):
    results = run_once(
        benchmark,
        lambda: per_queue_fractional_throughput(
            thresholds_packets=(2.0, 16.0), duration=BENCH.static_duration
        ),
    )
    heading("Fig. 2 — per-queue fractional threshold: 1-flow throughput")
    print(f"{'K (packets)':>12s} {'throughput':>12s}")
    for threshold, gbps in sorted(results.items()):
        print(f"{threshold:12.0f} {gbps:10.2f} G")
    assert results[16.0] > 9.0
    assert results[2.0] < results[16.0]
