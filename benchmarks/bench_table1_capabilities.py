"""T1 / Table I — capability comparison of the four schemes.

The matrix is asserted against structural properties of the
implementations (not just declared): MQ-ECN refuses non-round
schedulers, TCN cannot be built at the enqueue point, and only PMSB(e)
leaves switches untouched.
"""

from conftest import heading, run_once

import pytest

from repro.core.capabilities import CAPABILITIES, capability_table
from repro.core.pmsb import PmsbMarker
from repro.ecn.base import MarkPoint
from repro.ecn.mq_ecn import MqEcnMarker
from repro.ecn.tcn import TcnMarker
from repro.net.link import Link
from repro.net.port import Port
from repro.scheduling.wfq import WfqScheduler
from repro.sim.engine import Simulator


class _Sink:
    name = "sink"

    def receive(self, packet):
        pass


def _verify_matrix():
    sim = Simulator()

    def wfq_port(marker):
        return Port(sim, Link(sim, 10e9, 1e-6, _Sink()), WfqScheduler(2),
                    marker)

    # MQ-ECN: no generic schedulers.
    with pytest.raises(ValueError):
        wfq_port(MqEcnMarker(rtt=20e-6))
    # PMSB: generic schedulers fine.
    wfq_port(PmsbMarker(12))
    # TCN: no early notification.
    assert MarkPoint.ENQUEUE not in TcnMarker(10e-6).supported_points
    return capability_table()


def test_table1_capabilities(benchmark):
    table = run_once(benchmark, _verify_matrix)
    heading("Table I — scheme capabilities (verified against code)")
    print(table)
    assert CAPABILITIES["PMSB(e)"].no_switch_modification
    assert not CAPABILITIES["MQ-ECN"].generic_scheduler
