"""E12 / Fig. 12 — PMSB(e) also benefits from dequeue marking.

Same 4-flow setup as Fig. 11 with the end-host variant: per-port marking
at the switch, RTT filter (14.4 µs) at the senders.
"""

from conftest import heading, run_once

from repro.experiments.marking_point import pmsbe_trace


def test_fig12_pmsbe_peaks(benchmark):
    traces = run_once(benchmark, lambda: pmsbe_trace(duration=0.02))
    heading("Fig. 12 — PMSB(e) buffer peak, enqueue vs dequeue "
            "(paper: 82 -> ~20% lower)")
    enq, deq = traces["enqueue"], traces["dequeue"]
    print(f"enqueue marking: peak {enq.peak:3d} pkts, "
          f"steady mean {enq.steady_mean:5.1f}")
    print(f"dequeue marking: peak {deq.peak:3d} pkts, "
          f"steady mean {deq.steady_mean:5.1f}")
    print(f"peak reduction:  {100 * (1 - deq.peak / enq.peak):4.1f}% "
          f"(paper: ~20%)")
    assert deq.peak < enq.peak
