"""T4 / Theorem IV.1 — empirical validation of the threshold lower bound.

The theorem: queue threshold ``k_i > γ_i·C·RTT/7`` avoids buffer
underflow (throughput loss) for any flow count.  We sweep ``k_i`` across
the bound at the worst-case flow count (Eq. 11) and measure utilization:
it must dip below the bound and saturate above it.
"""

from conftest import heading, run_once

from repro.experiments.analysis_validation import threshold_bound_sweep
from repro.experiments.scale import BENCH


def test_theorem_iv1_bound(benchmark):
    rows = run_once(
        benchmark,
        lambda: threshold_bound_sweep(duration=BENCH.static_duration),
    )
    heading("Theorem IV.1 — utilization vs queue threshold "
            "(bound = γ·C·RTT/7)")
    print(f"{'k_i / bound':>12s} {'k_i (pkts)':>11s} {'worst n':>8s} "
          f"{'predicted ok':>13s} {'utilization':>12s}")
    for row in rows:
        print(f"{row.queue_threshold / row.bound:12.2f} "
              f"{row.queue_threshold:11.2f} {row.n_flows:8d} "
              f"{str(row.predicted_underflow_free):>13s} "
              f"{row.utilization:12.3f}")
    below = [r for r in rows if not r.predicted_underflow_free]
    above = [r for r in rows if r.predicted_underflow_free]
    assert min(r.utilization for r in above) > 0.95
    assert min(r.utilization for r in below) < 0.95
