"""AB5 — PMSB port-threshold sensitivity at fabric scale.

"Is it hard to determine the parameters for PMSB?" (§VI).  Theorem IV.1
gives a lower bound (~5.5 packets for our fabric's RTT; the paper picks
12 for its 85.2 µs RTT).  This sweep runs the load-0.5 FCT point across
port thresholds to show the usable plateau: too low loses throughput
(large flows suffer), too high grows the standing queue (small-flow tail
suffers), and a wide middle band behaves like the paper's choice.
"""

from conftest import heading, run_once

import repro.experiments.largescale as ls
from repro.core.pmsb import PmsbMarker
from repro.experiments.largescale import run_fct_point
from repro.experiments.scale import BENCH
from repro.metrics.fct import SizeClass

THRESHOLDS = (4, 8, 12, 24, 48, 96)


def _point_at(threshold):
    original = ls.largescale_scheme

    def patched(name, link_rate=10e9, base_rtt_hops=4):
        spec = original(name, link_rate, base_rtt_hops)
        if name == "pmsb":
            spec.marker_factory = lambda: PmsbMarker(float(threshold))
        return spec

    ls.largescale_scheme = patched
    try:
        return run_fct_point("pmsb", "dwrr", 0.5, BENCH, seed=1)
    finally:
        ls.largescale_scheme = original


def test_port_threshold_sweep(benchmark):
    rows = run_once(benchmark,
                    lambda: {k: _point_at(k) for k in THRESHOLDS})
    heading("AB5 — PMSB port threshold sweep (DWRR, load 0.5; "
            "Theorem IV.1 bound ~5.5 pkts for this fabric)")
    print(f"{'K (pkts)':>8s} {'overall':>9s} {'lg avg':>9s} "
          f"{'sm avg':>9s} {'sm p99':>9s}")
    for threshold, row in rows.items():
        print(f"{threshold:8d} {row.overall.mean * 1e3:8.3f}m "
              f"{row.large.mean * 1e3:8.3f}m "
              f"{row.small.mean * 1e3:8.3f}m "
              f"{row.small.p99 * 1e3:8.3f}m")

    # The paper-style choice (12) sits on a broad plateau: its small-flow
    # tail is within 2x of the best threshold's, and a very deep
    # threshold (96) is clearly worse for small flows than the plateau.
    best_p99 = min(row.stat(SizeClass.SMALL, "p99") for row in rows.values())
    assert rows[12].stat(SizeClass.SMALL, "p99") < 2.0 * best_p99
    assert (rows[96].stat(SizeClass.SMALL, "p99")
            >= rows[12].stat(SizeClass.SMALL, "p99"))
