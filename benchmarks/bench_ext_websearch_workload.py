"""E-WORKLOAD — the FCT comparison under the web-search trace.

Robustness check: the paper evaluates with its 60/30/10 synthetic mix;
the classic web-search distribution (DCTCP paper, reused by MQ-ECN/TCN)
has a different small-flow mass and a heavier body.  The headline —
PMSB below TCN on small-flow FCT, overall comparable — should be a
property of the marking schemes, not of one workload.
"""

from conftest import heading, run_once

from repro.experiments.largescale import run_fct_point
from repro.experiments.scale import BENCH
from repro.metrics.fct import SizeClass
from repro.workloads.distributions import WEB_SEARCH


def test_websearch_workload_point(benchmark):
    def experiment():
        distribution = WEB_SEARCH.scaled(BENCH.size_scale)
        return [
            run_fct_point(name, "dwrr", 0.5, BENCH, seed=1,
                          size_distribution=distribution,
                          size_scale=BENCH.size_scale)
            for name in ("pmsb", "pmsb-e", "tcn")
        ]

    rows = run_once(benchmark, experiment)
    heading("E-WORKLOAD — web-search trace, DWRR, load 0.5")
    print(f"{'scheme':10s} {'overall':>9s} {'sm avg':>9s} {'sm p99':>9s} "
          f"{'completed':>10s}")
    for row in rows:
        small = row.small
        print(f"{row.scheme:10s} {row.overall.mean * 1e3:8.3f}m "
              f"{small.mean * 1e3 if small else -1:8.3f}m "
              f"{small.p99 * 1e3 if small else -1:8.3f}m "
              f"{row.completed:7d}/{row.n_flows}")
    by_scheme = {row.scheme: row for row in rows}
    assert (by_scheme["PMSB"].stat(SizeClass.SMALL, "mean")
            < by_scheme["TCN"].stat(SizeClass.SMALL, "mean"))
