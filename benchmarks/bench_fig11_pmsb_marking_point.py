"""E11 / Fig. 11 — PMSB delivers congestion information early.

Paper setup: 4 flows, one queue, port threshold 12 packets.  Paper
result: enqueue peak 82 packets, dequeue marking ~20% lower.
"""

from conftest import heading, run_once

from repro.experiments.marking_point import pmsb_trace


def test_fig11_pmsb_peaks(benchmark):
    traces = run_once(benchmark, lambda: pmsb_trace(duration=0.02))
    heading("Fig. 11 — PMSB buffer peak, enqueue vs dequeue "
            "(paper: 82 -> ~20% lower)")
    enq, deq = traces["enqueue"], traces["dequeue"]
    print(f"enqueue marking: peak {enq.peak:3d} pkts, "
          f"steady mean {enq.steady_mean:5.1f}")
    print(f"dequeue marking: peak {deq.peak:3d} pkts, "
          f"steady mean {deq.steady_mean:5.1f}")
    print(f"peak reduction:  {100 * (1 - deq.peak / enq.peak):4.1f}% "
          f"(paper: ~20%)")
    assert deq.peak < enq.peak
