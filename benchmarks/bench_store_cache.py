"""STORE-CACHE — warm-over-cold speedup of the content-addressed store.

The acceptance bar for the run store: re-running a BENCH-profile sweep
against a warm cache must be at least 5x faster than the cold run,
because every point is answered from its content-addressed record
instead of being re-simulated.  Measured with ``perf_counter`` around
the two sweep calls (pytest-benchmark times the pair once; the printed
ratio is the deliverable).
"""

import time

from conftest import heading, run_once

from repro.experiments.largescale import run_fct_sweep
from repro.experiments.scale import BENCH
from repro.store import RunConfig, RunStore


def test_warm_cache_speedup(benchmark, tmp_path):
    cache = str(tmp_path / "cache")
    config = RunConfig(profile=BENCH, seed=1, cache_dir=cache)

    def experiment():
        t0 = time.perf_counter()
        cold_rows = run_fct_sweep(config=config)
        t1 = time.perf_counter()
        warm_rows = run_fct_sweep(config=config)
        t2 = time.perf_counter()
        return cold_rows, warm_rows, t1 - t0, t2 - t1

    cold_rows, warm_rows, cold_s, warm_s = run_once(benchmark, experiment)
    speedup = cold_s / warm_s
    store = RunStore(cache)
    heading("STORE-CACHE — BENCH sweep, cold vs warm run store")
    print(f"points:        {len(cold_rows)} "
          f"({len(store)} records in {store.root})")
    print(f"cold sweep:    {cold_s:8.3f} s")
    print(f"warm sweep:    {warm_s:8.3f} s")
    print(f"speedup:       {speedup:8.1f}x (required: >= 5x)")

    assert warm_rows == cold_rows  # cache answers are the real rows
    assert len(store) == len(cold_rows)
    assert speedup >= 5.0
