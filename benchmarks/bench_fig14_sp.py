"""E14 / Fig. 14 — PMSB preserves a strict-priority policy.

Paper setup: three SP queues; a paced 5 Gbps source (highest), a paced
3 Gbps source (middle), an unlimited source (lowest), activating in
stages.  Paper result: settled throughput 5 / 3 / 2 Gbps.
"""

from conftest import heading, run_once

from repro.experiments.static_flows import scheduler_sp


def test_fig14_sp_policy(benchmark):
    result = run_once(benchmark, lambda: scheduler_sp(duration=0.06))
    heading("Fig. 14 — PMSB over SP (paper: 5 / 3 / 2 Gbps settled)")
    print(f"{'phase':12s} {'q1':>8s} {'q2':>8s} {'q3':>8s}")
    for _t0, _t1, label in result.phases:
        rates = result.phase_gbps[label]
        print(f"{label:12s} {rates[0]:7.2f}G {rates[1]:7.2f}G {rates[2]:7.2f}G")
    settled = result.settled()
    assert abs(settled[0] - 5.0) < 0.8
    assert abs(settled[1] - 3.0) < 0.7
    assert abs(settled[2] - 2.0) < 0.7
