"""E15 / Fig. 15 — PMSB preserves a WFQ policy.

Paper setup: two equal-weight WFQ queues; one flow alone, then four
flows join the other queue.  Paper result: 10 Gbps alone, then a 5/5
split.
"""

from conftest import heading, run_once

from repro.experiments.static_flows import scheduler_wfq


def test_fig15_wfq_policy(benchmark):
    result = run_once(benchmark, lambda: scheduler_wfq(duration=0.06))
    heading("Fig. 15 — PMSB over WFQ (paper: 10 Gbps alone -> 5 / 5 split)")
    print(f"{'phase':12s} {'q1':>8s} {'q2':>8s}")
    for _t0, _t1, label in result.phases:
        rates = result.phase_gbps[label]
        print(f"{label:12s} {rates[0]:7.2f}G {rates[1]:7.2f}G")
    alone = result.phase_gbps["q1 only"]
    settled = result.settled()
    assert alone[0] > 9.0
    assert abs(settled[0] - settled[1]) < 1.0
