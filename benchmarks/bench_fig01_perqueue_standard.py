"""E01 / Fig. 1 — per-queue marking with the standard threshold:
RTT grows with the number of active queues.

Paper setup: 8 flows to one receiver, per-queue threshold 16 packets,
queues swept 1→8, 10 Gbps.  Expected shape: RTT roughly proportional to
the number of active queues (each holds its own ~16-packet backlog).
"""

from conftest import heading, run_once

from repro.experiments.motivation import per_queue_standard_rtt
from repro.experiments.scale import BENCH


def test_fig01_rtt_vs_queue_count(benchmark):
    results = run_once(
        benchmark,
        lambda: per_queue_standard_rtt(
            queue_counts=(1, 2, 4, 8), duration=BENCH.static_duration
        ),
    )
    heading("Fig. 1 — per-queue standard threshold: RTT vs active queues")
    print(f"{'queues':>6s} {'mean RTT':>12s} {'p95 RTT':>12s} {'p99 RTT':>12s}")
    for n_queues, stats in sorted(results.items()):
        print(f"{n_queues:6d} {stats.mean*1e6:10.1f}us "
              f"{stats.p95*1e6:10.1f}us {stats.p99*1e6:10.1f}us")
    assert results[8].mean > 2.0 * results[1].mean
