"""AB3 — PMSB under unequal DWRR weights.

Every experiment in the paper uses equal queue weights; Eq. 6's filter
thresholds are weight-proportional precisely so that *any* weighted
policy is preserved.  This bench checks PMSB against 1:1, 3:1 and 4:2:1
weight vectors with symmetric demand.
"""

from conftest import heading, run_once

from repro.experiments.ablations import weighted_share_preservation
from repro.experiments.scale import BENCH


def test_weighted_share_preservation(benchmark):
    rows = run_once(
        benchmark,
        lambda: weighted_share_preservation(duration=BENCH.static_duration),
    )
    heading("AB3 — PMSB preserves unequal DWRR weights")
    for row in rows:
        weights = ":".join(str(int(w)) for w in row.weights)
        rates = " / ".join(f"{g:5.2f}G" for g in row.queue_gbps)
        print(f"weights {weights:6s} -> {rates}   "
              f"(max relative error {row.max_relative_error * 100:.1f}%)")
    assert all(row.max_relative_error < 0.05 for row in rows)
