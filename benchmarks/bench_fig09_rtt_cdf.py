"""E09 / Fig. 9 — RTT distribution of the shared-queue flows.

Paper setup: DWRR, two equal queues (1 vs 4 flows), PMSB/PMSB(e) port
threshold 12 packets, PMSB(e) RTT threshold 40 µs, TCN 39 µs, per-queue
standard 16 packets.  Paper result: PMSB −63%/−62.6% (avg/99th) vs
per-queue standard; PMSB(e) −55.8%/−55.5%.  Expected shape: PMSB lowest,
PMSB(e) close, per-queue standard highest among buffer-based schemes.
"""

from conftest import heading, run_once

from repro.experiments.scale import BENCH
from repro.experiments.static_flows import rtt_distribution


def test_fig09_rtt_distributions(benchmark):
    results = run_once(
        benchmark,
        lambda: rtt_distribution(duration=BENCH.static_duration),
    )
    heading("Fig. 9 — queue-2 flow RTT by scheme (paper: PMSB lowest)")
    print(f"{'scheme':18s} {'mean':>10s} {'p95':>10s} {'p99':>10s}")
    for name, stats in results.items():
        print(f"{name:18s} {stats.mean*1e6:8.1f}us "
              f"{stats.p95*1e6:8.1f}us {stats.p99*1e6:8.1f}us")
    base = results["Per-Queue(std)"]
    print(f"\nPMSB    mean reduction vs per-queue(std): "
          f"{100*(1-results['PMSB'].mean/base.mean):4.1f}% (paper: 63.2%)")
    print(f"PMSB(e) mean reduction vs per-queue(std): "
          f"{100*(1-results['PMSB(e)'].mean/base.mean):4.1f}% (paper: 55.8%)")
    assert results["PMSB"].mean < base.mean
    assert results["PMSB(e)"].mean < base.mean
