"""Engineering benchmark — sharded-fabric scaling (``--shards N``).

Not a paper artifact: measures how aggregate event throughput of one
FCT scenario scales when the fabric is partitioned across
conservative-lookahead shard processes, on a 256-host 2-tier and a
1024-host 3-tier Clos.  Each ladder point runs the identical workload
single-process and at 2 and 4 shards, recording wall time, aggregate
events/s, sync rounds and blocked time per shard in
``BENCH_shard.json`` at the repo root.

Parallel speedup only exists when the machine grants the worker
processes real CPUs, so the regression gate is opt-in and
honesty-first: ``REPRO_SHARD_SPEEDUP_GATE`` (e.g. ``2.5``) asserts the
4-shard/1-shard events/s ratio on the 1024-host point, but only when
:func:`repro.experiments.runner.available_jobs` reports at least 4
CPUs — on a pinned 1-CPU CI runner the shards time-slice one core and
the sync overhead makes the ratio < 1, which the JSON records with
``gate.enforced: false`` rather than pretending a speedup.
"""

import json
import os
from dataclasses import replace
from pathlib import Path
from time import perf_counter

from conftest import heading

from repro.experiments.largescale import run_fct_point
from repro.experiments.runner import available_jobs
from repro.experiments.scale import TINY
from repro.store.spec import RunConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_shard.json"

#: (topology spec, expected hosts, flows) — the 256 -> 1024 host ladder.
LADDER = (
    ("clos:tiers=2,ports=16,oversub=2", 256, 150),
    ("clos:tiers=3,ports=16", 1024, 200),
)
SHARD_COUNTS = (1, 2, 4)
GATE_ENV = "REPRO_SHARD_SPEEDUP_GATE"


def _one_point(topology, flows, shards):
    profile = replace(TINY, name="shardbench", largescale_flows=flows,
                      time_cap=0.05)
    provenance = {}
    config = RunConfig(shards=shards if shards > 1 else None)
    start = perf_counter()
    row = run_fct_point("pmsb", "dwrr", 0.5, profile, seed=1,
                        topology=topology, config=config,
                        provenance_out=provenance)
    wall = perf_counter() - start
    engine = provenance.get("engine", {})
    events = engine.get("events_processed", 0)
    shard_stats = provenance.get("shards")
    return {
        "topology": topology,
        "shards": shards,
        "completed": row.completed,
        "n_flows": row.n_flows,
        "wall_s": wall,
        "events_processed": events,
        "events_per_second": events / wall if wall else 0.0,
        "sync_rounds": (shard_stats or {}).get("sync_rounds"),
        "blocked_s": (shard_stats or {}).get("blocked_s"),
    }


def test_shard_scaling_ladder(benchmark):
    points = []

    def run_ladder():
        for topology, hosts, flows in LADDER:
            for shards in SHARD_COUNTS:
                point = _one_point(topology, flows, shards)
                point["hosts"] = hosts
                points.append(point)
        return len(points)

    benchmark.pedantic(run_ladder, rounds=1, iterations=1)

    gate_value = os.environ.get(GATE_ENV)
    jobs = available_jobs()
    enforced = gate_value is not None and jobs >= max(SHARD_COUNTS)

    heading("Sharded fabric scaling — aggregate events/s")
    print(f"{'topology':<34}{'shards':>7}{'events/s':>14}"
          f"{'speedup':>9}{'rounds':>8}")
    speedups = {}
    for topology, hosts, _flows in LADDER:
        base = next(p for p in points
                    if p["topology"] == topology and p["shards"] == 1)
        for shards in SHARD_COUNTS:
            point = next(p for p in points
                         if p["topology"] == topology
                         and p["shards"] == shards)
            speedup = (point["events_per_second"] /
                       base["events_per_second"]
                       if base["events_per_second"] else 0.0)
            point["speedup_vs_single"] = speedup
            speedups[(topology, shards)] = speedup
            rounds = point["sync_rounds"] or "-"
            print(f"{topology:<34}{shards:>7}"
                  f"{point['events_per_second']:>14,.0f}"
                  f"{speedup:>9.2f}{rounds:>8}")
    print(f"\navailable_jobs={jobs}  gate={gate_value or 'unset'}  "
          f"enforced={enforced}")

    top_topology = LADDER[-1][0]
    payload = {
        "points": points,
        "gate": {
            "env": GATE_ENV,
            "value": float(gate_value) if gate_value else None,
            "available_jobs": jobs,
            "enforced": enforced,
            "speedup_at_max_shards": speedups[(top_topology,
                                               max(SHARD_COUNTS))],
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    # Every configuration must finish the full workload — scaling
    # numbers from truncated runs would be meaningless.
    for point in points:
        assert point["completed"] == point["n_flows"], point
    if enforced:
        assert speedups[(top_topology, max(SHARD_COUNTS))] >= \
            float(gate_value), (
            f"4-shard speedup below gate {gate_value} "
            f"(see {BENCH_JSON})")
