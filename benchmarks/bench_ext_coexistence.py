"""E-COEXIST — incremental PMSB(e) deployment (§V-B, unevaluated).

The paper argues PMSB(e) "can coexist with other ECN-based transports
like DCTCP".  We upgrade *only* the victim sender: the switch keeps
plain per-port marking and the eight competing senders keep stock DCTCP.
The upgraded sender should reclaim its fair share; nobody else changes.
"""

from conftest import heading, run_once

from repro.experiments.extensions import pmsbe_coexistence
from repro.store import RunConfig


def test_incremental_deployment(benchmark):
    def experiment():
        config = RunConfig(duration=0.03)
        return (pmsbe_coexistence(victim_upgraded=False, config=config),
                pmsbe_coexistence(victim_upgraded=True, config=config))

    baseline, upgraded = run_once(benchmark, experiment)
    heading("E-COEXIST — PMSB(e) on one sender, stock DCTCP on the rest")
    print(f"{'configuration':28s} {'victim':>8s} {'others':>8s} "
          f"{'fair err':>9s}")
    print(f"{'all stock DCTCP (baseline)':28s} {baseline.victim_gbps:7.2f}G "
          f"{baseline.others_gbps:7.2f}G {baseline.fair_share_error:9.2f}")
    print(f"{'victim upgraded to PMSB(e)':28s} {upgraded.victim_gbps:7.2f}G "
          f"{upgraded.others_gbps:7.2f}G {upgraded.fair_share_error:9.2f}")
    print(f"marks the upgraded sender ignored: "
          f"{upgraded.victim_filtered_marks}")
    assert baseline.fair_share_error > 0.3
    assert upgraded.fair_share_error < 0.1
