"""Engineering benchmark — shared-buffer layer overhead.

Not a paper artifact: proves the switch-wide shared-buffer layer
(:mod:`repro.net.sharedbuf`) is free when disabled and prices it when
enabled.  Ports built without an account keep ``pool=None`` and the
datapath branch structure is byte-for-byte the pre-shared-buffer code,
so a disabled run must match the no-pool baseline within noise — that
is the gate.  The enabled run (DT policy, per-packet account debits and
credits plus policy admission on every enqueue) is measured and
recorded for the record, not gated: it buys per-port accounting the
baseline simply does not do.

Trials interleave the two modes in one process so machine-wide noise
hits both equally (same method as ``bench_simulator_throughput``); the
ratio of medians is what ``BENCH_sharedbuf.json`` records.
``REPRO_SHAREDBUF_OVERHEAD_GATE`` (default 1.10) caps the acceptable
disabled/baseline slowdown ratio.
"""

import gc
import json
import os
from pathlib import Path
from statistics import median
from time import perf_counter

from conftest import heading

from repro.core.pmsb import PmsbMarker
from repro.net.sharedbuf import SharedBufferSpec
from repro.net.topology import single_bottleneck
from repro.scheduling.dwrr import DwrrScheduler
from repro.sim.engine import Simulator
from repro.transport.endpoints import open_flow
from repro.transport.flow import Flow

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sharedbuf.json"
TRIAL_DURATION = 0.004
TRIAL_PAIRS = 5

#: Deep enough that the DT policy admits everything: the enabled trial
#: prices the accounting itself, not a different drop pattern.
ENABLED_SPEC = SharedBufferSpec(policy="dt", capacity=4000, alpha=8.0)


def _incast_trial(shared_buffer):
    """One cold 1:8 PMSB incast; returns (events, elapsed seconds)."""
    sim = Simulator()
    network = single_bottleneck(
        sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(16),
        shared_buffer=shared_buffer)
    for i in range(9):
        open_flow(network, Flow(src=i, dst=9, service=0 if i == 0 else 1))
    gc.collect()
    start = perf_counter()
    sim.run(until=TRIAL_DURATION)
    return sim.events_processed, perf_counter() - start


def test_sharedbuf_overhead_and_bench_json():
    """Disabled shared buffer must cost nothing; enabled is recorded.

    Writes ``BENCH_sharedbuf.json`` with baseline / disabled / enabled
    throughput and asserts the disabled mode stays within the overhead
    gate of the baseline.  Also cross-checks that the disabled run is
    event-for-event identical to the baseline (zero-cost implies
    zero-behaviour-change) and that the deep enabled pool changes no
    events either — it admits everything, so only the accounting runs.
    """
    baseline_rates, disabled_rates, enabled_rates = [], [], []
    baseline_events = disabled_events = enabled_events = 0
    _incast_trial(None)  # warm code paths once, untimed
    for _ in range(TRIAL_PAIRS):
        baseline_events, elapsed = _incast_trial(None)
        baseline_rates.append(baseline_events / elapsed)
        disabled_events, elapsed = _incast_trial(None)
        disabled_rates.append(disabled_events / elapsed)
        enabled_events, elapsed = _incast_trial(ENABLED_SPEC)
        enabled_rates.append(enabled_events / elapsed)

    baseline = median(baseline_rates)
    disabled = median(disabled_rates)
    enabled = median(enabled_rates)
    overhead_disabled = baseline / disabled
    overhead_enabled = baseline / enabled
    record = {
        "benchmark": "1:8 PMSB incast, DWRR(2), 4 ms simulated, cold start",
        "trials_per_mode": TRIAL_PAIRS,
        "events_per_run": baseline_events,
        "baseline": {
            "mode": "no shared buffer (pool=None datapath)",
            "events_per_second": round(baseline),
        },
        "disabled": {
            "mode": "shared buffer not configured (must be identical)",
            "events_per_second": round(disabled),
        },
        "enabled": {
            "mode": f"SharedBuffer {ENABLED_SPEC.policy} "
                    f"capacity={ENABLED_SPEC.capacity} "
                    f"alpha={ENABLED_SPEC.alpha:g} (per-packet accounting)",
            "events_per_second": round(enabled),
        },
        "overhead_disabled": round(overhead_disabled, 3),
        "overhead_enabled": round(overhead_enabled, 3),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    heading("Shared buffer — disabled overhead vs baseline")
    print(f"baseline {baseline:,.0f} ev/s | disabled {disabled:,.0f} ev/s "
          f"(x{overhead_disabled:.3f}) | enabled {enabled:,.0f} ev/s "
          f"(x{overhead_enabled:.3f})")

    # Zero-cost-when-off implies zero-behaviour-change: identical event
    # counts, and the deep enabled pool admits everything so the event
    # sequence must match there too.
    assert baseline_events == disabled_events
    assert baseline_events == enabled_events

    gate = float(os.environ.get("REPRO_SHAREDBUF_OVERHEAD_GATE", "1.10"))
    assert overhead_disabled <= gate, (
        f"disabled shared-buffer mode {overhead_disabled:.3f}x slower than "
        f"the baseline (gate {gate}x) — the layer is supposed to be free "
        f"when off")
