"""C-FIG3/C-FIG8 — victim protection and fair sharing under wire loss.

The paper's fabrics are pristine; these chaos variants re-run the
fig. 3 victim scenario and the fig. 8 fair-share scenario with a
deterministic loss model (:mod:`repro.sim.faults`) on the bottleneck
wire.  The printed tables show how per-port marking's collateral damage
and PMSB's selective blindness each respond as real loss is added on
top of congestion marking.
"""

from conftest import heading, run_once

from repro.experiments.chaos import chaos_fair_share, chaos_victim
from repro.experiments.scale import BENCH
from repro.store import RunConfig

LOSS_RATES = (0.0, 1e-3, 1e-2)


def _config() -> RunConfig:
    return RunConfig(duration=BENCH.static_duration)


def test_chaos_victim_under_loss(benchmark):
    def run():
        return [
            chaos_victim(scheme, loss_rate=rate, config=_config())
            for scheme in ("per-port", "pmsb")
            for rate in LOSS_RATES
        ]

    rows = run_once(benchmark, run)
    heading("C-FIG3 — 1 vs 8 flows, iid loss on the bottleneck wire")
    print(f"{'scheme':16s} {'loss':>8s} {'q1':>7s} {'q2':>7s} "
          f"{'err':>6s} {'drops':>6s}")
    for row in rows:
        print(f"{row.scheme:16s} {row.loss_rate:8.4f} "
              f"{row.queue1_gbps:6.2f}G {row.queue2_gbps:6.2f}G "
              f"{row.fair_share_error:6.2f} {sum(row.drops.values()):6d}")
    clean = {row.scheme: row for row in rows if row.loss_rate == 0.0}
    # The clean points reproduce the paper: per-port starves the victim,
    # PMSB protects it.
    assert clean["Per-Port"].fair_share_error > 0.3
    assert clean["PMSB"].fair_share_error < 0.1
    # Loss actually happened on every lossy point.
    assert all(sum(row.drops.values()) > 0
               for row in rows if row.loss_rate > 0.0)


def test_chaos_fair_share_under_loss(benchmark):
    def run():
        return [chaos_fair_share("pmsb", loss_rate=rate, config=_config())
                for rate in LOSS_RATES]

    rows = run_once(benchmark, run)
    heading("C-FIG8 — PMSB DWRR 1:4 fair sharing vs bottleneck loss rate")
    print(f"{'loss':>8s} {'q1':>7s} {'q2':>7s} {'err':>6s} {'drops':>6s}")
    for row in rows:
        print(f"{row.loss_rate:8.4f} {row.queue1_gbps:6.2f}G "
              f"{row.queue2_gbps:6.2f}G {row.fair_share_error:6.2f} "
              f"{sum(row.drops.values()):6d}")
    assert rows[0].fair_share_error < 0.05
    assert sum(rows[-1].drops.values()) > 0
