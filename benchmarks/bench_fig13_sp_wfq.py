"""E13 / Fig. 13 — PMSB preserves an SP+WFQ policy.

Paper setup: queue 1 strict-high (paced 5 Gbps source), queues 2/3
equal WFQ weights; sources activate in stages.  Paper result: settled
throughput 5 / 2.5 / 2.5 Gbps, with queue 2 at 5 Gbps while queue 3 is
inactive.
"""

from conftest import heading, run_once

from repro.experiments.static_flows import scheduler_sp_wfq


def test_fig13_sp_wfq_policy(benchmark):
    result = run_once(benchmark, lambda: scheduler_sp_wfq(duration=0.06))
    heading("Fig. 13 — PMSB over SP+WFQ (paper: 5 / 2.5 / 2.5 Gbps settled)")
    print(f"{'phase':12s} {'q1':>8s} {'q2':>8s} {'q3':>8s}")
    for _t0, _t1, label in result.phases:
        rates = result.phase_gbps[label]
        print(f"{label:12s} {rates[0]:7.2f}G {rates[1]:7.2f}G {rates[2]:7.2f}G")
    settled = result.settled()
    assert abs(settled[0] - 5.0) < 0.8
    assert abs(settled[1] - 2.5) < 0.7
    assert abs(settled[2] - 2.5) < 0.7
