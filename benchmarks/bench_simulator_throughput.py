"""Engineering benchmark — simulator event throughput.

Not a paper artifact: measures how many packet-level events per second
the substrate processes, which bounds what the scale profiles can
afford.  Two workloads: the raw event loop (pure engine overhead) and a
full 1:8 PMSB incast (engine + port + scheduler + marker + transport).
"""

from conftest import heading

from repro.scheduling.dwrr import DwrrScheduler
from repro.core.pmsb import PmsbMarker
from repro.net.topology import single_bottleneck
from repro.sim.engine import Simulator
from repro.transport.endpoints import open_flow
from repro.transport.flow import Flow


def test_raw_event_loop(benchmark):
    def run():
        sim = Simulator()

        def chain(remaining):
            if remaining:
                sim.schedule(1e-6, chain, remaining - 1)

        # 64 independent self-rescheduling chains of 2000 events each.
        for _ in range(64):
            chain(2000)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    heading("Engine throughput — raw callback chains")
    print(f"{events} events per run")
    assert events == 64 * 2000


def test_full_stack_incast(benchmark):
    def run():
        sim = Simulator()
        network = single_bottleneck(
            sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(16))
        for i in range(9):
            open_flow(network, Flow(src=i, dst=9,
                                    service=0 if i == 0 else 1))
        sim.run(until=0.004)
        return sim.events_processed

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    heading("Full-stack throughput — 1:8 PMSB incast, 4 ms simulated")
    print(f"{events} events per run "
          f"(~{events / 0.004 / 1e6:.1f}M events per simulated second)")
    assert events > 10_000
