"""Engineering benchmark — simulator event throughput.

Not a paper artifact: measures how many packet-level events per second
the substrate processes, which bounds what the scale profiles can
afford.  Four workloads: the raw event loop (pure engine overhead), a
full 1:8 PMSB incast (engine + port + scheduler + marker + transport),
a long incast that asserts the engine's heap compaction keeps
lazy-cancellation debt bounded (every ACK pushes the RTO timer back;
without compaction + lazy timer push-back the heap grows with dead
entries and every push/pop pays an extra log factor), and an A/B run
of the optimized datapath (timing-wheel tier + packet pool + flattened
fan-out) against the ``REPRO_SLOW_PATH`` reference engine that records
the measured speedup in ``BENCH_engine.json`` at the repo root.

The A/B run interleaves fast, slow, and packet-train trials in one
process so that machine-wide noise (thermal drift, co-tenants) hits all
modes equally; the ratio of medians is far more stable than either
absolute number.  Three env knobs gate it:
``REPRO_ENGINE_SPEEDUP_GATE`` (default 1.25) sets the minimum
acceptable fast/slow ratio; ``REPRO_ENGINE_TRAIN_GATE`` (default 1.4)
sets the minimum *equivalent* speedup of the ``--trains 16`` tier over
the per-packet fast path — equivalent meaning per-packet events divided
by train-mode wall time, since the train tier wins by processing fewer
events for the same simulated traffic; and
``REPRO_ENGINE_REGRESSION_FACTOR`` — unset by default — additionally
compares absolute optimized throughput against the committed
``BENCH_engine.json`` baseline, failing if it dropped by more than
that factor (CI sets 2 as a smoke threshold).
"""

import gc
import json
import os
from pathlib import Path
from statistics import median
from time import perf_counter

from conftest import heading

from repro.scheduling.dwrr import DwrrScheduler
from repro.core.pmsb import PmsbMarker
from repro.net.packet import POOL, set_pooling
from repro.net.topology import single_bottleneck
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTask
from repro.transport.base import DctcpConfig
from repro.transport.endpoints import open_flow
from repro.transport.flow import Flow

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"
AB_DURATION = 0.004
AB_PAIRS = 5
#: The train-tier trial mirrors the experiments layer exactly
#: (``run_incast``/``run_fct_point`` with ``trains=16``): coalesced ACKs
#: on the DCTCP CE state machine and a microsecond-scale delack timer
#: tuned to exceed the inter-unit serialization gap.
TRAIN_CONFIG = dict(train_packets=16, ack_every=2, delack_timeout=5e-6)


def test_raw_event_loop(benchmark):
    def run():
        sim = Simulator()

        def chain(remaining):
            if remaining:
                sim.schedule(1e-6, chain, remaining - 1)

        # 64 independent self-rescheduling chains of 2000 events each.
        for _ in range(64):
            chain(2000)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    heading("Engine throughput — raw callback chains")
    print(f"{events} events per run")
    assert events == 64 * 2000


def test_full_stack_incast(benchmark):
    def run():
        sim = Simulator()
        network = single_bottleneck(
            sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(16))
        for i in range(9):
            open_flow(network, Flow(src=i, dst=9,
                                    service=0 if i == 0 else 1))
        sim.run(until=0.004)
        return sim.events_processed

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    heading("Full-stack throughput — 1:8 PMSB incast, 4 ms simulated")
    print(f"{events} events per run "
          f"(~{events / 0.004 / 1e6:.1f}M events per simulated second)")
    assert events > 10_000


def test_incast_heap_stays_bounded(benchmark):
    """100 ms DCTCP incast: ``pending_events`` must not grow monotonically.

    The transport cancels/pushes back its RTO timer on every ACK; the
    engine's lazy push-back plus heap compaction must hold the heap at a
    small steady-state size for the whole run instead of accumulating
    dead entries.
    """
    def run():
        sim = Simulator()
        network = single_bottleneck(
            sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(16))
        for i in range(9):
            open_flow(network, Flow(src=i, dst=9,
                                    service=0 if i == 0 else 1))
        samples = []
        sampler = PeriodicTask(
            sim, 1e-3, lambda: samples.append(sim.pending_events))
        sampler.start()
        sim.run(until=0.1)
        return sim, samples

    sim, samples = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Heap discipline — 1:8 DCTCP incast, 100 ms simulated")
    half = len(samples) // 2
    early, late = max(samples[:half]), max(samples[half:])
    print(f"{len(samples)} samples | heap max {max(samples)} "
          f"(first half {early}, second half {late}) | "
          f"cancelled pending {sim.cancelled_pending} | "
          f"compactions {sim.compactions}")
    assert len(samples) >= 90
    # Bounded: the steady state never exceeds a small constant, and the
    # second half of the run is no worse than the first (no monotone
    # growth as cancelled entries accumulate).
    assert max(samples) < 1000
    assert late <= 1.25 * early + 32
    # Compaction invariant: dead entries never dominate the heap.
    assert sim.cancelled_pending * 2 <= max(sim.pending_events, 64)


def _incast_trial(slow: bool, trains: int = 1):
    """One cold 1:8 PMSB incast; returns (events, elapsed, wheel, pool_hit)."""
    set_pooling(not slow)
    POOL.reset()
    sim = Simulator(slow_path=slow)
    network = single_bottleneck(
        sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(16))
    config = DctcpConfig(**TRAIN_CONFIG) if trains > 1 else None
    for i in range(9):
        open_flow(network, Flow(src=i, dst=9, service=0 if i == 0 else 1),
                  config)
    gc.collect()
    start = perf_counter()
    sim.run(until=AB_DURATION)
    elapsed = perf_counter() - start
    return (sim.events_processed, elapsed,
            sim.wheel_events_processed, POOL.hit_rate())


def test_engine_ab_speedup_and_bench_json():
    """Optimized datapath vs. REPRO_SLOW_PATH reference, interleaved.

    Writes the before/after throughput record to ``BENCH_engine.json``
    and asserts the speedup gate; also cross-checks determinism (both
    modes must execute the identical number of events).
    """
    baseline_enabled = POOL.enabled
    fast_rates, slow_rates, train_walls, fast_walls = [], [], [], []
    fast_events = slow_events = train_events = 0
    wheel_events = 0
    pool_hit = 0.0
    try:
        _incast_trial(slow=False)  # warm code paths once, untimed
        _incast_trial(slow=False, trains=16)
        for _ in range(AB_PAIRS):
            fast_events, elapsed, wheel_events, pool_hit = \
                _incast_trial(slow=False)
            fast_rates.append(fast_events / elapsed)
            fast_walls.append(elapsed)
            slow_events, elapsed, _, _ = _incast_trial(slow=True)
            slow_rates.append(slow_events / elapsed)
            train_events, elapsed, _, _ = _incast_trial(slow=False, trains=16)
            train_walls.append(elapsed)
    finally:
        set_pooling(baseline_enabled)

    fast = median(fast_rates)
    slow = median(slow_rates)
    speedup = fast / slow
    # The train tier simulates the same traffic with fewer events, so its
    # honest throughput number is *equivalent* events per second: the
    # per-packet event count over the train-mode wall time.
    train_equiv = fast_events / median(train_walls)
    train_speedup = median(train_walls) and median(fast_walls) / \
        median(train_walls)
    wheel_share = wheel_events / fast_events if fast_events else 0.0
    record = {
        "benchmark": "1:8 PMSB incast, DWRR(2), 4 ms simulated, cold start",
        "trials_per_mode": AB_PAIRS,
        "events_per_run": fast_events,
        "before": {
            "mode": "REPRO_SLOW_PATH reference (heap-only, pooling off)",
            "events_per_second": round(slow),
        },
        "after": {
            "mode": "optimized (timing wheel + packet pool + flat fan-out)",
            "events_per_second": round(fast),
        },
        "speedup": round(speedup, 3),
        "train": {
            "mode": "--trains 16 tier (coalesced ACKs, delack 5 us)",
            "events_per_run": train_events,
            "events_per_second": round(train_equiv),
            "speedup_vs_after": round(train_speedup, 3),
        },
        "wheel_share": round(wheel_share, 3),
        "pool_hit_rate": round(pool_hit, 3),
    }

    regression_env = os.environ.get("REPRO_ENGINE_REGRESSION_FACTOR")
    committed = None
    if regression_env and BENCH_JSON.exists():
        committed = json.loads(BENCH_JSON.read_text())
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    heading("Engine A/B — optimized vs REPRO_SLOW_PATH reference")
    print(f"after  {fast:,.0f} ev/s | before {slow:,.0f} ev/s | "
          f"speedup {speedup:.2f}x | wheel share {wheel_share:.1%} | "
          f"pool hit rate {pool_hit:.1%}")
    print(f"trains {train_equiv:,.0f} equivalent ev/s "
          f"({train_events} events stand in for {fast_events}) | "
          f"{train_speedup:.2f}x over the per-packet fast path")

    # Determinism cross-check: the fast path may only change timing, never
    # the event sequence.
    assert fast_events == slow_events
    assert wheel_share > 0.5          # the wheel tier actually engaged
    assert pool_hit > 0.5             # the pool actually recycled
    # The train tier must actually coalesce: far fewer events, same traffic.
    assert train_events < fast_events // 2

    gate = float(os.environ.get("REPRO_ENGINE_SPEEDUP_GATE", "1.25"))
    assert speedup >= gate, (
        f"optimized datapath only {speedup:.2f}x faster than the slow path "
        f"(gate {gate}x)")

    train_gate = float(os.environ.get("REPRO_ENGINE_TRAIN_GATE", "1.4"))
    assert train_speedup >= train_gate, (
        f"train tier only {train_speedup:.2f}x over the per-packet fast "
        f"path (gate {train_gate}x)")

    if committed is not None:
        factor = float(regression_env)
        floor = committed["after"]["events_per_second"] / factor
        assert fast >= floor, (
            f"optimized throughput {fast:,.0f} ev/s regressed more than "
            f"{factor}x below the committed baseline "
            f"{committed['after']['events_per_second']:,} ev/s")
