"""Engineering benchmark — simulator event throughput.

Not a paper artifact: measures how many packet-level events per second
the substrate processes, which bounds what the scale profiles can
afford.  Three workloads: the raw event loop (pure engine overhead), a
full 1:8 PMSB incast (engine + port + scheduler + marker + transport),
and a long incast that asserts the engine's heap compaction keeps
lazy-cancellation debt bounded (every ACK pushes the RTO timer back;
without compaction + lazy timer push-back the heap grows with dead
entries and every push/pop pays an extra log factor).
"""

from conftest import heading

from repro.scheduling.dwrr import DwrrScheduler
from repro.core.pmsb import PmsbMarker
from repro.net.topology import single_bottleneck
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTask
from repro.transport.endpoints import open_flow
from repro.transport.flow import Flow


def test_raw_event_loop(benchmark):
    def run():
        sim = Simulator()

        def chain(remaining):
            if remaining:
                sim.schedule(1e-6, chain, remaining - 1)

        # 64 independent self-rescheduling chains of 2000 events each.
        for _ in range(64):
            chain(2000)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    heading("Engine throughput — raw callback chains")
    print(f"{events} events per run")
    assert events == 64 * 2000


def test_full_stack_incast(benchmark):
    def run():
        sim = Simulator()
        network = single_bottleneck(
            sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(16))
        for i in range(9):
            open_flow(network, Flow(src=i, dst=9,
                                    service=0 if i == 0 else 1))
        sim.run(until=0.004)
        return sim.events_processed

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    heading("Full-stack throughput — 1:8 PMSB incast, 4 ms simulated")
    print(f"{events} events per run "
          f"(~{events / 0.004 / 1e6:.1f}M events per simulated second)")
    assert events > 10_000


def test_incast_heap_stays_bounded(benchmark):
    """100 ms DCTCP incast: ``pending_events`` must not grow monotonically.

    The transport cancels/pushes back its RTO timer on every ACK; the
    engine's lazy push-back plus heap compaction must hold the heap at a
    small steady-state size for the whole run instead of accumulating
    dead entries.
    """
    def run():
        sim = Simulator()
        network = single_bottleneck(
            sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(16))
        for i in range(9):
            open_flow(network, Flow(src=i, dst=9,
                                    service=0 if i == 0 else 1))
        samples = []
        sampler = PeriodicTask(
            sim, 1e-3, lambda: samples.append(sim.pending_events))
        sampler.start()
        sim.run(until=0.1)
        return sim, samples

    sim, samples = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Heap discipline — 1:8 DCTCP incast, 100 ms simulated")
    half = len(samples) // 2
    early, late = max(samples[:half]), max(samples[half:])
    print(f"{len(samples)} samples | heap max {max(samples)} "
          f"(first half {early}, second half {late}) | "
          f"cancelled pending {sim.cancelled_pending} | "
          f"compactions {sim.compactions}")
    assert len(samples) >= 90
    # Bounded: the steady state never exceeds a small constant, and the
    # second half of the run is no worse than the first (no monotone
    # growth as cancelled entries accumulate).
    assert max(samples) < 1000
    assert late <= 1.25 * early + 32
    # Compaction invariant: dead entries never dominate the heap.
    assert sim.cancelled_pending * 2 <= max(sim.pending_events, 64)
