"""AB4 — PMSB's mark point at fabric scale.

Design goal 3 of the paper claims dequeue marking delivers congestion
information early (validated on buffer traces in Figs. 11/12), yet the
large-scale evaluation marks at enqueue.  This ablation runs the FCT
point at both mark points: the small-flow tail should benefit from (or
at least not be hurt by) the earlier signal.
"""

from conftest import heading, run_once

from repro.ecn.base import MarkPoint
from repro.experiments.largescale import (PORT_THRESHOLD_PACKETS,
                                          run_fct_point)
from repro.experiments.scale import BENCH
from repro.metrics.fct import SizeClass


def test_markpoint_at_scale(benchmark):
    import repro.experiments.largescale as ls

    def point(mark_point):
        # Parameterize the scheme factory by mark point through the
        # scheme registry (the harness's default is enqueue).
        original = ls.largescale_scheme

        def patched(name, link_rate=10e9, base_rtt_hops=4):
            spec = original(name, link_rate, base_rtt_hops)
            if name == "pmsb":
                from repro.core.pmsb import PmsbMarker
                spec.marker_factory = lambda: PmsbMarker(
                    PORT_THRESHOLD_PACKETS, mark_point)
            return spec

        ls.largescale_scheme = patched
        try:
            return run_fct_point("pmsb", "dwrr", 0.5, BENCH, seed=1)
        finally:
            ls.largescale_scheme = original

    def experiment():
        return {p.value: point(p)
                for p in (MarkPoint.ENQUEUE, MarkPoint.DEQUEUE)}

    rows = run_once(benchmark, experiment)
    heading("AB4 — PMSB mark point at fabric scale (DWRR, load 0.5)")
    print(f"{'mark point':>10s} {'overall':>9s} {'sm avg':>9s} "
          f"{'sm p99':>9s}")
    for label, row in rows.items():
        print(f"{label:>10s} {row.overall.mean * 1e3:8.3f}m "
              f"{row.small.mean * 1e3:8.3f}m {row.small.p99 * 1e3:8.3f}m")
    # The earlier signal must not hurt the small-flow tail materially.
    assert (rows["dequeue"].stat(SizeClass.SMALL, "p99")
            < 1.25 * rows["enqueue"].stat(SizeClass.SMALL, "p99"))
