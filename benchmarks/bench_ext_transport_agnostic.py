"""E-TRANSPORT — PMSB protects victims regardless of the transport.

The paper evaluates PMSB with DCTCP only, but its intro frames ECN
reaction generically ("congestion window (DCTCP, D2TCP) or transmission
rate (DCQCN)").  This bench runs the 1:8 victim scenario over both a
window-based (DCTCP) and a rate-based (DCQCN) transport, under per-port
marking and under PMSB: selective blindness helps both, because the
filter acts on the *mark*, before any transport-specific reaction.
"""

from conftest import heading, run_once

from repro.experiments.extensions import transport_agnostic_victim
from repro.store import RunConfig


def test_transport_agnostic(benchmark):
    def experiment():
        rows = []
        for transport in ("dctcp", "dcqcn"):
            for marker in ("per-port", "pmsb"):
                rows.append(transport_agnostic_victim(
                    transport=transport, marker=marker,
                    config=RunConfig(duration=0.03)))
        return rows

    rows = run_once(benchmark, experiment)
    heading("E-TRANSPORT — 1:8 victim scenario across transports")
    print(f"{'transport':>10s} {'marker':>9s} {'victim':>8s} {'others':>8s} "
          f"{'fair err':>9s}")
    for row in rows:
        print(f"{row.transport:>10s} {row.marker:>9s} "
              f"{row.victim_gbps:7.2f}G {row.others_gbps:7.2f}G "
              f"{row.fair_share_error:9.2f}")

    by_key = {(r.transport, r.marker): r for r in rows}
    for transport in ("dctcp", "dcqcn"):
        baseline = by_key[(transport, "per-port")]
        pmsb = by_key[(transport, "pmsb")]
        # PMSB gives the victim a much larger share under both reactions.
        assert pmsb.victim_gbps > 2.0 * baseline.victim_gbps
        assert pmsb.fair_share_error < baseline.fair_share_error
