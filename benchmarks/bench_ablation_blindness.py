"""AB1 — ablation: aggressiveness of the selective-blindness filter.

Sweeps a scale factor on PMSB's per-queue filter threshold in the 1:8
victim scenario.  Scale 0 disables the filter (pure per-port marking →
victim returns); the paper's design point is 1.0; larger scales trade
latency for no fairness gain — supporting the paper's claim that the
filter can be aggressive.
"""

from conftest import heading, run_once

from repro.experiments.ablations import blindness_aggressiveness
from repro.experiments.scale import BENCH


def test_ablation_blindness_scale(benchmark):
    rows = run_once(
        benchmark,
        lambda: blindness_aggressiveness(duration=BENCH.static_duration),
    )
    heading("AB1 — PMSB queue-filter scale on the 1:8 victim scenario")
    print(f"{'scale':>6s} {'q1 Gbps':>8s} {'q2 Gbps':>8s} "
          f"{'fair err':>9s} {'RTT p99':>9s}")
    for row in rows:
        print(f"{row.parameter:6.2f} {row.queue1_gbps:8.2f} "
              f"{row.queue2_gbps:8.2f} {row.fair_share_error:9.2f} "
              f"{row.rtt_p99_us:7.0f}us")
    by_scale = {row.parameter: row for row in rows}
    assert by_scale[0.0].fair_share_error > 0.3   # per-port victim
    assert by_scale[1.0].fair_share_error < 0.1   # paper design point
