"""E17 / Figs. 22–27 — large-scale leaf-spine FCT sweep under WFQ.

Same fabric and workload as Figs. 16–21 with WFQ scheduling.  MQ-ECN is
excluded automatically: it requires a round-based scheduler (the paper
drops it here for the same reason).

Expected shape (paper): PMSB within ~2% of TCN on overall/large FCT,
and up to tens of percent faster on small-flow FCT at every load.
"""

from conftest import heading, run_once

from repro.experiments.largescale import reduction_percent, run_fct_sweep
from repro.experiments.scale import BENCH
from repro.metrics.fct import SizeClass


def test_figs22_27_wfq_sweep(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_fct_sweep(scheduler_name="wfq", profile=BENCH, seed=1),
    )
    heading("Figs. 22-27 — leaf-spine FCT sweep, WFQ scheduler "
            f"({BENCH.name} profile; MQ-ECN excluded)")
    print(f"{'scheme':10s} {'load':>5s} {'overall':>9s} {'lg avg':>9s} "
          f"{'sm avg':>9s} {'sm p95':>9s} {'sm p99':>9s}")
    for row in rows:
        def fmt(size_class, stat):
            value = row.stat(size_class, stat)
            return f"{value*1e3:8.3f}m" if value is not None else "      --"
        print(f"{row.scheme:10s} {row.load:5.1f} {fmt(None, 'mean')} "
              f"{fmt(SizeClass.LARGE, 'mean')} {fmt(SizeClass.SMALL, 'mean')} "
              f"{fmt(SizeClass.SMALL, 'p95')} {fmt(SizeClass.SMALL, 'p99')}")

    assert all(row.scheme != "MQ-ECN" for row in rows)
    print("\nSmall-flow FCT reduction of PMSB vs TCN:")
    for stat in ("mean", "p95", "p99"):
        reductions = reduction_percent(rows, "PMSB", "TCN",
                                       SizeClass.SMALL, stat)
        cells = "  ".join(f"load {load:.1f}: {value:+5.1f}%"
                          for load, value in sorted(reductions.items()))
        print(f"  {stat}: {cells}")
    small_avg = reduction_percent(rows, "PMSB", "TCN", SizeClass.SMALL, "mean")
    assert all(value > 0 for value in small_avg.values())
