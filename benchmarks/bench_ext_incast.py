"""E-INCAST — the partition/aggregate incast microbenchmark.

The canonical datacenter stress test: N workers answer an aggregator
simultaneously through one moderately buffered port.  The synchronized
initial burst overwhelms any scheme; what distinguishes them is how
quickly senders back off afterwards.  ECN-based marking (PMSB here)
reduces both retransmission timeouts and the tail FCT relative to plain
drop-tail, and the gap widens with fan-in.
"""

from conftest import heading, run_once

from repro.experiments.extensions import incast_sweep
from repro.store import RunConfig


def test_incast_fanin_sweep(benchmark):
    def experiment():
        return {
            scheme: incast_sweep(scheme, fanins=(8, 16, 32, 64),
                                 config=RunConfig(duration=0.08))
            for scheme in ("pmsb", "none")
        }

    results = run_once(benchmark, experiment)
    heading("E-INCAST — synchronized fan-in sweep, 20 KB responses, "
            "128-packet buffer")
    print(f"{'scheme':10s} {'fanin':>6s} {'drops':>6s} {'RTOs':>5s} "
          f"{'p99 FCT':>9s} {'completed':>10s}")
    for scheme, rows in results.items():
        for row in rows:
            p99 = (f"{row.fct_p99 * 1e3:7.2f}ms"
                   if row.fct_p99 else "      --")
            print(f"{row.scheme:10s} {row.fanin:6d} {row.drops:6d} "
                  f"{row.retransmission_timeouts:5d} {p99} "
                  f"{row.completed:7d}/{row.fanin}")

    pmsb = {row.fanin: row for row in results["pmsb"]}
    droptail = {row.fanin: row for row in results["none"]}
    # Everyone finishes; at high fan-in ECN beats drop-tail on the tail.
    for rows in results.values():
        assert all(row.completed == row.fanin for row in rows)
    assert pmsb[64].fct_p99 < droptail[64].fct_p99
    assert (pmsb[64].retransmission_timeouts
            < droptail[64].retransmission_timeouts)
