"""E-POOL — the paper's per-service-pool conjecture (§II-B, unevaluated).

"We believe per service pool will also violate weighted fair sharing,
because queues belonging to different ports may interfere with each
other."  Two ports with disjoint links share one marking pool; port B's
eight flows fill the pool and port A's lone flow — whose own link is
otherwise idle — gets marked and throttled.
"""

from conftest import heading, run_once

from repro.experiments.extensions import service_pool_victim
from repro.store import RunConfig


def test_service_pool_cross_port_victim(benchmark):
    result = run_once(
        benchmark,
        lambda: service_pool_victim(config=RunConfig(duration=0.03)))
    heading("E-POOL — shared-pool marking: cross-port victim "
            "(validating the paper's §II-B conjecture)")
    print(f"port A (1 flow, own idle link): {result.port_a_gbps:5.2f} Gbps "
          f"({result.port_a_utilization * 100:.0f}% of its link)")
    print(f"port B (8 flows):               {result.port_b_gbps:5.2f} Gbps")
    print(f"pool-marked packets:            {result.pool_marked}")
    # The conjecture: port A cannot fill its own uncontended link.
    assert result.port_a_utilization < 0.5
    assert result.port_b_gbps > 8.0
