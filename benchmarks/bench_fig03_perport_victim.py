"""E03 / Fig. 3 — per-port marking violates weighted fair sharing.

Paper setup: per-port threshold 16 packets, two equal-weight DWRR
queues, 1 flow vs 8 flows.  Paper result: 2.49 vs 7.51 Gbps — the lone
flow is the marking victim.  Expected shape: queue 1 well below its
5 Gbps fair share.
"""

from conftest import heading, run_once

from repro.experiments.motivation import per_port_victim
from repro.experiments.scale import BENCH


def test_fig03_victim_flow(benchmark):
    result = run_once(
        benchmark,
        lambda: per_port_victim(port_threshold=16.0, flows_queue2=8,
                                duration=BENCH.static_duration),
    )
    heading("Fig. 3 — per-port K=16, 1 flow vs 8 flows (paper: 2.49 / 7.51)")
    print(f"queue 1 (1 flow):  {result.queue1_gbps:5.2f} Gbps")
    print(f"queue 2 (8 flows): {result.queue2_gbps:5.2f} Gbps")
    print(f"fair-share error:  {result.fair_share_error:5.2f}")
    assert result.queue1_gbps < 0.6 * result.queue2_gbps
