"""E16 / Figs. 16–21 — large-scale leaf-spine FCT sweep under DWRR.

Paper setup: 48-host 4×4 leaf-spine, Poisson arrivals of the 60%-small /
10%-large mix over 8 services, DCTCP, schemes PMSB / PMSB(e) / MQ-ECN /
TCN.  This bench runs the BENCH scale profile (see EXPERIMENTS.md for
the profile's dimensions); the PAPER profile reproduces the full size.

Expected shape (paper): all schemes similar on overall and large-flow
FCT; PMSB cuts small-flow avg/95th/99th FCT by tens of percent vs TCN
and clearly beats MQ-ECN; PMSB(e) lands between.
"""

from conftest import heading, run_once

from repro.experiments.largescale import (reduction_percent, run_fct_sweep)
from repro.experiments.scale import BENCH
from repro.metrics.fct import SizeClass


def _print_rows(rows):
    print(f"{'scheme':10s} {'load':>5s} {'overall':>9s} {'lg avg':>9s} "
          f"{'lg p99':>9s} {'sm avg':>9s} {'sm p95':>9s} {'sm p99':>9s}")
    for row in rows:
        def fmt(size_class, stat):
            value = row.stat(size_class, stat)
            return f"{value*1e3:8.3f}m" if value is not None else "      --"
        print(f"{row.scheme:10s} {row.load:5.1f} {fmt(None, 'mean')} "
              f"{fmt(SizeClass.LARGE, 'mean')} {fmt(SizeClass.LARGE, 'p99')} "
              f"{fmt(SizeClass.SMALL, 'mean')} {fmt(SizeClass.SMALL, 'p95')} "
              f"{fmt(SizeClass.SMALL, 'p99')}")


def _print_headline(rows):
    print("\nSmall-flow FCT reduction of PMSB (positive = PMSB faster):")
    for baseline in ("TCN", "MQ-ECN"):
        for stat, label in (("mean", "avg"), ("p95", "p95"), ("p99", "p99")):
            reductions = reduction_percent(rows, "PMSB", baseline,
                                           SizeClass.SMALL, stat)
            cells = "  ".join(f"load {load:.1f}: {value:+5.1f}%"
                              for load, value in sorted(reductions.items()))
            print(f"  vs {baseline:7s} {label}: {cells}")


def test_figs16_21_dwrr_sweep(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_fct_sweep(scheduler_name="dwrr", profile=BENCH, seed=1),
    )
    heading("Figs. 16-21 — leaf-spine FCT sweep, DWRR scheduler "
            f"({BENCH.name} profile)")
    _print_rows(rows)
    _print_headline(rows)

    small_avg = reduction_percent(rows, "PMSB", "TCN", SizeClass.SMALL, "mean")
    # Shape check: PMSB beats TCN on small-flow average FCT at every load.
    assert all(value > 0 for value in small_avg.values())
    # Overall FCT stays comparable (within 30%) across schemes.
    overall = reduction_percent(rows, "PMSB", "TCN", None, "mean")
    assert all(abs(value) < 30 for value in overall.values())
