"""E-FATTREE — the FCT comparison on a different fabric.

Robustness check beyond the paper: the leaf-spine conclusions (PMSB
beats TCN on small-flow FCT, overall FCT comparable) should not depend
on the topology.  We rerun the load-0.5 FCT point on a k=4 fat-tree
(16 hosts, 20 switches, 6-hop cross-pod paths) with two-level ECMP.
"""

from conftest import heading, run_once

from repro.experiments.largescale import run_fct_point
from repro.experiments.scale import BENCH
from repro.metrics.fct import SizeClass


def test_fat_tree_fct_point(benchmark):
    def experiment():
        return [
            run_fct_point(name, "dwrr", 0.5, BENCH, seed=1,
                          topology="fat-tree")
            for name in ("pmsb", "pmsb-e", "tcn")
        ]

    rows = run_once(benchmark, experiment)
    heading("E-FATTREE — FCT at load 0.5 on a k=4 fat-tree")
    print(f"{'scheme':10s} {'overall':>9s} {'sm avg':>9s} {'sm p99':>9s} "
          f"{'completed':>10s}")
    for row in rows:
        print(f"{row.scheme:10s} {row.overall.mean * 1e3:8.3f}m "
              f"{row.small.mean * 1e3:8.3f}m {row.small.p99 * 1e3:8.3f}m "
              f"{row.completed:7d}/{row.n_flows}")
    by_scheme = {row.scheme: row for row in rows}
    # The leaf-spine headline survives the fabric change.
    assert (by_scheme["PMSB"].stat(SizeClass.SMALL, "mean")
            < by_scheme["TCN"].stat(SizeClass.SMALL, "mean"))
    assert all(row.completed == row.n_flows for row in rows)
