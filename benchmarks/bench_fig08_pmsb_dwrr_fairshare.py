"""E08 / Fig. 8 — PMSB preserves weighted fair sharing under DWRR.

Paper setup: two equal-weight DWRR queues, port threshold 12 packets,
1 flow vs 4 flows.  Paper result: both queues ≈ 5 Gbps, full link
utilization.
"""

from conftest import heading, run_once

from repro.experiments.scale import BENCH
from repro.experiments.static_flows import weighted_fair_sharing


def test_fig08_pmsb_fair_share(benchmark):
    result = run_once(
        benchmark,
        lambda: weighted_fair_sharing("pmsb", flows_queue2=4,
                                      duration=BENCH.static_duration),
    )
    heading("Fig. 8 — PMSB, DWRR, K=12, 1 vs 4 flows (paper: ~5 / ~5 Gbps)")
    print(f"queue 1 (1 flow):  {result.queue_gbps[0]:5.2f} Gbps")
    print(f"queue 2 (4 flows): {result.queue_gbps[1]:5.2f} Gbps")
    print(f"total:             {result.total_gbps:5.2f} Gbps")
    assert abs(result.queue_gbps[0] - result.queue_gbps[1]) < 1.0
    assert result.total_gbps > 9.0
