"""E05 / Fig. 5 — TCN cannot accelerate the congestion signal.

TCN's sojourn time only exists at dequeue, after the delay has been
experienced; its slow-start peak therefore matches DCTCP's *late*
(enqueue-style) feedback, not the accelerated dequeue feedback.
"""

from conftest import heading, run_once

from repro.experiments.marking_point import (dctcp_enqueue_dequeue,
                                             tcn_trace)


def test_fig05_tcn_no_early_feedback(benchmark):
    def experiment():
        return tcn_trace(duration=0.02), dctcp_enqueue_dequeue(duration=0.02)

    tcn, dctcp = run_once(benchmark, experiment)
    heading("Fig. 5 — TCN buffer peak vs DCTCP (no early notification)")
    print(f"TCN (dequeue only):      peak {tcn.peak:3d} pkts, "
          f"steady mean {tcn.steady_mean:5.1f}")
    print(f"DCTCP dequeue (early):   peak {dctcp['dequeue'].peak:3d} pkts")
    print(f"DCTCP enqueue (late):    peak {dctcp['enqueue'].peak:3d} pkts")
    # TCN cannot beat the accelerated-feedback peak.
    assert tcn.peak >= 0.85 * dctcp["dequeue"].peak
