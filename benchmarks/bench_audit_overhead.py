"""Engineering benchmark — invariant-auditor overhead.

Not a paper artifact: guards the opt-in contract of
:mod:`repro.sim.audit`.  With no auditor constructed the datapath must
carry **zero** audit hooks — structurally verified below, which is what
actually pins the disabled-path cost to nothing — and a timed
comparison of the same incast with and without auditing documents the
price of running audited (informational) while asserting the disabled
path stays within noise of the pre-audit baseline.
"""

import time

from conftest import heading

from repro.core.pmsb import PmsbMarker
from repro.net.topology import single_bottleneck
from repro.scheduling.dwrr import DwrrScheduler
from repro.sim.audit import FabricAuditor
from repro.sim.engine import Simulator
from repro.transport.endpoints import open_flow
from repro.transport.flow import Flow


def _build(audit: bool):
    sim = Simulator()
    auditor = FabricAuditor(sim) if audit else None
    network = single_bottleneck(
        sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(16))
    if auditor is not None:
        auditor.attach_network(network)
    for i in range(9):
        open_flow(network, Flow(src=i, dst=9, service=0 if i == 0 else 1))
    return sim, network


def _run(audit: bool) -> int:
    sim, _network = _build(audit)
    sim.run(until=0.004)
    return sim.events_processed


def test_disabled_auditor_installs_no_hooks(benchmark):
    """The structural half of the "zero cost when disabled" contract."""
    def run():
        sim, network = _build(audit=False)
        sim.run(until=0.004)
        return sim, network

    sim, network = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Audit overhead — disabled path carries no hooks")
    ports = [p for s in network.switches for p in s.ports] + [
        h.nic for h in network.hosts]
    print(f"{len(ports)} ports checked, {sim.events_processed} events")
    assert sim.auditor is None
    for port in ports:
        assert port.enqueue_listeners == []
        assert port.dequeue_listeners == []
        assert port.drop_listeners == []
        assert port.scheduler.clear_observer is None


def test_audited_run_same_schedule(benchmark):
    """Auditing must observe, never perturb: identical event schedule."""
    def run():
        return _run(audit=False), _run(audit=True)

    plain, audited = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Audit overhead — audited run replays the same schedule")
    print(f"events without audit {plain}, with audit {audited}")
    assert plain == audited


def test_disabled_overhead_within_noise(benchmark):
    """Timed half of the contract: min-of-N disabled runs stay within
    noise of each other whether or not the audit module was ever
    exercised in the process (there is no globally installed hook to
    pay for).  The audited/disabled ratio is printed for the record."""
    def timed(audit: bool, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _run(audit)
            best = min(best, time.perf_counter() - start)
        return best

    def run():
        _run(False)  # warm caches/allocator before any measurement
        _run(True)
        return timed(False), timed(True), timed(False)

    plain_a, audited, plain_b = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    heading("Audit overhead — wall-clock cost")
    ratio = audited / min(plain_a, plain_b)
    spread = abs(plain_a - plain_b) / min(plain_a, plain_b)
    print(f"disabled {min(plain_a, plain_b) * 1e3:.1f} ms | "
          f"audited {audited * 1e3:.1f} ms ({ratio:.2f}x) | "
          f"disabled-vs-disabled spread {spread * 100:.1f}%")
    # The two disabled measurements bracket machine noise; they must
    # agree far more tightly than any real hook overhead would allow.
    # Generous bound: interleaved min-of-3 runs on a loaded CI box.
    assert spread < 0.35
    # Audited runs do real work per event; just sanity-bound the factor.
    assert ratio < 25.0
