"""E07 / Fig. 7 — the 65-packet per-port threshold breaks again at 1:40.

Paper observation (§III): a fixed port threshold cannot scale with the
crossing flow count; at 40 flows the stable buffer point exceeds it and
the victim effect returns — raising the threshold is not a solution.
"""

from conftest import heading, run_once

from repro.experiments.motivation import per_port_victim
from repro.experiments.scale import BENCH


def test_fig07_large_threshold_still_breaks(benchmark):
    result = run_once(
        benchmark,
        lambda: per_port_victim(port_threshold=65.0, flows_queue2=40,
                                duration=BENCH.static_duration),
    )
    heading("Fig. 7 — per-port K=65, 1 flow vs 40 flows (violated again)")
    print(f"queue 1 (1 flow):   {result.queue1_gbps:5.2f} Gbps")
    print(f"queue 2 (40 flows): {result.queue2_gbps:5.2f} Gbps")
    assert result.queue1_gbps < 0.6 * result.queue2_gbps
