"""AB2 — ablation: PMSB(e)'s RTT threshold sensitivity.

Sweeps the sender-side RTT threshold in the 1:8 victim scenario.
Threshold 0 accepts every mark (plain per-port DCTCP → victim); higher
thresholds restore fairness at the cost of a higher standing queue
(RTT p99 grows) — the fairness/latency dial §V's "main challenge"
alludes to.
"""

from conftest import heading, run_once

from repro.experiments.ablations import rtt_threshold_sweep
from repro.experiments.scale import BENCH


def test_ablation_rtt_threshold(benchmark):
    rows = run_once(
        benchmark,
        lambda: rtt_threshold_sweep(duration=BENCH.static_duration),
    )
    heading("AB2 — PMSB(e) RTT threshold on the 1:8 victim scenario")
    print(f"{'thr (us)':>8s} {'q1 Gbps':>8s} {'q2 Gbps':>8s} "
          f"{'fair err':>9s} {'RTT p99':>9s}")
    for row in rows:
        print(f"{row.parameter:8.0f} {row.queue1_gbps:8.2f} "
              f"{row.queue2_gbps:8.2f} {row.fair_share_error:9.2f} "
              f"{row.rtt_p99_us:7.0f}us")
    by_threshold = {row.parameter: row for row in rows}
    assert by_threshold[0.0].fair_share_error > 0.3
    assert by_threshold[40.0].fair_share_error < 0.15
