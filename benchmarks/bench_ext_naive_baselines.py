"""E-NAIVE — the §II-B commodity baselines at fabric scale.

The paper quantifies per-queue-standard, per-queue-fractional and
per-port marking only in single-switch microbenchmarks (Figs. 1–3).
This bench runs them through the full FCT harness next to PMSB,
quantifying the §II-B trade-offs in end-to-end terms: per-queue-standard
pays small-flow latency, per-queue-fractional pays large-flow
throughput, and PMSB dominates both at once.
"""

from conftest import heading, run_once

import repro.experiments.largescale as ls
from repro.ecn.per_queue import (PerQueueMarker, fractional_thresholds,
                                 standard_thresholds)
from repro.experiments.largescale import N_SERVICES, run_fct_point
from repro.experiments.scale import BENCH
from repro.metrics.fct import SizeClass

BASELINES = {
    "per-queue-std": lambda: PerQueueMarker(
        standard_thresholds(N_SERVICES, 65.0)),
    "per-queue-frac": lambda: PerQueueMarker(
        fractional_thresholds([1.0] * N_SERVICES, 65.0)),
}


def _point_with(marker_factory):
    original = ls.largescale_scheme

    def patched(name, link_rate=10e9, base_rtt_hops=4):
        spec = original(name, link_rate, base_rtt_hops)
        if marker_factory is not None and name == "pmsb":
            spec.marker_factory = marker_factory
        return spec

    ls.largescale_scheme = patched
    try:
        return run_fct_point("pmsb", "dwrr", 0.5, BENCH, seed=1)
    finally:
        ls.largescale_scheme = original


def test_naive_baselines_at_scale(benchmark):
    def experiment():
        rows = {"PMSB": _point_with(None)}
        for label, factory in BASELINES.items():
            rows[label] = _point_with(factory)
        return rows

    rows = run_once(benchmark, experiment)
    heading("E-NAIVE — commodity per-queue baselines vs PMSB "
            "(DWRR, load 0.5)")
    print(f"{'marking':16s} {'overall':>9s} {'lg avg':>9s} "
          f"{'sm avg':>9s} {'sm p99':>9s}")
    for label, row in rows.items():
        print(f"{label:16s} {row.overall.mean * 1e3:8.3f}m "
              f"{row.large.mean * 1e3:8.3f}m "
              f"{row.small.mean * 1e3:8.3f}m "
              f"{row.small.p99 * 1e3:8.3f}m")

    # §II-B at scale: PMSB's small-flow latency beats the standard
    # per-queue setting (which holds up to 8 standing queues per port).
    assert (rows["PMSB"].stat(SizeClass.SMALL, "mean")
            < rows["per-queue-std"].stat(SizeClass.SMALL, "mean"))
    assert all(row.completed == row.n_flows for row in rows.values())
