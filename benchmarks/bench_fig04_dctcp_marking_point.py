"""E04 / Fig. 4 — DCTCP enqueue vs dequeue marking.

Paper setup: 4 flows, one queue, 1 Gbps, threshold 16 packets.  Paper
result: slow-start peak 87 packets at enqueue marking, ~25% lower at
dequeue marking (the congestion signal arrives one sojourn time
earlier).  Expected shape: dequeue peak noticeably below enqueue peak;
steady state near the threshold for both.
"""

from conftest import heading, run_once

from repro.experiments.marking_point import dctcp_enqueue_dequeue


def test_fig04_dctcp_peaks(benchmark):
    traces = run_once(benchmark, lambda: dctcp_enqueue_dequeue(duration=0.02))
    heading("Fig. 4 — DCTCP slow-start buffer peak (paper: 87 -> ~25% lower)")
    enq, deq = traces["enqueue"], traces["dequeue"]
    reduction = 100.0 * (1 - deq.peak / enq.peak)
    print(f"enqueue marking: peak {enq.peak:3d} pkts, "
          f"steady mean {enq.steady_mean:5.1f}")
    print(f"dequeue marking: peak {deq.peak:3d} pkts, "
          f"steady mean {deq.steady_mean:5.1f}")
    print(f"peak reduction:  {reduction:4.1f}% (paper: ~25%)")
    assert deq.peak < enq.peak
