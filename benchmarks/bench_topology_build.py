"""Engineering benchmark — parametric topology generator build cost.

Not a paper artifact: prices the :class:`~repro.net.topology.ClosGenerator`
against the hand-wired ``leaf_spine`` builder it replaced.  The
pre-redesign builder is inlined below verbatim (minus the shared-buffer
plumbing, which is off in both legs) so the comparison survives the old
code's deletion: both legs build the paper's 4×4×12 leaf-spine fabric
with the same scheduler/marker factories, interleaved in one process so
machine noise hits both equally.  ``REPRO_TOPOLOGY_BUILD_GATE`` (default
1.10) caps the generator/legacy median build-time ratio — the
declarative API is allowed to cost a dispatch layer, not a rewrite of
the hot loop.

The second half walks the X-SCALE ladder (48 → 1024 hosts) and records
wall-clock build time plus tracemalloc peak per rung in
``BENCH_topology.json``, so fabric-generation cost at 1k-host scale is a
tracked number rather than folklore.
"""

import gc
import json
import os
import tracemalloc
from pathlib import Path
from statistics import median
from time import perf_counter

from conftest import heading

from repro.core.pmsb import PmsbMarker
from repro.net.host import Host
from repro.net.link import Link
from repro.net.port import Port
from repro.net.switch import Switch
from repro.net.topology import (DEFAULT_BUFFER_PACKETS, DEFAULT_LINK_DELAY,
                                Network, TopologySpec)
from repro.scheduling.dwrr import DwrrScheduler
from repro.scheduling.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.ecn.base import NullMarker
from repro.experiments.xscale import SCALE_LADDER

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_topology.json"
TRIAL_PAIRS = 7

PAPER_SPEC = TopologySpec.parse("leaf-spine:leaf=4,spine=4,hosts=12")


def _factories():
    return lambda: DwrrScheduler(2), lambda: PmsbMarker(16.0)


def _legacy_leaf_spine(sim, scheduler_factory, marker_factory,
                       n_leaf=4, n_spine=4, hosts_per_leaf=12,
                       link_rate=10e9, link_delay=DEFAULT_LINK_DELAY,
                       buffer_packets=DEFAULT_BUFFER_PACKETS):
    """The pre-redesign hand-wired builder, inlined as the A/B reference."""
    network = Network(sim)
    n_hosts = n_leaf * hosts_per_leaf
    hosts = [Host(sim, i) for i in range(n_hosts)]
    network.hosts = hosts
    leaves = [Switch(sim, name=f"leaf{i}", ecmp_salt=1000 + i)
              for i in range(n_leaf)]
    spines = [Switch(sim, name=f"spine{i}", ecmp_salt=2000 + i)
              for i in range(n_spine)]
    network.switches = leaves + spines

    def managed_port(link, name):
        return Port(sim, link, scheduler_factory(), marker_factory(),
                    buffer_packets=buffer_packets, name=name)

    def plain_port(link, name):
        return Port(sim, link, FifoScheduler(), NullMarker(),
                    buffer_packets=buffer_packets, name=name)

    for leaf_index, leaf in enumerate(leaves):
        for slot in range(hosts_per_leaf):
            host = hosts[leaf_index * hosts_per_leaf + slot]
            up = Link(sim, link_rate, link_delay, leaf,
                      name=f"{host.name}->{leaf.name}")
            host.attach_nic(plain_port(up, f"{host.name}:nic"))
            down = Link(sim, link_rate, link_delay, host,
                        name=f"{leaf.name}->{host.name}")
            port_index = leaf.add_port(
                managed_port(down, f"{leaf.name}:to_{host.name}"))
            leaf.set_route(host.host_id, [port_index])

    uplink_indices = [[] for _ in range(n_leaf)]
    for leaf_index, leaf in enumerate(leaves):
        for spine in spines:
            up = Link(sim, link_rate, link_delay, spine,
                      name=f"{leaf.name}->{spine.name}")
            uplink_indices[leaf_index].append(leaf.add_port(
                managed_port(up, f"{leaf.name}:to_{spine.name}")))
            down = Link(sim, link_rate, link_delay, leaf,
                        name=f"{spine.name}->{leaf.name}")
            down_index = spine.add_port(
                managed_port(down, f"{spine.name}:to_{leaf.name}"))
            for slot in range(hosts_per_leaf):
                spine.set_route(leaf_index * hosts_per_leaf + slot,
                                [down_index])

    for leaf_index, leaf in enumerate(leaves):
        for host in hosts:
            if host.host_id // hosts_per_leaf != leaf_index:
                leaf.set_route(host.host_id, uplink_indices[leaf_index])
    return network


def _time_build(build):
    gc.collect()
    start = perf_counter()
    network = build(Simulator())
    elapsed = perf_counter() - start
    return network, elapsed


def _spec_build(spec):
    sched, marker = _factories()
    return lambda sim: spec.build(sim, sched, marker)


def _legacy_build():
    sched, marker = _factories()
    return lambda sim: _legacy_leaf_spine(sim, sched, marker)


def _fabric_fingerprint(network):
    """Everything result-relevant: names, salts, port order, routes."""
    return [
        (sw.name, sw.ecmp_salt,
         tuple(port.name for port in sw.ports),
         tuple(sorted((dst, tuple(group))
                      for dst, group in sw.routes.items())))
        for sw in network.switches
    ]


def test_generator_matches_legacy_and_gate():
    """The generator rebuilds the legacy fabric and stays within the gate.

    Structural identity (same switch names, salts, port-add order, ECMP
    groups) is asserted outright — it is the byte-identity contract the
    differential tests pin at the result level.  Build time is gated:
    generator median <= REPRO_TOPOLOGY_BUILD_GATE x legacy median.
    """
    legacy_net, _ = _time_build(_legacy_build())
    spec_net, _ = _time_build(_spec_build(PAPER_SPEC))
    assert _fabric_fingerprint(spec_net) == _fabric_fingerprint(legacy_net)
    assert len(spec_net.hosts) == 48

    legacy_times, spec_times = [], []
    for _ in range(TRIAL_PAIRS):
        _, elapsed = _time_build(_legacy_build())
        legacy_times.append(elapsed)
        _, elapsed = _time_build(_spec_build(PAPER_SPEC))
        spec_times.append(elapsed)
    legacy_ms = median(legacy_times) * 1e3
    spec_ms = median(spec_times) * 1e3
    ratio = spec_ms / legacy_ms

    ladder = []
    for text, expected_hosts in SCALE_LADDER:
        spec = TopologySpec.parse(text)
        network, elapsed = _time_build(_spec_build(spec))
        assert len(network.hosts) == expected_hosts
        gc.collect()
        tracemalloc.start()
        network = _spec_build(spec)(Simulator())
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        ladder.append({
            "topology": text,
            "hosts": len(network.hosts),
            "switches": len(network.switches),
            "build_ms": round(elapsed * 1e3, 2),
            "peak_mib": round(peak / 2**20, 1),
        })
        del network

    record = {
        "benchmark": "fabric build time, DWRR(2)+PMSB ports, no traffic",
        "trials_per_mode": TRIAL_PAIRS,
        "legacy_leaf_spine_ms": round(legacy_ms, 2),
        "generator_leaf_spine_ms": round(spec_ms, 2),
        "generator_over_legacy": round(ratio, 3),
        "ladder": ladder,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    heading("Topology generator — build cost vs the hand-wired builder")
    print(f"legacy {legacy_ms:.2f} ms | generator {spec_ms:.2f} ms "
          f"(x{ratio:.3f})")
    for rung in ladder:
        print(f"{rung['hosts']:5d} hosts {rung['switches']:4d} sw "
              f"{rung['build_ms']:8.2f} ms {rung['peak_mib']:6.1f} MiB "
              f"({rung['topology']})")

    gate = float(os.environ.get("REPRO_TOPOLOGY_BUILD_GATE", "1.10"))
    assert ratio <= gate, (
        f"generator builds the paper fabric {ratio:.3f}x slower than the "
        f"hand-wired builder (gate {gate}x)")
