"""E10 / Fig. 10 — PMSB holds fair sharing under heavy traffic (1:100).

Paper setup: same as Fig. 8 with 100 flows in queue 2.  Paper result:
the 50/50 split and full utilization hold even at this extreme ratio.
(101 hosts → this is the most expensive static bench; duration is
halved relative to the others.)
"""

from conftest import heading, run_once

from repro.experiments.static_flows import weighted_fair_sharing


def test_fig10_pmsb_1v100(benchmark):
    result = run_once(
        benchmark,
        lambda: weighted_fair_sharing("pmsb", flows_queue2=100,
                                      duration=0.03, warmup_fraction=0.5,
                                      stagger=5e-3),
    )
    heading("Fig. 10 — PMSB, DWRR, K=12, 1 vs 100 flows (paper: ~5 / ~5)")
    print(f"queue 1 (1 flow):    {result.queue_gbps[0]:5.2f} Gbps")
    print(f"queue 2 (100 flows): {result.queue_gbps[1]:5.2f} Gbps")
    print(f"total:               {result.total_gbps:5.2f} Gbps")
    assert abs(result.queue_gbps[0] - result.queue_gbps[1]) < 1.5
    assert result.total_gbps > 8.5
