"""Engineering benchmark — threshold-controller overhead.

Not a paper artifact: proves the closed-loop threshold layer
(:mod:`repro.control`) is free when disabled and prices it when
enabled.  Disabling the controller builds no runtime at all — the only
residue in the datapath is the markers' per-packet
``_commit_thresholds`` boundary check, so a disabled run must match the
baseline within noise; that is the gate.  The enabled run (a CEM
controller sampling every port each 500 µs with a schedule pinned to
the markers' construction threshold) is measured and recorded for the
record, not gated: a neutral schedule stages nothing, so it prices
exactly the observation loop — sampling, draining, controller
decisions — on top of an event-identical simulation.

Trials interleave the modes in one process so machine-wide noise hits
both equally (same method as ``bench_sharedbuf_overhead``); the ratio
of medians is what ``BENCH_controller.json`` records.
``REPRO_CONTROLLER_OVERHEAD_GATE`` (default 1.10) caps the acceptable
disabled/baseline slowdown ratio.
"""

import gc
import json
import os
from pathlib import Path
from statistics import median
from time import perf_counter

from conftest import heading

from repro.control.controller import ControllerRuntime, ControllerSpec
from repro.core.pmsb import PmsbMarker
from repro.net.topology import single_bottleneck
from repro.scheduling.dwrr import DwrrScheduler
from repro.sim.engine import Simulator
from repro.transport.endpoints import open_flow
from repro.transport.flow import Flow

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_controller.json"
TRIAL_DURATION = 0.004
TRIAL_PAIRS = 5

THRESHOLD = 16.0
#: Schedule pinned to the construction threshold: the controller runs
#: its full observation loop each period but every decision is a no-op,
#: so the enabled trial prices the loop itself, not different marking.
NEUTRAL_SPEC = ControllerSpec(name="cem", period=500e-6,
                              k0=THRESHOLD, k1=THRESHOLD)


def _incast_trial(controller_spec):
    """One cold 1:8 PMSB incast; returns (events, elapsed seconds)."""
    sim = Simulator()
    network = single_bottleneck(
        sim, 9, lambda: DwrrScheduler(2), lambda: PmsbMarker(THRESHOLD))
    runtime = None
    if controller_spec is not None:
        runtime = ControllerRuntime(
            sim, network.all_marked_ports(), controller_spec.build(),
            controller_spec.period)
    for i in range(9):
        open_flow(network, Flow(src=i, dst=9, service=0 if i == 0 else 1))
    if runtime is not None:
        runtime.start()
    gc.collect()
    start = perf_counter()
    sim.run(until=TRIAL_DURATION)
    elapsed = perf_counter() - start
    if runtime is not None:
        runtime.stop()
        assert runtime.ticks > 0  # the loop really ran
        assert runtime.changes_staged == 0  # ...and stayed neutral
    return sim.events_processed, elapsed


def test_controller_overhead_and_bench_json():
    """A disabled controller must cost nothing; enabled is recorded.

    Writes ``BENCH_controller.json`` with baseline / disabled / enabled
    throughput and asserts the disabled mode stays within the overhead
    gate of the baseline.  The enabled leg's event count exceeds the
    baseline's only by its own periodic ticks — subtracting them must
    give the identical packet-event count, proving the neutral schedule
    changed no marking or transmission behaviour.
    """
    baseline_rates, disabled_rates, enabled_rates = [], [], []
    baseline_events = disabled_events = enabled_events = 0
    _incast_trial(None)  # warm code paths once, untimed
    n_ticks = int(TRIAL_DURATION / NEUTRAL_SPEC.period)
    for _ in range(TRIAL_PAIRS):
        baseline_events, elapsed = _incast_trial(None)
        baseline_rates.append(baseline_events / elapsed)
        disabled_events, elapsed = _incast_trial(None)
        disabled_rates.append(disabled_events / elapsed)
        enabled_events, elapsed = _incast_trial(NEUTRAL_SPEC)
        enabled_rates.append(enabled_events / elapsed)

    baseline = median(baseline_rates)
    disabled = median(disabled_rates)
    enabled = median(enabled_rates)
    overhead_disabled = baseline / disabled
    overhead_enabled = baseline / enabled
    record = {
        "benchmark": "1:8 PMSB incast, DWRR(2), 4 ms simulated, cold start",
        "trials_per_mode": TRIAL_PAIRS,
        "events_per_run": baseline_events,
        "baseline": {
            "mode": "no controller (no runtime built)",
            "events_per_second": round(baseline),
        },
        "disabled": {
            "mode": "controller not configured (must be identical)",
            "events_per_second": round(disabled),
        },
        "enabled": {
            "mode": f"cem controller, neutral k={THRESHOLD:g} schedule, "
                    f"period={NEUTRAL_SPEC.period:g}s (observation loop "
                    "priced, no marking change)",
            "events_per_second": round(enabled),
        },
        "overhead_disabled": round(overhead_disabled, 3),
        "overhead_enabled": round(overhead_enabled, 3),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    heading("Threshold controller — disabled overhead vs baseline")
    print(f"baseline {baseline:,.0f} ev/s | disabled {disabled:,.0f} ev/s "
          f"(x{overhead_disabled:.3f}) | enabled {enabled:,.0f} ev/s "
          f"(x{overhead_enabled:.3f})")

    # Zero-cost-when-off implies zero-behaviour-change: identical event
    # counts, and the neutral enabled run adds only its own ticks.
    assert baseline_events == disabled_events
    assert enabled_events - baseline_events == n_ticks

    gate = float(os.environ.get("REPRO_CONTROLLER_OVERHEAD_GATE", "1.10"))
    assert overhead_disabled <= gate, (
        f"disabled controller mode {overhead_disabled:.3f}x slower than "
        f"the baseline (gate {gate}x) — the layer is supposed to be free "
        f"when off")
