"""E06 / Fig. 6 — raising the per-port threshold to 65 packets restores
fair sharing for 1:8 flows.

Paper observation (§III): with K=65 the victim flow's marking ratio is
low enough that it does not back off excessively, so the 50/50 split
holds — the insight behind "selective blindness can be aggressive".
"""

from conftest import heading, run_once

from repro.experiments.motivation import per_port_victim
from repro.experiments.scale import BENCH


def test_fig06_large_threshold_fair(benchmark):
    result = run_once(
        benchmark,
        lambda: per_port_victim(port_threshold=65.0, flows_queue2=8,
                                duration=BENCH.static_duration),
    )
    heading("Fig. 6 — per-port K=65, 1 flow vs 8 flows (fairness restored)")
    print(f"queue 1 (1 flow):  {result.queue1_gbps:5.2f} Gbps")
    print(f"queue 2 (8 flows): {result.queue2_gbps:5.2f} Gbps")
    assert result.fair_share_error < 0.15
