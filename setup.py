"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists so `pip install -e .`
works in offline environments without the `wheel` package (legacy
`setup.py develop` path).
"""

from setuptools import setup

setup()
