#!/usr/bin/env python3
"""Quickstart: the victim-flow problem and how PMSB fixes it.

Builds the paper's motivating scenario twice — 1 flow vs 8 flows through
two equal-weight DWRR queues of one 10 Gbps port — first with plain
per-port ECN marking (Fig. 3: the lone flow is starved), then with PMSB
(Fig. 8-style: the 50/50 split holds).

Run:  python examples/quickstart.py
"""

from repro import (DwrrScheduler, Flow, PerPortMarker, PmsbMarker, Simulator,
                   ThroughputMeter, open_flow, single_bottleneck)

LINK_RATE = 10e9
DURATION = 0.03
N_QUEUE2_FLOWS = 8
PORT_THRESHOLD = 16  # packets


def run_scenario(marker_factory, label):
    sim = Simulator()
    network = single_bottleneck(
        sim,
        n_senders=1 + N_QUEUE2_FLOWS,
        scheduler_factory=lambda: DwrrScheduler(2),
        marker_factory=marker_factory,
        link_rate=LINK_RATE,
    )
    meter = ThroughputMeter(sim, bin_width=1e-3)
    meter.attach_port(network.bottleneck_port)

    receiver = network.hosts[-1].host_id
    # Sender 0 alone in queue 0; senders 1..8 share queue 1.
    for sender in range(1 + N_QUEUE2_FLOWS):
        service = 0 if sender == 0 else 1
        open_flow(network, Flow(src=sender, dst=receiver, service=service))

    sim.run(until=DURATION)

    q0 = meter.average_bps(0, DURATION / 3, DURATION) / 1e9
    q1 = meter.average_bps(1, DURATION / 3, DURATION) / 1e9
    marker = network.bottleneck_port.marker
    print(f"\n{label}")
    print(f"  queue 1 (1 flow):  {q0:5.2f} Gbps")
    print(f"  queue 2 (8 flows): {q1:5.2f} Gbps")
    print(f"  packets marked:    {marker.packets_marked}"
          f" ({100 * marker.mark_fraction:.1f}% of ECT packets)")
    if hasattr(marker, "victims_protected"):
        print(f"  victims protected: {marker.victims_protected}")
    return q0, q1


def main():
    print("The multi-queue ECN victim-flow problem (paper Figs. 3 vs 8)")
    print(f"1 flow vs {N_QUEUE2_FLOWS} flows, two equal DWRR queues, "
          f"port threshold {PORT_THRESHOLD} packets")

    pp_q0, _ = run_scenario(lambda: PerPortMarker(PORT_THRESHOLD),
                            "Per-port ECN marking (current practice):")
    pmsb_q0, pmsb_q1 = run_scenario(lambda: PmsbMarker(PORT_THRESHOLD),
                                    "PMSB (per-port marking with "
                                    "selective blindness):")

    print("\nSummary: the lone flow got "
          f"{pp_q0:.2f} Gbps under per-port marking but "
          f"{pmsb_q0:.2f} Gbps under PMSB "
          f"(fair share is {(pmsb_q0 + pmsb_q1) / 2:.2f} Gbps).")


if __name__ == "__main__":
    main()
