#!/usr/bin/env python3
"""Tuning PMSB thresholds with Theorem IV.1.

The paper's answer to "is it hard to determine the parameters?": no —
Theorem IV.1 lower-bounds each queue's filter threshold
(k_i > γ_i·C·RTT/7), and the port threshold is their sum.  This example
computes the bound for a fabric, then validates it by simulation:
utilization collapses below the bound and saturates above it.

Run:  python examples/threshold_tuning.py
"""

from repro.core.analysis import SteadyStateModel, worst_case_flow_count
from repro.experiments.analysis_validation import (estimate_rtt,
                                                   threshold_bound_sweep)

LINK_RATE = 10e9
WEIGHTS = [1.0, 1.0]


def main():
    rtt = estimate_rtt(LINK_RATE)
    model = SteadyStateModel(LINK_RATE, rtt, WEIGHTS)

    print(f"fabric: {LINK_RATE / 1e9:.0f} Gbps bottleneck, base RTT "
          f"{rtt * 1e6:.1f} us -> BDP {model.bdp_pkts:.1f} packets")
    print(f"\nTheorem IV.1 bounds (k_i > gamma_i * C*RTT / 7):")
    for queue in range(len(WEIGHTS)):
        bound = model.threshold_bound(queue)
        n_star = worst_case_flow_count(model.gamma(queue), model.bdp_pkts,
                                       bound)
        print(f"  queue {queue}: k_{queue} > {bound:5.2f} packets "
              f"(worst case at ~{n_star:.1f} flows)")
    print(f"  recommended port threshold: "
          f"> {model.port_threshold_bound():.2f} packets "
          f"(paper's large-scale choice: 12)")

    print("\nvalidating by simulation (1x..4x the bound, worst-case flows):")
    print(f"  {'k_i/bound':>9s} {'k_i':>6s} {'flows':>6s} "
          f"{'predicted ok':>13s} {'utilization':>12s}")
    for row in threshold_bound_sweep(threshold_factors=(0.25, 0.5, 1.0,
                                                        2.0, 4.0),
                                     duration=0.02):
        print(f"  {row.queue_threshold / row.bound:9.2f} "
              f"{row.queue_threshold:6.2f} {2 * row.n_flows:6d} "
              f"{str(row.predicted_underflow_free):>13s} "
              f"{row.utilization:12.3f}")

    print("\nthe knee sits at the theorem's bound: below it the queue "
          "underflows and the link runs dry; above it utilization is full.")


if __name__ == "__main__":
    main()
