#!/usr/bin/env python3
"""A multi-service datacenter fabric under realistic load.

The scenario the paper's introduction motivates: operators isolate 8
services into 8 switch queues for QoS, and need ECN that respects that
isolation.  This example builds a leaf-spine fabric, drives it with a
Poisson arrival of realistically-sized flows (60% small / 10% large),
and prints per-size-class and per-service FCT statistics under PMSB.

Run:  python examples/multi_service_fabric.py [load]
"""

import sys
from collections import defaultdict

from repro import (DctcpConfig, DwrrScheduler, FctCollector, PAPER_MIX,
                   PmsbMarker, PoissonFlowGenerator, Simulator,
                   leaf_spine, make_rng, open_flow, summarize)

LINK_RATE = 10e9
N_SERVICES = 8
N_FLOWS = 150
SIZE_SCALE = 0.1  # shrink the workload so the example runs in seconds


def main():
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"Leaf-spine fabric (2x2, 8 hosts), {N_SERVICES} services, "
          f"load {load:.1f}, PMSB marking")

    sim = Simulator()
    network = leaf_spine(
        sim,
        scheduler_factory=lambda: DwrrScheduler(N_SERVICES),
        marker_factory=lambda: PmsbMarker(port_threshold_packets=12),
        n_leaf=2, n_spine=2, hosts_per_leaf=4,
        link_rate=LINK_RATE,
    )

    rng = make_rng(42)
    generator = PoissonFlowGenerator(
        rng, [h.host_id for h in network.hosts],
        PAPER_MIX.scaled(SIZE_SCALE), load=load, link_rate_bps=LINK_RATE,
        n_services=N_SERVICES,
    )
    flows = generator.generate(n_flows=N_FLOWS)

    collector = FctCollector(size_scale=SIZE_SCALE)
    for flow in flows:
        open_flow(network, flow, DctcpConfig(init_cwnd=16.0),
                  on_complete=collector.on_complete)

    deadline = flows[-1].start_time + 2.0
    while len(collector) < len(flows) and sim.now < deadline:
        sim.run(until=sim.now + 0.01)

    print(f"\n{len(collector)}/{len(flows)} flows completed "
          f"({sim.events_processed} events simulated)")

    print("\nFCT by size class:")
    for size_class, stats in collector.summary_by_class().items():
        if stats is None:
            continue
        print(f"  {size_class.value:7s} n={stats.count:4d} "
              f"avg={stats.mean * 1e3:7.3f} ms  "
              f"p95={stats.p95 * 1e3:7.3f} ms  "
              f"p99={stats.p99 * 1e3:7.3f} ms")

    by_service = defaultdict(list)
    for record in collector.records:
        by_service[record.service].append(record.fct)
    print("\nFCT by service (queue):")
    for service in sorted(by_service):
        stats = summarize(by_service[service])
        print(f"  service {service}: n={stats.count:3d} "
              f"avg={stats.mean * 1e3:7.3f} ms  "
              f"p99={stats.p99 * 1e3:7.3f} ms")

    marked = sum(p.marker.packets_marked for p in network.all_marked_ports())
    drops = sum(p.drops for s in network.switches for p in s.ports)
    print(f"\nfabric totals: {marked} packets CE-marked, {drops} drops")


if __name__ == "__main__":
    main()
