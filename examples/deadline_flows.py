#!/usr/bin/env python3
"""Deadline-aware transport over a PMSB fabric.

D2TCP (one of the ECN-based transports the paper's introduction cites)
gamma-corrects DCTCP's back-off by deadline imminence.  This example
runs a batch of deadline-carrying flows through a PMSB-marked bottleneck
twice — once with plain DCTCP, once with D2TCP — and compares deadline
miss rates.  The marking substrate is identical; only the sender's
response changes, demonstrating how PMSB composes with any ECN-based
transport.

Run:  python examples/deadline_flows.py
"""

from repro import (DctcpConfig, DwrrScheduler, Flow, PmsbMarker, Simulator,
                   open_flow, single_bottleneck)
from repro.metrics.fct import FctCollector
from repro.transport.d2tcp import D2tcpSender
from repro.transport.dctcp import DctcpSender

LINK_RATE = 10e9
N_TIGHT = 6           # flows with a hard 5 ms deadline
N_LOOSE = 6           # flows with a relaxed 100 ms deadline
FLOW_BYTES = 600_000
TIGHT_DEADLINE = 5.0e-3
LOOSE_DEADLINE = 100e-3


def run(sender_class, label):
    n_flows = N_TIGHT + N_LOOSE
    sim = Simulator()
    network = single_bottleneck(
        sim, n_flows,
        scheduler_factory=lambda: DwrrScheduler(2),
        marker_factory=lambda: PmsbMarker(port_threshold_packets=65),
        link_rate=LINK_RATE,
    )
    collector = FctCollector()
    tight_ids = set()
    for sender in range(n_flows):
        tight = sender < N_TIGHT
        flow = Flow(src=sender, dst=n_flows, size_bytes=FLOW_BYTES,
                    service=sender % 2,
                    deadline=TIGHT_DEADLINE if tight else LOOSE_DEADLINE,
                    start_time=sender * 10e-6)
        if tight:
            tight_ids.add(flow.flow_id)
        open_flow(network, flow, DctcpConfig(init_cwnd=16.0),
                  on_complete=collector.on_complete,
                  sender_class=sender_class)
    sim.run(until=0.3)

    tight_records = [r for r in collector.records if r.flow_id in tight_ids]
    met = sum(1 for r in tight_records if r.fct <= TIGHT_DEADLINE)
    loose_records = [r for r in collector.records
                     if r.flow_id not in tight_ids]
    loose_met = sum(1 for r in loose_records if r.fct <= LOOSE_DEADLINE)
    print(f"\n{label}")
    print(f"  completed:            {len(collector)}/{n_flows}")
    print(f"  tight deadlines met:  {met}/{N_TIGHT} "
          f"({TIGHT_DEADLINE * 1e3:.0f} ms budget)")
    print(f"  loose deadlines met:  {loose_met}/{N_LOOSE} "
          f"({LOOSE_DEADLINE * 1e3:.0f} ms budget)")
    if tight_records:
        worst = max(r.fct for r in tight_records)
        print(f"  worst tight-flow FCT: {worst * 1e3:.2f} ms")
    return met


def main():
    print(f"{N_TIGHT} tight-deadline + {N_LOOSE} loose-deadline flows "
          f"({FLOW_BYTES // 1000} KB each), shared PMSB bottleneck")
    dctcp_met = run(DctcpSender, "DCTCP (deadline-agnostic):")
    d2tcp_met = run(D2tcpSender, "D2TCP (deadline-aware back-off):")
    print(f"\nD2TCP met {d2tcp_met - dctcp_met:+d} more tight deadlines "
          f"than DCTCP: urgent flows back off less, relaxed flows donate.")


if __name__ == "__main__":
    main()
