#!/usr/bin/env python3
"""PMSB over generic packet schedulers (paper Figs. 13–15).

MQ-ECN only works over round-based schedulers; PMSB's claim is that one
marking scheme serves them all.  This example runs the paper's three
scheduler-policy scenarios — SP+WFQ, pure SP with rate-limited sources,
and WFQ — and prints the throughput staircase of each phase against the
policy's intended allocation.

Run:  python examples/scheduler_policies.py
"""

from repro.experiments.static_flows import (scheduler_sp, scheduler_sp_wfq,
                                            scheduler_wfq)

EXPECTED = {
    "SP+WFQ": {"q1+q2+q3": (5.0, 2.5, 2.5)},
    "SP": {"q1+q2+q3": (5.0, 3.0, 2.0)},
    "WFQ": {"q1+q2": (5.0, 5.0)},
}


def show(result):
    print(f"\n{result.scheduler} under {result.scheme} marking")
    header = "  ".join(f"{'q' + str(q + 1):>7s}" for q in sorted(result.series))
    print(f"  {'phase':12s} {header}")
    for _t0, _t1, label in result.phases:
        rates = result.phase_gbps[label]
        cells = "  ".join(f"{rates[q]:5.2f}G" for q in sorted(rates))
        print(f"  {label:12s} {cells}")
    expected = EXPECTED[result.scheduler].get(result.phases[-1][2])
    if expected:
        cells = " / ".join(f"{v:.1f}G" for v in expected)
        print(f"  intended settled allocation: {cells}")


def main():
    print("PMSB preserves scheduling policies that MQ-ECN cannot serve.")
    show(scheduler_sp_wfq(duration=0.06))
    show(scheduler_sp(duration=0.06))
    show(scheduler_wfq(duration=0.06))


if __name__ == "__main__":
    main()
