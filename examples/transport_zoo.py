#!/usr/bin/env python3
"""Every transport in the library over the same PMSB bottleneck.

Five ECN-era datacenter transports share nothing but the fabric: DCTCP
(windowed, proportional back-off), classic ECN TCP (windowed, halving),
D2TCP (deadline-aware DCTCP), DCQCN (rate-based, CNP-driven), and TIMELY
(rate-based, RTT-gradient, ignores ECN entirely).  Each runs a 4-flow
incast through a PMSB-marked port; the table shows how differently the
same marking signal is consumed.

Run:  python examples/transport_zoo.py
"""

import numpy as np

from repro import (DctcpConfig, DwrrScheduler, Flow, PmsbMarker, Simulator,
                   ThroughputMeter, single_bottleneck)
from repro.transport.classic_ecn import ClassicEcnSender
from repro.transport.d2tcp import D2tcpSender
from repro.transport.dcqcn import open_dcqcn_flow
from repro.transport.dctcp import DctcpSender
from repro.transport.endpoints import open_flow
from repro.transport.timely import TimelySender

LINK_RATE = 10e9
N_FLOWS = 4
DURATION = 0.04


def build():
    sim = Simulator()
    network = single_bottleneck(
        sim, N_FLOWS,
        scheduler_factory=lambda: DwrrScheduler(2),
        marker_factory=lambda: PmsbMarker(port_threshold_packets=16),
        link_rate=LINK_RATE,
    )
    meter = ThroughputMeter(sim, bin_width=1e-3)
    meter.attach_port(network.bottleneck_port)
    return sim, network, meter


def measure(sim, network, meter, rtt_sources):
    sim.run(until=DURATION)
    total = sum(
        meter.average_bps(q, DURATION / 2, DURATION)
        for q in range(network.bottleneck_port.n_queues)
    ) / 1e9
    samples = []
    for source in rtt_sources:
        values = getattr(source, "rtt_samples", None)
        if values:
            samples.extend(values[len(values) // 2:])
    rtt_p99 = np.percentile(samples, 99) * 1e6 if samples else float("nan")
    marked = network.bottleneck_port.marker.packets_marked
    return total, rtt_p99, marked


def run_windowed(sender_class):
    sim, network, meter = build()
    handles = [
        open_flow(network, Flow(src=i, dst=N_FLOWS, service=i % 2,
                                deadline=10e-3),
                  DctcpConfig(record_rtt=True), sender_class=sender_class)
        for i in range(N_FLOWS)
    ]
    return measure(sim, network, meter, [h.sender for h in handles])


def run_dcqcn():
    sim, network, meter = build()
    for i in range(N_FLOWS):
        open_dcqcn_flow(network, Flow(src=i, dst=N_FLOWS, service=i % 2))
    return measure(sim, network, meter, [])


def main():
    print(f"{N_FLOWS}-flow incast, PMSB port threshold 16, "
          f"{DURATION * 1e3:.0f} ms simulated per transport\n")
    print(f"{'transport':14s} {'signal':22s} {'total':>7s} "
          f"{'RTT p99':>9s} {'CE marks':>9s}")
    zoo = [
        ("DCTCP", "ECN ratio (window)", lambda: run_windowed(DctcpSender)),
        ("classic ECN", "ECN halving (window)",
         lambda: run_windowed(ClassicEcnSender)),
        ("D2TCP", "ECN + deadlines", lambda: run_windowed(D2tcpSender)),
        ("DCQCN", "CNPs (pacing rate)", run_dcqcn),
        ("TIMELY", "RTT gradient (no ECN)",
         lambda: run_windowed(TimelySender)),
    ]
    for name, signal, runner in zoo:
        total, rtt_p99, marked = runner()
        rtt = f"{rtt_p99:7.0f}us" if rtt_p99 == rtt_p99 else "     n/a"
        print(f"{name:14s} {signal:22s} {total:6.2f}G {rtt} {marked:9d}")

    print("\nAll five fill the link; they differ in how much standing")
    print("queue (RTT) they tolerate and how many marks they generate —")
    print("PMSB's marking layer serves every one of them unchanged.")


if __name__ == "__main__":
    main()
