#!/usr/bin/env python3
"""Full-size reproduction runner (the PAPER scale profile).

Runs the complete Figs. 16–27 FCT sweeps at the paper's dimensions —
48-host 4×4 leaf-spine, unscaled flow sizes, the full load range — and
writes every row to JSON/CSV as it completes.  This is hours of wall
time on one core; run it detached:

    nohup python examples/run_paper_profile.py results_paper/ &

The BENCH-profile benchmarks already reproduce the paper's *shape* in
minutes; this script exists for anyone who wants the full-size numbers.
"""

import os
import sys
import time

from repro.experiments.largescale import (LARGESCALE_SCHEMES,
                                          run_fct_point)
from repro.experiments.scale import PAPER
from repro.metrics.export import rows_to_csv, to_json


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "results_paper"
    os.makedirs(out_dir, exist_ok=True)
    rows = []
    t_start = time.time()
    for scheduler in ("dwrr", "wfq"):
        for load in PAPER.loads:
            for scheme in LARGESCALE_SCHEMES:
                if scheduler == "wfq" and scheme == "mq-ecn":
                    continue
                t0 = time.time()
                row = run_fct_point(scheme, scheduler, load, PAPER, seed=1)
                rows.append(row)
                print(f"[{time.time() - t_start:7.0f}s] {scheduler} "
                      f"load={load:.1f} {row.scheme:8s} "
                      f"overall={row.overall.mean * 1e3:7.3f}ms "
                      f"({row.completed}/{row.n_flows} flows, "
                      f"{time.time() - t0:.0f}s)", flush=True)
                # Checkpoint after every point: a long run can be
                # interrupted without losing completed work.
                rows_to_csv(rows, os.path.join(out_dir, "fct_sweep.csv"))
                to_json(rows, os.path.join(out_dir, "fct_sweep.json"))
    print(f"done in {time.time() - t_start:.0f}s -> {out_dir}/")


if __name__ == "__main__":
    main()
