#!/usr/bin/env python3
"""Incremental PMSB(e) deployment — one host at a time.

The deployability story of §V: PMSB(e) needs no switch change, so an
operator can upgrade senders gradually.  This example runs the 1-vs-8
victim scenario three ways — nobody upgraded, only the victim upgraded,
everyone upgraded — and shows that a single-host upgrade already
reclaims the victim's fair share while coexisting with stock DCTCP
peers.

Run:  python examples/incremental_deployment.py
"""

from repro import (DctcpConfig, DwrrScheduler, Flow, PerPortMarker,
                   RttEcnFilter, Simulator, ThroughputMeter, open_flow,
                   single_bottleneck)

LINK_RATE = 10e9
DURATION = 0.03
PORT_THRESHOLD = 16
RTT_THRESHOLD = 40e-6
N_OTHERS = 8


def run(upgraded_senders):
    sim = Simulator()
    network = single_bottleneck(
        sim, 1 + N_OTHERS,
        scheduler_factory=lambda: DwrrScheduler(2),
        marker_factory=lambda: PerPortMarker(PORT_THRESHOLD),
        link_rate=LINK_RATE,
    )
    meter = ThroughputMeter(sim, bin_width=1e-3)
    meter.attach_port(network.bottleneck_port)

    receiver = network.hosts[-1].host_id
    handles = []
    for sender in range(1 + N_OTHERS):
        if sender in upgraded_senders:
            config = DctcpConfig(
                ecn_filter_factory=lambda: RttEcnFilter(RTT_THRESHOLD))
        else:
            config = DctcpConfig()
        service = 0 if sender == 0 else 1
        handles.append(open_flow(
            network, Flow(src=sender, dst=receiver, service=service), config))
    sim.run(until=DURATION)

    q0 = meter.average_bps(0, DURATION / 3, DURATION) / 1e9
    q1 = meter.average_bps(1, DURATION / 3, DURATION) / 1e9
    filtered = sum(getattr(h.sender.ecn_filter, "marks_ignored", 0)
                   for h in handles)
    return q0, q1, filtered


def main():
    print("Per-port-marking switch, 1 flow (queue 1) vs 8 flows (queue 2).")
    print("Who runs the PMSB(e) RTT filter changes who gets what:\n")
    print(f"{'deployment':32s} {'victim':>8s} {'others':>8s} "
          f"{'marks ignored':>14s}")
    scenarios = [
        ("nobody (stock DCTCP everywhere)", set()),
        ("victim only", {0}),
        ("everyone", set(range(1 + N_OTHERS))),
    ]
    for label, upgraded in scenarios:
        q0, q1, filtered = run(upgraded)
        print(f"{label:32s} {q0:7.2f}G {q1:7.2f}G {filtered:14d}")

    print("\nUpgrading just the victim restores its 5 Gbps share; a full")
    print("rollout behaves the same — PMSB(e) coexists with stock DCTCP.")


if __name__ == "__main__":
    main()
