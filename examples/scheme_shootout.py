#!/usr/bin/env python3
"""Every ECN marking scheme on the same victim scenario.

One table, seven schemes: how each marking strategy trades off the three
metrics the paper cares about — weighted fair sharing (the 1-flow
queue's share), latency (RTT p99 of the busy queue's flows), and
throughput (total Gbps) — on the 1-vs-8-flow DWRR bottleneck.

Run:  python examples/scheme_shootout.py
"""

from repro.experiments.scenario import (incast_flows, make_scheme,
                                        run_incast)
from repro.metrics.stats import summarize
from repro.scheduling.dwrr import DwrrScheduler

SCHEMES = (
    "per-queue-standard",
    "per-queue-fractional",
    "per-port",
    "mq-ecn",
    "tcn",
    "pmsb",
    "pmsb-e",
)

DURATION = 0.03


def main():
    print("1 flow vs 8 flows, two equal DWRR queues, 10 Gbps "
          f"({DURATION * 1e3:.0f} ms simulated per scheme)\n")
    print(f"{'scheme':20s} {'q1 Gbps':>8s} {'q2 Gbps':>8s} "
          f"{'total':>7s} {'fair err':>9s} {'RTT p99':>9s}")
    for name in SCHEMES:
        scheme = make_scheme(name, n_queues=2, port_threshold_packets=16,
                             rtt_threshold=40e-6)
        result = run_incast(
            scheme, lambda: DwrrScheduler(2), incast_flows([1, 8]),
            duration=DURATION, record_rtt=True,
        )
        q0, q1 = result.queue_gbps[0], result.queue_gbps[1]
        fair = (q0 + q1) / 2
        error = abs(q0 - fair) / fair if fair else 0.0
        samples = result.rtt_samples(queue_index=1)
        p99_us = summarize(samples[len(samples) // 3:]).p99 * 1e6
        print(f"{scheme.name:20s} {q0:8.2f} {q1:8.2f} "
              f"{q0 + q1:7.2f} {error:9.2f} {p99_us:7.0f}us")

    print("\nReading the table:")
    print("- per-queue standard: fair + full rate, but worst latency")
    print("- per-queue fractional: fair + low latency, loses throughput")
    print("- per-port: full rate + low latency, starves the lone flow")
    print("- PMSB / PMSB(e): all three at once (the paper's claim)")


if __name__ == "__main__":
    main()
