#!/usr/bin/env python3
"""Regenerate the paper's figure data as CSV files.

Runs the static-figure experiments and writes plot-ready CSVs into
``results/`` (or a directory given as argv[1]): CDFs for the RTT
figures, time series for the throughput figures, and sweep tables for
the rest.  Feed them to any plotting tool to redraw the paper.

Run:  python examples/export_figure_data.py [output_dir]
"""

import os
import sys

from repro.experiments import motivation, static_flows
from repro.experiments.analysis_validation import threshold_bound_sweep
from repro.metrics.export import rows_to_csv, series_to_csv
from repro.metrics.stats import empirical_cdf


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    os.makedirs(out_dir, exist_ok=True)
    written = []

    def path(name):
        full = os.path.join(out_dir, name)
        written.append(full)
        return full

    # Fig. 1 — RTT CDF per active-queue count.
    print("fig1: per-queue standard threshold RTT ...")
    rtt_by_queues = motivation.per_queue_standard_rtt(duration=0.02)
    rows = [
        {"queues": n, "mean_us": s.mean * 1e6, "p95_us": s.p95 * 1e6,
         "p99_us": s.p99 * 1e6}
        for n, s in sorted(rtt_by_queues.items())
    ]
    import csv
    with open(path("fig01_rtt_vs_queues.csv"), "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)

    # Fig. 3/6/7 — per-port victim sweep.
    print("fig3/6/7: per-port victim configurations ...")
    victims = [
        motivation.per_port_victim(16.0, 8, duration=0.02),
        motivation.per_port_victim(65.0, 8, duration=0.02),
        motivation.per_port_victim(65.0, 40, duration=0.02),
    ]
    rows_to_csv(victims, path("fig03_06_07_perport_victim.csv"))

    # Fig. 9 — RTT CDFs per scheme.
    print("fig9: RTT distributions by scheme ...")
    from repro.experiments.scenario import make_scheme, run_incast, incast_flows
    from repro.scheduling.dwrr import DwrrScheduler
    for name in ("pmsb", "pmsb-e", "tcn", "per-queue-standard"):
        scheme = make_scheme(name, n_queues=2, port_threshold_packets=12,
                             tcn_threshold=39e-6)
        result = run_incast(scheme, lambda: DwrrScheduler(2),
                            incast_flows([1, 4]), duration=0.02,
                            record_rtt=True)
        samples = result.rtt_samples(queue_index=1)
        xs, ps = empirical_cdf(samples[len(samples) // 3:])
        slug = name.replace("-", "_")
        series_to_csv(xs * 1e6, ps, path(f"fig09_rtt_cdf_{slug}.csv"),
                      header=("rtt_us", "cum_prob"))

    # Fig. 15 — WFQ throughput time series.
    print("fig15: WFQ throughput series ...")
    policy = static_flows.scheduler_wfq(duration=0.04)
    for queue, (times, gbps) in policy.series.items():
        series_to_csv(times * 1e3, gbps / 1e9,
                      path(f"fig15_wfq_queue{queue + 1}.csv"),
                      header=("time_ms", "gbps"))

    # Theorem IV.1 sweep.
    print("theorem: threshold bound sweep ...")
    rows_to_csv(threshold_bound_sweep(duration=0.02),
                path("theorem_iv1_sweep.csv"))

    print(f"\nwrote {len(written)} files:")
    for name in written:
        print(f"  {name}")


if __name__ == "__main__":
    main()
