"""Unit tests for the scheme registry and incast plumbing."""

from __future__ import annotations

import pytest

from repro.core.pmsb import PmsbMarker
from repro.core.pmsb_endhost import AcceptAllFilter, RttEcnFilter
from repro.ecn.base import MarkPoint, NullMarker
from repro.ecn.mq_ecn import MqEcnMarker
from repro.ecn.per_port import PerPortMarker
from repro.ecn.per_queue import PerQueueMarker
from repro.ecn.tcn import TcnMarker
from repro.experiments.scenario import (SCHEME_NAMES, incast_flows,
                                        make_scheme, run_incast)
from repro.scheduling.dwrr import DwrrScheduler
from repro.store import RunConfig


class TestMakeScheme:
    def test_all_names_buildable(self):
        for name in SCHEME_NAMES:
            spec = make_scheme(name)
            assert spec.marker_factory() is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("quic")

    def test_pmsb_marker_type(self):
        marker = make_scheme("pmsb", port_threshold_packets=12).marker_factory()
        assert isinstance(marker, PmsbMarker)
        assert marker.port_threshold_packets == 12

    def test_pmsbe_combines_per_port_and_filter(self):
        spec = make_scheme("pmsb-e", rtt_threshold=40e-6)
        assert isinstance(spec.marker_factory(), PerPortMarker)
        filt = spec.ecn_filter_factory()
        assert isinstance(filt, RttEcnFilter)
        assert filt.rtt_threshold == 40e-6

    def test_plain_schemes_use_accept_all(self):
        for name in ("pmsb", "mq-ecn", "tcn", "per-port"):
            filt = make_scheme(name).ecn_filter_factory()
            assert isinstance(filt, AcceptAllFilter)

    def test_mq_ecn_rtt_lambda_matches_standard_threshold(self):
        spec = make_scheme("mq-ecn", link_rate=10e9,
                           standard_threshold_packets=16)
        marker = spec.marker_factory()
        assert isinstance(marker, MqEcnMarker)
        assert marker.rtt == pytest.approx(16 * 1500 * 8 / 10e9)

    def test_tcn_threshold_defaults_to_drain_time(self):
        marker = make_scheme("tcn", link_rate=10e9,
                             standard_threshold_packets=16).marker_factory()
        assert isinstance(marker, TcnMarker)
        assert marker.sojourn_threshold == pytest.approx(19.2e-6)

    def test_fractional_thresholds_split_by_weight(self):
        marker = make_scheme(
            "per-queue-fractional", n_queues=2, weights=[3, 1],
            standard_threshold_packets=16,
        ).marker_factory()
        assert isinstance(marker, PerQueueMarker)
        assert marker.threshold(0) == 12.0
        assert marker.threshold(1) == 4.0

    def test_none_scheme(self):
        assert isinstance(make_scheme("none").marker_factory(), NullMarker)

    def test_mark_point_propagates(self):
        marker = make_scheme("pmsb",
                             mark_point=MarkPoint.DEQUEUE).marker_factory()
        assert marker.mark_point is MarkPoint.DEQUEUE

    def test_transport_config_carries_filter(self):
        config = make_scheme("pmsb-e").transport_config(init_cwnd=4.0)
        assert isinstance(config.ecn_filter_factory(), RttEcnFilter)
        assert config.init_cwnd == 4.0


class TestIncastFlows:
    def test_sender_layout(self):
        flows = incast_flows([1, 3])
        assert len(flows) == 4
        assert [f.src for f in flows] == [0, 1, 2, 3]
        assert all(f.dst == 4 for f in flows)
        assert [f.service for f in flows] == [0, 1, 1, 1]

    def test_start_times_per_queue(self):
        flows = incast_flows([1, 2], start_times=[0.0, 0.5])
        assert flows[0].start_time == 0.0
        assert flows[1].start_time == 0.5
        assert flows[2].start_time == 0.5

    def test_long_lived(self):
        assert all(f.is_long_lived for f in incast_flows([2, 2]))


class TestRunIncast:
    def test_returns_queue_rates(self):
        result = run_incast(
            make_scheme("pmsb"), lambda: DwrrScheduler(2),
            incast_flows([1, 1]), config=RunConfig(duration=0.004),
        )
        assert set(result.queue_gbps) == {0, 1}
        assert result.total_gbps > 5.0  # link mostly utilized

    def test_trace_capture(self):
        result = run_incast(
            make_scheme("pmsb"), lambda: DwrrScheduler(2),
            incast_flows([1, 1]), config=RunConfig(duration=0.002),
            trace_occupancy=True,
        )
        assert result.trace is not None
        assert result.trace.peak > 0

    def test_rtt_capture_by_queue(self):
        result = run_incast(
            make_scheme("pmsb"), lambda: DwrrScheduler(2),
            incast_flows([1, 2]), config=RunConfig(duration=0.002),
            record_rtt=True,
        )
        assert len(result.rtt_samples(queue_index=1)) > 0
        total = len(result.rtt_samples())
        assert total >= len(result.rtt_samples(queue_index=1))
