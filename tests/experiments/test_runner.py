"""Unit tests for the parallel experiment runner."""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import available_jobs, run_parallel, seed_for


def square(x):
    return x * x


def pid_of(_config):
    return os.getpid()


def seeded_stream(config):
    """A worker whose output depends only on its config — the contract
    every sweep worker must satisfy for jobs-invariant results."""
    import random

    base_seed, index = config
    rng = random.Random(seed_for(base_seed, index))
    return [rng.random() for _ in range(5)]


class TestSeedFor:
    def test_stable_across_calls(self):
        assert seed_for(42, 7) == seed_for(42, 7)

    def test_distinct_per_index(self):
        seeds = {seed_for(42, index) for index in range(100)}
        assert len(seeds) == 100

    def test_distinct_per_base(self):
        assert seed_for(1, 0) != seed_for(2, 0)

    def test_fits_in_signed_32_bits(self):
        for index in range(100):
            assert 0 <= seed_for(123456789, index) < 2**31


class TestRunParallel:
    def test_serial_preserves_order(self):
        assert run_parallel(range(10), square, jobs=1) == [
            x * x for x in range(10)]

    def test_default_is_serial(self):
        assert run_parallel([3, 4], square) == [9, 16]

    def test_parallel_preserves_order(self):
        assert run_parallel(range(20), square, jobs=4) == [
            x * x for x in range(20)]

    def test_jobs_zero_means_all_cores(self):
        assert run_parallel(range(4), square, jobs=0) == [0, 1, 4, 9]

    def test_empty_configs(self):
        assert run_parallel([], square, jobs=4) == []

    def test_single_config_stays_in_process(self):
        assert run_parallel([7], pid_of, jobs=8) == [os.getpid()]

    def test_parallel_uses_worker_processes(self):
        pids = run_parallel(range(8), pid_of, jobs=4)
        if os.getpid() in pids:
            pytest.skip("platform fell back to serial execution")
        assert len(set(pids)) >= 2

    def test_results_identical_across_job_counts(self):
        configs = [(42, index) for index in range(12)]
        serial = run_parallel(configs, seeded_stream, jobs=1)
        parallel = run_parallel(configs, seeded_stream, jobs=4)
        assert serial == parallel

    def test_generator_configs_are_materialized(self):
        assert run_parallel((x for x in range(5)), square, jobs=2) == [
            0, 1, 4, 9, 16]


def boom(config):
    if config == 3:
        raise RuntimeError("worker failure")
    return config


class TestWorkerExceptions:
    """Worker-raised exceptions must surface, not trigger the serial
    fallback — the run store's injected-crash hook depends on it."""

    def test_propagates_serial(self):
        with pytest.raises(RuntimeError, match="worker failure"):
            run_parallel(range(5), boom, jobs=1)

    def test_propagates_parallel(self):
        with pytest.raises(RuntimeError, match="worker failure"):
            run_parallel(range(5), boom, jobs=2)


class TestAvailableJobs:
    def test_at_least_one(self):
        assert available_jobs() >= 1

    def test_respects_cpu_affinity_mask(self, monkeypatch):
        """Containerised runners pin the process to a CPU subset;
        ``available_jobs`` must report the mask, not the whole machine."""
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 2, 5}, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_jobs() == 3

    def test_empty_affinity_mask_degrades_to_one(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(), raising=False)
        assert available_jobs() == 1

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert available_jobs() == 7
