"""X-AUTOTUNE: cache keys, store contract, match-or-beat guarantee,
and the controller-disabled byte-identity differential."""

from __future__ import annotations

import pytest

from repro.control.controller import ControllerSpec
from repro.experiments import largescale
from repro.experiments.autotune import (CONTROLLER_PERIOD, AutotuneRow,
                                        autotune_point_spec, run_autotune,
                                        run_autotune_point)
from repro.experiments.scale import TINY
from repro.sim.rng import stable_digest
from repro.store import RunStore

pytestmark = pytest.mark.slow

SEED = 7

#: Pre-controller baselines for the TINY FCT point (seed 7, load 0.5,
#: DWRR).  These digests were computed on the tree *before* the control
#: subsystem existed: a run with no controller must stay byte-identical
#: to the pre-controller simulator — the zero-cost guarantee that lets
#: the controller param stay out of disabled runs' cache keys.
PRE_CONTROLLER_DIGESTS = {
    "pmsb": "ddbb9654a17f8086e014985e56adff358ba6c24a7d76e19f996c28a0675f2a2b",
    "per-port":
        "4931b4a474c5e8d65e939307d0f6f0e4f5303a6097bbb3f8ce5bd993373351c8",
}


class TestPointSpec:
    def test_schedule_re_keys_the_point(self):
        a = autotune_point_spec(4.0, 4.0, "dwrr", 0.3, 0.7, TINY, SEED)
        b = autotune_point_spec(4.0, 16.0, "dwrr", 0.3, 0.7, TINY, SEED)
        assert a.key != b.key

    def test_chaos_re_keys_the_point(self):
        calm = autotune_point_spec(4.0, 4.0, "dwrr", 0.3, 0.7, TINY, SEED)
        chaos = autotune_point_spec(4.0, 4.0, "dwrr", 0.3, 0.7, TINY, SEED,
                                    chaos=True)
        assert calm.key != chaos.key

    def test_load_shift_re_keys_the_point(self):
        a = autotune_point_spec(4.0, 4.0, "dwrr", 0.3, 0.7, TINY, SEED)
        b = autotune_point_spec(4.0, 4.0, "dwrr", 0.3, 0.9, TINY, SEED)
        assert a.key != b.key

    def test_period_is_pinned_in_key(self):
        spec = autotune_point_spec(4.0, 4.0, "dwrr", 0.3, 0.7, TINY, SEED)
        assert dict(spec.params)["period"] == CONTROLLER_PERIOD

    def test_distinct_from_fct_sweep_family(self):
        ours = autotune_point_spec(12.0, 12.0, "dwrr", 0.5, 0.5, TINY, SEED)
        fct = largescale.fct_point_spec("pmsb", "dwrr", 0.5, TINY, SEED)
        assert ours.key != fct.key

    def test_disabled_fct_key_carries_no_controller_param(self):
        # Adding the controller layer must not re-key a decade of cached
        # uncontrolled points: the param appears only when a spec is set.
        plain = largescale.fct_point_spec("pmsb", "dwrr", 0.5, TINY, SEED)
        assert "controller" not in dict(plain.params)
        ctl = largescale.fct_point_spec(
            "pmsb", "dwrr", 0.5, TINY, SEED,
            controller=ControllerSpec(name="cem", k0=4.0))
        assert "controller" in dict(ctl.params)
        assert plain.key != ctl.key


class TestControllerDisabledByteIdentity:
    @pytest.mark.parametrize("scheme_name", sorted(PRE_CONTROLLER_DIGESTS))
    def test_disabled_run_matches_pre_controller_tree(self, scheme_name):
        row = largescale.run_fct_point(scheme_name, "dwrr", 0.5, TINY,
                                       seed=SEED)
        assert stable_digest(row.to_payload()) == \
            PRE_CONTROLLER_DIGESTS[scheme_name]

    def test_enabled_run_actually_binds(self):
        # The differential's other half: an aggressive schedule must
        # change the numbers, proving the loop is wired into the run
        # (staged changes commit and move marking decisions).
        stats = {}
        row = largescale.run_fct_point(
            "pmsb", "dwrr", 0.5, TINY, seed=SEED,
            controller=ControllerSpec(name="cem", t1=0.0, k0=2.0, k1=2.0),
            controller_stats_out=stats)
        assert stats["changes_staged"] > 0
        assert stable_digest(row.to_payload()) != \
            PRE_CONTROLLER_DIGESTS["pmsb"]


class TestRow:
    def test_payload_round_trip(self):
        row = run_autotune_point(12.0, 12.0, "dwrr", 0.3, 0.7, TINY,
                                 seed=SEED)
        assert AutotuneRow.from_payload(row.to_payload()) == row
        assert row.static
        assert row.t_shift > 0
        assert row.objective > 0

    def test_audited_point_passes(self):
        # Every threshold change rides set_thresholds, so the auditor's
        # marker-threshold-boundary rule must hold through a whole
        # controlled run (off-diagonal: the controller really retunes).
        row = run_autotune_point(4.0, 24.0, "dwrr", 0.3, 0.7, TINY,
                                 seed=SEED, audit=True)
        assert row.controller["changes_staged"] >= 1


GRID = (4.0, 12.0)


def _autotune(cache_dir, jobs=None, chaos=False):
    return run_autotune(
        grid=GRID, scheduler_name="dwrr", load_lo=0.3, load_hi=0.85,
        profile=TINY, seed=SEED, chaos=chaos, rounds=1, population=2,
        jobs=jobs, store=str(cache_dir) if cache_dir else None)


class TestRunAutotune:
    def test_tuned_matches_or_beats_static(self, tmp_path):
        report = _autotune(tmp_path / "cache")
        assert report.best_tuned.objective <= report.best_static.objective
        assert report.improvement_percent >= 0.0
        assert report.n_evaluations >= len(GRID)
        assert [row.k0 for row in report.static_rows] == list(GRID)
        assert all(row.static for row in report.static_rows)

    def test_warm_rerun_computes_nothing_and_matches(self, tmp_path):
        cold = _autotune(tmp_path / "cache")
        n_cached = len(RunStore(tmp_path / "cache"))
        assert n_cached == cold.n_evaluations
        warm = _autotune(tmp_path / "cache")
        assert len(RunStore(tmp_path / "cache")) == n_cached
        assert warm.to_payload() == cold.to_payload()

    def test_jobs_invariant(self, tmp_path):
        serial = _autotune(tmp_path / "a", jobs=1)
        parallel = _autotune(tmp_path / "b", jobs=2)
        assert serial.to_payload() == parallel.to_payload()

    def test_chaos_leg_runs_and_keys_apart(self, tmp_path):
        calm = _autotune(tmp_path / "cache")
        chaos = _autotune(tmp_path / "cache", chaos=True)
        # Distinct cache families: the chaos sweep added new entries.
        assert len(RunStore(tmp_path / "cache")) == \
            calm.n_evaluations + chaos.n_evaluations
        assert chaos.best_tuned.objective <= chaos.best_static.objective
