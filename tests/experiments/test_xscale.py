"""X-SCALE: victim-flow error vs fabric size on generated Clos fabrics."""

from __future__ import annotations

import pytest

from repro.experiments import xscale
from repro.experiments.scale import TINY
from repro.net.topology import TopologySpec
from repro.store.runstore import RunStore
from repro.store.spec import RunConfig

SMALL_CLOS = "clos:tiers=2,ports=4,oversub=3"  # 24 hosts, 6 switches


class TestPickEndpoints:
    def test_deterministic_and_distinct(self):
        hosts = list(range(24))
        a = xscale._pick_endpoints(hosts, hogs=8, seed=3)
        b = xscale._pick_endpoints(hosts, hogs=8, seed=3)
        assert a == b
        receiver, victim, sources = a
        assert receiver != victim
        assert len(sources) == 8
        assert len(set(sources)) == 8
        assert receiver not in sources and victim not in sources

    def test_seed_moves_the_receiver(self):
        hosts = list(range(24))
        r1, _, _ = xscale._pick_endpoints(hosts, hogs=8, seed=1)
        r2, _, _ = xscale._pick_endpoints(hosts, hogs=8, seed=2)
        assert r1 != r2

    def test_too_small_fabric_is_an_error(self):
        with pytest.raises(ValueError, match="needs"):
            xscale._pick_endpoints(list(range(5)), hogs=8, seed=1)


class TestPointSpec:
    def test_keys_on_topology_params(self):
        spec_a = xscale.xscale_point_spec("pmsb", "dwrr", SMALL_CLOS,
                                          TINY, 1)
        spec_b = xscale.xscale_point_spec(
            "pmsb", "dwrr", "clos:tiers=2,ports=4,oversub=4", TINY, 1)
        assert spec_a.key() != spec_b.key()

    def test_hogs_re_key(self):
        spec_a = xscale.xscale_point_spec("pmsb", "dwrr", SMALL_CLOS,
                                          TINY, 1, hogs=8)
        spec_b = xscale.xscale_point_spec("pmsb", "dwrr", SMALL_CLOS,
                                          TINY, 1, hogs=16)
        assert spec_a.key() != spec_b.key()

    def test_equivalent_spellings_share_a_key(self):
        spec_a = xscale.xscale_point_spec("pmsb", "dwrr", SMALL_CLOS,
                                          TINY, 1)
        spec_b = xscale.xscale_point_spec(
            "pmsb", "dwrr", TopologySpec.parse(
                "clos:oversubscription=3,ports_per_switch=4,tiers=2"),
            TINY, 1)
        assert spec_a.key() == spec_b.key()


class TestPoint:
    def test_single_bottleneck_is_rejected(self):
        with pytest.raises(ValueError, match="multi-host"):
            xscale.xscale_point("pmsb", "single-bottleneck:senders=4")

    def test_point_measures_the_receiver_downlink(self):
        row = xscale.xscale_point("pmsb", SMALL_CLOS, hogs=4, seed=1,
                                  config=RunConfig(duration=0.008))
        assert row.n_hosts == 24
        assert row.n_switches == 6
        assert row.topology == "clos:oversub=3.0,ports=4,tiers=2"
        assert row.victim_gbps > 0 and row.hogs_gbps > 0
        assert 0.0 <= row.victim_err
        assert row.build_s > 0

    def test_pmsb_protects_the_victim_better_than_per_port(self):
        rows = {
            scheme: xscale.xscale_point(scheme, SMALL_CLOS, hogs=4,
                                        seed=1,
                                        config=RunConfig(duration=0.01))
            for scheme in ("pmsb", "per-port")
        }
        assert rows["pmsb"].victim_err < rows["per-port"].victim_err

    def test_payload_round_trip(self):
        row = xscale.xscale_point("pmsb", SMALL_CLOS, hogs=4, seed=1,
                                  config=RunConfig(duration=0.004))
        assert xscale.XScaleRow.from_payload(row.to_payload()) == row


class TestSweep:
    def test_sweep_caches_and_resumes(self, tmp_path):
        ladder = ((SMALL_CLOS, 24),)
        config = RunConfig(jobs=1, cache_dir=str(tmp_path), resume=True)
        first = xscale.run_xscale_sweep(
            scheme_names=("pmsb",), ladder=ladder, hogs=4,
            profile=TINY, config=config)
        store = RunStore(str(tmp_path))
        assert len(list(store.records())) == 1
        second = xscale.run_xscale_sweep(
            scheme_names=("pmsb",), ladder=ladder, hogs=4,
            profile=TINY, config=config)
        assert [row.to_payload() for row in first] == \
            [row.to_payload() for row in second]

    def test_ladder_pin_catches_shape_regressions(self):
        config = RunConfig(jobs=1)
        with pytest.raises(RuntimeError, match="shape regression"):
            xscale.run_xscale_sweep(
                scheme_names=("pmsb",), ladder=((SMALL_CLOS, 999),),
                hogs=4, profile=TINY, config=config)

    def test_plain_string_ladder_entries(self):
        rows = xscale.run_xscale_sweep(
            scheme_names=("pmsb",), ladder=(SMALL_CLOS,), hogs=4,
            profile=TINY, config=RunConfig(jobs=1))
        assert len(rows) == 1
        assert rows[0].n_hosts == 24
