"""Shared-buffer experiments: cache keys, store contract, zero-cost
differential, and pool conservation under injected faults."""

from __future__ import annotations

import pytest

from repro.experiments import largescale
from repro.experiments.scale import TINY
from repro.experiments.scenario import incast_flows, make_scheme, run_incast
from repro.experiments.sharedbuf import (SharedBufRow, default_policies,
                                         run_sharedbuf_sweep,
                                         sharedbuf_point,
                                         sharedbuf_point_spec)
from repro.net.sharedbuf import SharedBufferSpec
from repro.scheduling.dwrr import DwrrScheduler
from repro.sim.faults import loss_spec
from repro.sim.rng import stable_digest
from repro.store import RunConfig, RunStore

pytestmark = pytest.mark.slow

SEED = 7
DT1 = SharedBufferSpec(policy="dt", capacity=64, alpha=1.0)
BSHARE = SharedBufferSpec(policy="bshare", capacity=64, target_delay=200e-6)

#: Pre-change baselines for the no-shared-buffer incast (1 vs 4 flows,
#: DWRR(2), 4 ms).  These digests were computed on the tree *before* the
#: shared-buffer layer existed: a run with the layer disabled must stay
#: byte-identical to the pre-layer simulator, which is the zero-cost
#: guarantee stated in ``repro.net.sharedbuf``.
PRE_LAYER_DIGESTS = {
    "pmsb": "af00f3c12c8d16bb0e6fcced15b1477a3e34a09f11bcc6373e972a553be7aa8a",
    "per-port": "618a0963b7b4a804d1b014a04f52ac1cb7a3d99bb522de71cd038dd071904dfa",
    "mq-ecn": "0c8c07e93bbe08d8ee9d1c915ad30af186d6fa9d83ed029a672597b7e6dd9fc3",
}


def _baseline_digest(scheme_name):
    scheme = make_scheme(scheme_name, n_queues=2)
    r = run_incast(scheme, lambda: DwrrScheduler(2), incast_flows([1, 4]),
                   config=RunConfig(duration=0.004))
    payload = {
        "scheme": r.scheme,
        "queue_gbps": {str(q): round(v, 12) for q, v in r.queue_gbps.items()},
        "drops": r.network.bottleneck_port.drops,
        "tx": r.network.bottleneck_port.tx_packets,
    }
    return stable_digest(payload)


class TestZeroCostDifferential:
    @pytest.mark.parametrize("scheme_name", sorted(PRE_LAYER_DIGESTS))
    def test_disabled_layer_is_byte_identical_to_pre_layer_tree(
            self, scheme_name):
        assert _baseline_digest(scheme_name) == PRE_LAYER_DIGESTS[scheme_name]


class TestPointSpec:
    def test_alpha_re_keys_the_point(self):
        a = sharedbuf_point_spec("pmsb", "dwrr", DT1, TINY, SEED)
        b = sharedbuf_point_spec(
            "pmsb", "dwrr",
            SharedBufferSpec(policy="dt", capacity=64, alpha=2.0),
            TINY, SEED)
        assert a.key != b.key

    def test_policy_re_keys_at_matched_capacity(self):
        dt = sharedbuf_point_spec("pmsb", "dwrr", DT1, TINY, SEED)
        bshare = sharedbuf_point_spec("pmsb", "dwrr", BSHARE, TINY, SEED)
        assert dt.key != bshare.key

    def test_baseline_keys_apart_from_policies(self):
        none = sharedbuf_point_spec("pmsb", "dwrr", None, TINY, SEED)
        dt = sharedbuf_point_spec("pmsb", "dwrr", DT1, TINY, SEED)
        assert none.key != dt.key

    def test_distinct_from_fct_sweep_family(self):
        ours = sharedbuf_point_spec("pmsb", "dwrr", None, TINY, SEED)
        fct = largescale.fct_point_spec("pmsb", "dwrr", 0.5, TINY, SEED)
        assert ours.key != fct.key


class TestRow:
    def test_payload_round_trip(self):
        row = sharedbuf_point(
            "pmsb", shared_buffer=DT1,
            config=RunConfig(duration=0.004))
        assert SharedBufRow.from_payload(row.to_payload()) == row

    def test_default_policy_grid_shape(self):
        policies = default_policies(capacity=32, alphas=(1.0, 2.0),
                                    target_delays=(100e-6,))
        assert [spec.policy for spec in policies] == ["dt", "dt", "bshare"]
        assert all(spec.capacity == 32 for spec in policies)


def _sweep(cache_dir, force=False, audit=None):
    return run_sharedbuf_sweep(
        scheme_names=("pmsb", "per-port"), policies=(DT1, BSHARE),
        include_baseline=True,
        config=RunConfig(profile=TINY, seed=SEED, audit=audit,
                         cache_dir=str(cache_dir) if cache_dir else None,
                         force=force))


class TestStoreContract:
    def test_cold_run_populates_store(self, tmp_path):
        rows = _sweep(tmp_path / "cache")
        assert len(RunStore(tmp_path / "cache")) == len(rows) == 6
        assert largescale._points_computed == 6

    def test_warm_run_computes_nothing(self, tmp_path):
        cold = _sweep(tmp_path / "cache")
        warm = _sweep(tmp_path / "cache")
        assert largescale._points_computed == 0
        assert warm == cold

    def test_policies_differentiate(self, tmp_path):
        rows = _sweep(tmp_path / "cache")
        by_policy = {(row.scheme, row.policy, row.alpha): row for row in rows}
        assert len(by_policy) == 6
        # The shallow shared memory must actually bind: some policy point
        # records pool pressure the private-buffer baseline cannot.
        assert any(row.pool_peak > 0 for row in rows if row.policy != "none")


class TestAuditedRuns:
    @pytest.mark.parametrize("spec", [DT1, BSHARE],
                             ids=["dt", "bshare"])
    def test_audited_policy_point_passes_conservation(self, spec):
        # The fabric auditor re-proves Σ per-port debits == pool totals
        # on every event and once more at verify_fabric; a bookkeeping
        # slip anywhere in the datapath fails the run.
        row = sharedbuf_point(
            "pmsb", shared_buffer=spec,
            config=RunConfig(duration=0.004, audit=True))
        assert row.policy == spec.policy


class TestChaosConservation:
    def test_fault_injected_drops_debit_pool_exactly_once(self):
        # Chaos drops happen on the wire, after the port has already
        # credited the shared pool at serialization end — an audited
        # lossy run over a shared buffer proves no drop is credited
        # twice (or forgotten) anywhere between admission and the fault.
        scheme = make_scheme("pmsb", n_queues=2)
        result = run_incast(
            scheme, lambda: DwrrScheduler(2), incast_flows([1, 4]),
            config=RunConfig(duration=0.004, audit=True),
            shared_buffer=DT1,
            faults=(loss_spec("iid-loss", 0.02, links="bottleneck"),),
            fault_seed=3,
        )
        stats = result.chaos.stats()
        assert sum(stats["drops"].values()) > 0
        shared = result.network.switches[0].shared_buffer
        assert shared.packet_count == sum(
            shared.occupancy_by_port().values())
