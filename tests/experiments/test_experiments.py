"""Fast shape checks of the experiment builders (tiny durations).

These don't reproduce the paper's numbers (the benchmarks do, at BENCH
scale); they verify each builder runs, returns the right structure, and
points the right direction.
"""

from __future__ import annotations

import pytest

from repro.experiments import (ablations, analysis_validation, largescale,
                               marking_point, motivation, static_flows)
from repro.experiments.scale import TINY
from repro.metrics.fct import SizeClass

FAST = 0.008  # seconds of simulated time — enough for direction checks


class TestMotivation:
    def test_fig1_rtt_grows_with_queue_count(self):
        results = motivation.per_queue_standard_rtt(
            queue_counts=(1, 8), duration=FAST
        )
        assert results[8].mean > results[1].mean

    def test_fig2_small_threshold_loses_throughput(self):
        results = motivation.per_queue_fractional_throughput(
            thresholds_packets=(2.0, 16.0), duration=FAST
        )
        assert results[2.0] < results[16.0] * 0.7
        assert results[16.0] > 8.0  # standard threshold fills the 10G link

    def test_fig3_per_port_creates_victim(self):
        result = motivation.per_port_victim(16.0, 8, duration=FAST)
        assert result.queue1_gbps < result.queue2_gbps * 0.5
        assert result.fair_share_error > 0.3

    def test_fig6_larger_threshold_restores_fairness(self):
        result = motivation.per_port_victim(65.0, 8, duration=FAST)
        assert result.fair_share_error < 0.1

    def test_fig7_more_flows_break_it_again(self):
        result = motivation.per_port_victim(65.0, 40, duration=FAST)
        assert result.fair_share_error > 0.3


class TestMarkingPoint:
    def test_fig4_dequeue_marking_lowers_peak(self):
        traces = marking_point.dctcp_enqueue_dequeue(duration=FAST)
        assert traces["dequeue"].peak < traces["enqueue"].peak

    def test_fig5_tcn_peak_like_late_feedback(self):
        dctcp = marking_point.dctcp_enqueue_dequeue(duration=FAST)
        tcn = marking_point.tcn_trace(duration=FAST)
        assert tcn.peak > dctcp["dequeue"].peak * 0.8

    def test_fig11_pmsb_peak_reduction(self):
        traces = marking_point.pmsb_trace(duration=FAST)
        assert traces["dequeue"].peak < traces["enqueue"].peak

    def test_fig12_pmsbe_peak_reduction(self):
        traces = marking_point.pmsbe_trace(duration=FAST)
        assert traces["dequeue"].peak < traces["enqueue"].peak

    def test_trace_steady_state_near_threshold(self):
        traces = marking_point.pmsb_trace(port_threshold=12.0, duration=FAST)
        assert 4.0 < traces["enqueue"].steady_mean < 30.0


class TestStaticFlows:
    def test_fig8_pmsb_weighted_fair_sharing(self):
        result = static_flows.weighted_fair_sharing("pmsb", duration=FAST)
        q0, q1 = result.queue_gbps[0], result.queue_gbps[1]
        assert q0 == pytest.approx(q1, rel=0.15)
        assert result.total_gbps > 8.0

    def test_fig9_pmsb_rtt_below_per_queue_standard(self):
        results = static_flows.rtt_distribution(
            scheme_names=("pmsb", "per-queue-standard"), duration=FAST
        )
        assert results["PMSB"].mean < results["Per-Queue(std)"].mean

    def test_fig13_sp_wfq_policy(self):
        result = static_flows.scheduler_sp_wfq(duration=3 * FAST)
        settled = result.settled()
        assert settled[0] == pytest.approx(5.0, rel=0.15)
        assert settled[1] == pytest.approx(2.5, rel=0.3)
        assert settled[2] == pytest.approx(2.5, rel=0.3)

    def test_fig14_sp_policy(self):
        result = static_flows.scheduler_sp(duration=3 * FAST)
        settled = result.settled()
        assert settled[0] == pytest.approx(5.0, rel=0.15)
        assert settled[1] == pytest.approx(3.0, rel=0.25)
        assert settled[2] == pytest.approx(2.0, rel=0.35)

    def test_fig15_wfq_policy(self):
        result = static_flows.scheduler_wfq(duration=3 * FAST)
        alone = result.phase_gbps["q1 only"]
        settled = result.settled()
        assert alone[0] > 8.0
        assert settled[0] == pytest.approx(settled[1], rel=0.2)

    def test_policy_series_available(self):
        result = static_flows.scheduler_wfq(duration=2 * FAST)
        times, gbps = result.series[0]
        assert len(times) == len(gbps) > 0


class TestLargescale:
    def test_tiny_point_completes(self):
        row = largescale.run_fct_point("pmsb", "dwrr", 0.5, TINY, seed=1)
        assert row.completed == row.n_flows
        assert row.overall.mean > 0
        assert row.small is not None

    def test_wfq_excludes_mq_ecn(self):
        rows = largescale.run_fct_sweep(
            ("pmsb", "mq-ecn"), "wfq", TINY, seed=1
        )
        assert all(row.scheme != "MQ-ECN" for row in rows)

    def test_mq_ecn_runs_under_dwrr(self):
        row = largescale.run_fct_point("mq-ecn", "dwrr", 0.5, TINY, seed=1)
        assert row.completed > 0

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            largescale.run_fct_point("pmsb", "fifo", 0.5, TINY)

    def test_reduction_percent(self):
        rows = largescale.run_fct_sweep(("pmsb", "tcn"), "dwrr", TINY, seed=1)
        reductions = largescale.reduction_percent(
            rows, "PMSB", "TCN", SizeClass.SMALL, "mean"
        )
        assert set(reductions) == set(TINY.loads)

    def test_row_stat_accessor(self):
        row = largescale.run_fct_point("pmsb", "dwrr", 0.5, TINY, seed=1)
        assert row.stat(None, "mean") == row.overall.mean
        assert row.stat(SizeClass.SMALL, "p99") == row.small.p99


class TestAnalysisValidation:
    def test_sweep_shows_bound(self):
        rows = analysis_validation.threshold_bound_sweep(
            threshold_factors=(0.25, 4.0), duration=FAST
        )
        below, above = rows
        assert not below.predicted_underflow_free
        assert above.predicted_underflow_free
        assert below.utilization < above.utilization
        assert above.utilization > 0.9


class TestAblations:
    def test_blindness_scale_zero_is_unfair(self):
        rows = ablations.blindness_aggressiveness(scales=(0.0, 1.0),
                                                  duration=FAST)
        assert rows[0].fair_share_error > rows[1].fair_share_error
        assert rows[1].fair_share_error < 0.15

    def test_rtt_threshold_restores_fairness(self):
        rows = ablations.rtt_threshold_sweep(thresholds_us=(0.0, 40.0),
                                             duration=FAST)
        assert rows[0].fair_share_error > rows[1].fair_share_error


class TestLargescaleExtensions:
    def test_fat_tree_topology_runs(self):
        row = largescale.run_fct_point("pmsb", "dwrr", 0.5, TINY, seed=1,
                                       topology="fat-tree")
        assert row.completed == row.n_flows

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            largescale.run_fct_point("pmsb", "dwrr", 0.5, TINY,
                                     topology="torus")

    def test_multi_seed_merges(self):
        merged = largescale.run_fct_point_multi(
            "pmsb", "dwrr", 0.5, TINY, seeds=(1, 2))
        single = largescale.run_fct_point("pmsb", "dwrr", 0.5, TINY, seed=1)
        assert merged.n_flows == 2 * single.n_flows
        assert merged.completed == merged.n_flows
        assert merged.overall.count == merged.completed

    def test_wrr_scheduler_supported(self):
        row = largescale.run_fct_point("mq-ecn", "wrr", 0.5, TINY, seed=1)
        assert row.completed > 0


class TestWeightedShareAblation:
    def test_unequal_weights_preserved(self):
        rows = ablations.weighted_share_preservation(
            weight_vectors=((3, 1),), duration=FAST)
        assert rows[0].max_relative_error < 0.1
        q0, q1 = rows[0].queue_gbps
        assert q0 > 2.0 * q1  # roughly 3:1

    def test_row_error_metric(self):
        from repro.experiments.ablations import WeightedShareRow
        perfect = WeightedShareRow(weights=(3, 1), queue_gbps=(7.5, 2.5))
        assert perfect.max_relative_error == 0.0
        skewed = WeightedShareRow(weights=(1, 1), queue_gbps=(8.0, 2.0))
        assert skewed.max_relative_error > 0.5
