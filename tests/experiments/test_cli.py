"""Smoke tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_every_command_registered(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_sweep_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--scheduler", "wfq", "--loads", "0.3", "0.5",
             "--seed", "7"]
        )
        assert args.scheduler == "wfq"
        assert args.loads == [0.3, 0.5]
        assert args.seed == 7


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "theorem" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_fig3_runs_and_exports(self, tmp_path, capsys):
        path = str(tmp_path / "fig3.json")
        assert main(["fig3", "--duration", "0.006", "--json", path]) == 0
        out = capsys.readouterr().out
        assert "queue 1" in out
        payload = json.loads(open(path).read())
        assert payload["queue2_gbps"] > payload["queue1_gbps"]

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "PMSB(e)" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8", "--duration", "0.006"]) == 0
        assert "q1" in capsys.readouterr().out

    def test_pool(self, capsys):
        assert main(["pool", "--duration", "0.006"]) == 0
        assert "port A" in capsys.readouterr().out

    def test_theorem_csv_export(self, tmp_path, capsys):
        path = str(tmp_path / "theorem.csv")
        assert main(["theorem", "--duration", "0.006", "--csv", path]) == 0
        with open(path) as handle:
            header = handle.readline()
        assert "utilization" in header


class TestNewCommands:
    def test_burst_and_transports_registered(self):
        parser = build_parser()
        assert parser.parse_args(["burst"]).command == "burst"
        assert parser.parse_args(["transports"]).command == "transports"

    def test_transports_runs(self, capsys):
        assert main(["transports", "--duration", "0.006"]) == 0
        out = capsys.readouterr().out
        assert "dctcp" in out and "dcqcn" in out


class TestAuditFlag:
    def test_every_command_accepts_audit(self):
        parser = build_parser()
        for name in COMMANDS:
            assert parser.parse_args([name, "--audit"]).audit is True
            assert parser.parse_args([name]).audit is False

    def test_audit_default_scoped_to_command(self, capsys):
        from repro.sim.audit import audit_enabled

        assert main(["fig3", "--duration", "0.006", "--audit"]) == 0
        assert "queue 1" in capsys.readouterr().out
        # The process-wide default is restored after the command returns.
        assert audit_enabled() is False

    def test_fig8_under_audit(self, capsys):
        assert main(["fig8", "--duration", "0.006", "--audit"]) == 0
        assert "q1" in capsys.readouterr().out


class TestCommonFlags:
    def test_every_command_accepts_common_flags(self):
        # The shared parent parser: identical spellings everywhere.
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args(
                [name, "--duration", "0.01", "--profile", "tiny",
                 "--jobs", "2", "--audit", "--json", "x.json",
                 "--csv", "x.csv"])
            assert args.duration == 0.01
            assert args.profile == "tiny"
            assert args.jobs == 2
            assert args.audit is True

    def test_scale_is_profile_alias(self):
        parser = build_parser()
        assert parser.parse_args(["sweep", "--scale", "tiny"]).profile \
            == "tiny"
        assert parser.parse_args(["fig3", "--scale", "bench"]).profile \
            == "bench"


class TestSweepParallelFlags:
    def test_jobs_flag(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_defaults_to_profile_choice(self):
        parser = build_parser()
        assert parser.parse_args(["sweep"]).jobs is None

    def test_profile_events_flag(self):
        parser = build_parser()
        assert parser.parse_args(
            ["sweep", "--profile-events"]).profile_events is True
        assert parser.parse_args(["sweep"]).profile_events is False

    def test_sweep_tiny_serial_equals_parallel(self, capsys):
        argv = ["sweep", "--scale", "tiny", "--seed", "3"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out


class TestSweepCacheFlags:
    def test_cache_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--cache-dir", "/tmp/c", "--resume"])
        assert args.cache_dir == "/tmp/c"
        assert args.resume is True
        assert args.force is False

    def test_resume_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--resume"])
        assert "--cache-dir" in capsys.readouterr().err

    def test_force_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--force"])
        assert "--cache-dir" in capsys.readouterr().err

    def test_cached_sweep_output_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["sweep", "--profile", "tiny", "--seed", "5",
                "--cache-dir", cache]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert main(argv) == 0  # every point answered from the store
        warm_out = capsys.readouterr().out
        assert cold_out == warm_out


class TestRunsGroup:
    def test_runs_without_subcommand_lists(self, capsys):
        assert main(["runs"]) == 0
        out = capsys.readouterr().out
        assert "list" in out and "gc" in out

    def test_list_empty_store(self, tmp_path, capsys):
        assert main(["runs", "list", "--cache-dir",
                     str(tmp_path / "empty")]) == 0
        assert "no records" in capsys.readouterr().out

    def test_list_show_diff_gc_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["sweep", "--profile", "tiny", "--seed", "5",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()

        assert main(["runs", "list", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "fct-point" in out and "pmsb" in out

        from repro.store import RunStore
        keys = RunStore(cache).keys()
        assert main(["runs", "show", "--cache-dir", cache,
                     keys[0][:12]]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["key"] == keys[0]
        assert payload["spec"]["experiment"] == "fct-point"

        assert main(["runs", "diff", "--cache-dir", cache,
                     keys[0], keys[1]]) == 0
        assert "spec." in capsys.readouterr().out

        assert main(["runs", "gc", "--cache-dir", cache]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_show_miss_exits_nonzero(self, tmp_path, capsys):
        assert main(["runs", "show", "--cache-dir",
                     str(tmp_path / "c"), "deadbeef"]) == 1
        assert "no record" in capsys.readouterr().err


class TestSharedBufferFlag:
    def test_every_command_accepts_shared_buffer(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args(
                [name, "--shared-buffer", "dt:capacity=64,alpha=2"])
            assert args.shared_buffer == "dt:capacity=64,alpha=2"

    def test_bad_spec_is_a_parse_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3", "--shared-buffer", "bogus"])
        assert "sharing policy" in capsys.readouterr().err

    def test_default_scoped_to_command(self, capsys):
        # The process default set by --shared-buffer must not leak past
        # the command's dispatch (same contract as --audit/--faults).
        from repro.net.sharedbuf import shared_buffer_enabled
        assert main(["fig3", "--duration", "0.004",
                     "--shared-buffer", "dt:capacity=400,alpha=4"]) == 0
        assert shared_buffer_enabled(None) is None
        capsys.readouterr()

    def test_sharedbuf_command_runs_and_caches(self, tmp_path, capsys):
        argv = ["sharedbuf", "--profile", "tiny", "--schemes", "pmsb",
                "--alphas", "1.0", "--target-delays", "0.0002",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "dt" in cold and "bshare" in cold and "none" in cold
        assert main(argv) == 0  # warm: answered from the run store
        assert capsys.readouterr().out == cold


class TestSpecFlags:
    """The four spec-valued flags share one SpecFlag code path: every
    bad input must die in argparse with the flag's own name prefixed,
    and every default must be scoped to the dispatched command."""

    @pytest.mark.parametrize("flag,value,needle", [
        ("--topology", "bogus", "unknown topology preset"),
        ("--topology", "clos:tiers=4", "tiers"),
        ("--topology", "leaf-spine:weird=1", "unknown field 'weird'"),
        ("--faults", "nope", "unknown fault model"),
        ("--shared-buffer", "bogus", "sharing policy"),
        ("--shared-buffer", "dt:capacity=lots", "invalid literal"),
        ("--controller", "zeta", "unknown controller"),
    ])
    def test_bad_spec_names_the_flag(self, capsys, flag, value, needle):
        with pytest.raises(SystemExit):
            main(["fig3", flag, value])
        err = capsys.readouterr().err
        assert f"{flag}: " in err
        assert needle in err

    def test_every_command_accepts_every_spec_flag(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args(
                [name, "--topology", "clos:tiers=2,ports=8,oversub=1.5",
                 "--faults", "iid-loss:rate=0.001",
                 "--shared-buffer", "dt:capacity=64",
                 "--controller", "pi:target=0.6"])
            assert args.topology == "clos:tiers=2,ports=8,oversub=1.5"
            assert args.faults == ["iid-loss:rate=0.001"]

    def test_topology_default_scoped_to_command(self, capsys):
        from repro.net.topology import topology_enabled

        assert main(["fig8", "--duration", "0.004",
                     "--topology", "leaf-spine"]) == 0
        capsys.readouterr()
        # The process default must not leak past dispatch.
        assert topology_enabled(None) is None

    def test_sweep_with_topology_runs(self, capsys):
        assert main(["sweep", "--profile", "tiny", "--loads", "0.5",
                     "--seed", "3", "--jobs", "1", "--topology",
                     "clos:tiers=2,ports=4,oversub=3"]) == 0
        out = capsys.readouterr().out
        assert "PMSB" in out


class TestXScaleCommand:
    def test_registered_with_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["xscale", "--schemes", "pmsb", "--hogs", "4", "--ladder",
             "clos:tiers=2,ports=8,oversub=1.5", "clos:tiers=2,ports=16"])
        assert args.command == "xscale"
        assert args.schemes == ["pmsb"]
        assert args.hogs == 4
        assert len(args.ladder) == 2

    def test_runs_one_rung(self, capsys):
        assert main(["xscale", "--profile", "tiny", "--schemes", "pmsb",
                     "--hogs", "4", "--jobs", "1", "--ladder",
                     "clos:tiers=2,ports=4,oversub=3"]) == 0
        out = capsys.readouterr().out
        assert "hosts" in out and "24" in out and "PMSB" in out


class TestElideParams:
    def test_empty_renders_dash(self):
        from repro.cli import _elide_params
        assert _elide_params(None) == "-"
        assert _elide_params({}) == "-"
        assert _elide_params(()) == "-"

    def test_key_sorted_cells(self):
        from repro.cli import _elide_params
        assert _elide_params({"b": 2, "a": 1}) == "a=1,b=2"

    def test_accepts_nested_pairs(self):
        from repro.cli import _elide_params
        assert _elide_params((("topology", "clos"),)) == "topology=clos"

    def test_first_entry_always_shown(self):
        from repro.cli import _elide_params
        cell = _elide_params({"alpha": "x" * 80, "beta": 1}, budget=20)
        assert cell.startswith("alpha=xxx")
        assert cell.endswith("+1 more")

    def test_elides_whole_entries_with_explicit_tail(self):
        from repro.cli import _elide_params
        params = {f"k{i}": i for i in range(9)}
        cell = _elide_params(params, budget=30)
        body, _, tail = cell.partition(" +")
        shown = body.split(",")
        assert shown[0] == "k0=0"
        assert tail.endswith("more")
        assert len(shown) + int(tail.split()[0]) == 9

    def test_under_budget_shows_everything(self):
        from repro.cli import _elide_params
        assert _elide_params({"a": 1, "b": 2}, budget=44) == "a=1,b=2"
        assert "more" not in _elide_params({"a": 1, "b": 2}, budget=44)

    def test_runs_list_shows_params_column(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["sweep", "--profile", "tiny", "--seed", "5",
                     "--loads", "0.5", "--jobs", "1",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "params" in out
        assert "topology=leaf-spine" in out
