"""Smoke tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_every_command_registered(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_sweep_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--scheduler", "wfq", "--loads", "0.3", "0.5",
             "--seed", "7"]
        )
        assert args.scheduler == "wfq"
        assert args.loads == [0.3, 0.5]
        assert args.seed == 7


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "theorem" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_fig3_runs_and_exports(self, tmp_path, capsys):
        path = str(tmp_path / "fig3.json")
        assert main(["fig3", "--duration", "0.006", "--json", path]) == 0
        out = capsys.readouterr().out
        assert "queue 1" in out
        payload = json.loads(open(path).read())
        assert payload["queue2_gbps"] > payload["queue1_gbps"]

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "PMSB(e)" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8", "--duration", "0.006"]) == 0
        assert "q1" in capsys.readouterr().out

    def test_pool(self, capsys):
        assert main(["pool", "--duration", "0.006"]) == 0
        assert "port A" in capsys.readouterr().out

    def test_theorem_csv_export(self, tmp_path, capsys):
        path = str(tmp_path / "theorem.csv")
        assert main(["theorem", "--duration", "0.006", "--csv", path]) == 0
        with open(path) as handle:
            header = handle.readline()
        assert "utilization" in header


class TestNewCommands:
    def test_burst_and_transports_registered(self):
        parser = build_parser()
        assert parser.parse_args(["burst"]).command == "burst"
        assert parser.parse_args(["transports"]).command == "transports"

    def test_transports_runs(self, capsys):
        assert main(["transports", "--duration", "0.006"]) == 0
        out = capsys.readouterr().out
        assert "dctcp" in out and "dcqcn" in out


class TestAuditFlag:
    def test_every_command_accepts_audit(self):
        parser = build_parser()
        for name in COMMANDS:
            assert parser.parse_args([name, "--audit"]).audit is True
            assert parser.parse_args([name]).audit is False

    def test_audit_default_scoped_to_command(self, capsys):
        from repro.sim.audit import audit_enabled

        assert main(["fig3", "--duration", "0.006", "--audit"]) == 0
        assert "queue 1" in capsys.readouterr().out
        # The process-wide default is restored after the command returns.
        assert audit_enabled() is False

    def test_fig8_under_audit(self, capsys):
        assert main(["fig8", "--duration", "0.006", "--audit"]) == 0
        assert "q1" in capsys.readouterr().out


class TestSweepParallelFlags:
    def test_jobs_flag(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_defaults_to_profile_choice(self):
        parser = build_parser()
        assert parser.parse_args(["sweep"]).jobs is None

    def test_scale_selects_profile(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--scale", "tiny"])
        assert args.scale == "tiny"

    def test_profile_flag_enables_profiler(self):
        parser = build_parser()
        assert parser.parse_args(["sweep", "--profile"]).profile is True
        assert parser.parse_args(["sweep"]).profile is False

    def test_sweep_tiny_serial_equals_parallel(self, capsys):
        argv = ["sweep", "--scale", "tiny", "--seed", "3"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
