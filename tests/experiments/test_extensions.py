"""Shape checks for the extension experiments (paper prose claims)."""

from __future__ import annotations

import pytest

from repro.experiments.extensions import pmsbe_coexistence, service_pool_victim
from repro.store import RunConfig

FAST = RunConfig(duration=0.01)


class TestServicePoolConjecture:
    def test_cross_port_victim_exists(self):
        result = service_pool_victim(config=FAST)
        # Port A's lone flow cannot fill its own uncontended link.
        assert result.port_a_utilization < 0.6
        assert result.pool_marked > 0

    def test_big_pool_threshold_removes_interference(self):
        result = service_pool_victim(pool_threshold=500.0, config=FAST)
        assert result.port_a_utilization > 0.8

    def test_port_b_unaffected(self):
        result = service_pool_victim(config=FAST)
        # The 8 flows collectively saturate their link either way.
        assert result.port_b_gbps > 8.0


class TestCoexistence:
    def test_baseline_victim(self):
        result = pmsbe_coexistence(victim_upgraded=False, config=FAST)
        assert result.fair_share_error > 0.3
        assert result.victim_filtered_marks == 0

    def test_upgrade_reclaims_fair_share(self):
        result = pmsbe_coexistence(victim_upgraded=True, config=FAST)
        assert result.fair_share_error < 0.15
        assert result.victim_filtered_marks > 0

    def test_others_keep_their_aggregate_share(self):
        baseline = pmsbe_coexistence(victim_upgraded=False, config=FAST)
        upgraded = pmsbe_coexistence(victim_upgraded=True, config=FAST)
        total_base = baseline.victim_gbps + baseline.others_gbps
        total_up = upgraded.victim_gbps + upgraded.others_gbps
        # Link stays fully utilized; the upgrade redistributes, not
        # destroys, throughput.
        assert total_up == pytest.approx(total_base, rel=0.1)


class TestIncastSweep:
    def test_rows_cover_fanins(self):
        from repro.experiments.extensions import incast_sweep
        rows = incast_sweep("pmsb", fanins=(8, 16),
                            config=RunConfig(duration=0.05))
        assert [row.fanin for row in rows] == [8, 16]
        assert all(row.completed == row.fanin for row in rows)

    def test_ecn_beats_droptail_at_scale(self):
        from repro.experiments.extensions import incast_sweep
        slow = RunConfig(duration=0.08)
        pmsb = incast_sweep("pmsb", fanins=(48,), config=slow)[0]
        droptail = incast_sweep("none", fanins=(48,), config=slow)[0]
        assert pmsb.completed == droptail.completed == 48
        assert (pmsb.retransmission_timeouts
                <= droptail.retransmission_timeouts)
