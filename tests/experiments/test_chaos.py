"""Chaos experiments: faulted sweeps must keep every store guarantee
(cache hits, crash/resume, jobs-level byte-identity) and pass the
fabric auditor with injected loss."""

from __future__ import annotations

import pytest

from repro.experiments import chaos, largescale
from repro.experiments.chaos import (chaos_fair_share, chaos_faults,
                                     chaos_point_spec, chaos_victim,
                                     run_chaos_sweep)
from repro.experiments.largescale import CRASH_AFTER_ENV, run_fct_point
from repro.experiments.scale import TINY
from repro.metrics.export import to_json
from repro.store import RunConfig, RunStore

pytestmark = pytest.mark.slow

SEED = 11
RATES = (0.0, 1e-3)


def _sweep(cache_dir, jobs=1, force=False, audit=None, rates=RATES):
    return run_chaos_sweep(
        scheme_names=("pmsb", "per-port"), loss_rates=rates,
        config=RunConfig(profile=TINY, seed=SEED, jobs=jobs, audit=audit,
                         cache_dir=str(cache_dir) if cache_dir else None,
                         force=force))


def _export(rows, path):
    to_json(rows, str(path))
    return path.read_bytes()


class TestChaosFaults:
    def test_rate_zero_is_the_clean_baseline(self):
        assert chaos_faults("iid-loss", 0.0) == ()

    def test_nonzero_rate_builds_one_spec(self):
        (spec,) = chaos_faults("gilbert-elliott", 1e-3, links="bottleneck")
        assert spec.links == "bottleneck"


class TestChaosPointSpec:
    def test_loss_rate_re_keys_the_point(self):
        clean = chaos_point_spec("pmsb", "dwrr", 0.5, TINY, SEED,
                                 "iid-loss", 0.0)
        lossy = chaos_point_spec("pmsb", "dwrr", 0.5, TINY, SEED,
                                 "iid-loss", 1e-3)
        assert clean.key() != lossy.key()

    def test_model_re_keys_at_matched_rate(self):
        iid = chaos_point_spec("pmsb", "dwrr", 0.5, TINY, SEED,
                               "iid-loss", 1e-3)
        ge = chaos_point_spec("pmsb", "dwrr", 0.5, TINY, SEED,
                              "gilbert-elliott", 1e-3)
        assert iid.key() != ge.key()

    def test_shards_re_key_but_single_process_is_unchanged(self):
        base = chaos_point_spec("pmsb", "dwrr", 0.5, TINY, SEED,
                                "iid-loss", 1e-3)
        single = chaos_point_spec("pmsb", "dwrr", 0.5, TINY, SEED,
                                  "iid-loss", 1e-3, shards=1)
        sharded = chaos_point_spec("pmsb", "dwrr", 0.5, TINY, SEED,
                                   "iid-loss", 1e-3, shards=2)
        assert base.key() == single.key()
        assert base.key() != sharded.key()

    def test_distinct_from_clean_sweep_family(self):
        chaos_spec = chaos_point_spec("pmsb", "dwrr", 0.5, TINY, SEED,
                                      "iid-loss", 0.0)
        clean_spec = largescale.fct_point_spec("pmsb", "dwrr", 0.5, TINY,
                                               SEED)
        assert chaos_spec.key() != clean_spec.key()


class TestStoreContract:
    def test_cold_run_populates_store(self, tmp_path):
        rows = _sweep(tmp_path / "cache")
        assert len(RunStore(tmp_path / "cache")) == len(rows) == 4
        assert largescale._points_computed == 4

    def test_warm_run_computes_nothing(self, tmp_path):
        cold = _sweep(tmp_path / "cache")
        warm = _sweep(tmp_path / "cache")
        assert largescale._points_computed == 0
        assert warm == cold

    def test_parallel_cold_run_matches_serial(self, tmp_path):
        serial = _export(_sweep(tmp_path / "cache-a"), tmp_path / "a.json")
        parallel = _export(_sweep(tmp_path / "cache-b", jobs=4),
                           tmp_path / "b.json")
        assert serial == parallel

    def test_crash_resume_is_byte_identical(self, tmp_path, monkeypatch):
        clean = _export(_sweep(tmp_path / "clean-cache"),
                        tmp_path / "clean.json")

        monkeypatch.setenv(CRASH_AFTER_ENV, "2")
        with pytest.raises(RuntimeError, match="injected crash"):
            _sweep(tmp_path / "cache")
        monkeypatch.delenv(CRASH_AFTER_ENV)
        assert len(RunStore(tmp_path / "cache")) == 2

        # Resume at a different jobs level: the two surviving points are
        # cache hits, the other two recompute, and the export still
        # matches the clean run byte-for-byte.
        resumed = _export(_sweep(tmp_path / "cache", jobs=2),
                          tmp_path / "resumed.json")
        assert resumed == clean
        assert len(RunStore(tmp_path / "cache")) == 4


class TestLossActuallyHappens:
    def test_paired_drops_across_schemes(self, tmp_path):
        rows = _sweep(None, rates=(1e-3,))
        assert len(rows) == 2
        assert all(sum(row.drops.values()) > 0 for row in rows)
        # Fault streams key on (seed, salt, link) — not the scheme — so
        # both schemes saw the same loss pattern.
        assert rows[0].drops == rows[1].drops

    def test_audited_lossy_sweep_passes(self, tmp_path):
        # The auditor's conservation invariants must account for every
        # injected drop; a violation raises inside the worker.
        rows = _sweep(None, audit=True, rates=(1e-3,))
        assert all(sum(row.drops.values()) > 0 for row in rows)

    def test_audited_lossy_point_reports_fault_stats(self):
        stats = {}
        row = run_fct_point(
            "pmsb", "dwrr", 0.5, TINY, seed=SEED,
            config=RunConfig(audit=True),
            faults=chaos_faults("iid-loss", 1e-3),
            fault_stats_out=stats,
        )
        assert row.completed > 0
        assert stats["drops"].get("wire", 0) > 0
        assert sum(link["lost"] for link in stats["links"].values()) == \
            sum(stats["drops"].values())

    @pytest.mark.parametrize("model,rate", [
        ("iid-loss", 1e-3),
        ("gilbert-elliott", 1e-3),
    ])
    def test_fault_streams_survive_sharding(self, model, rate):
        """Per-link fault RNG streams key on (seed, salt, link name),
        never on process layout — splitting the fabric into shards must
        replay the identical loss pattern on every link."""
        results = []
        for shards in (None, 2):
            stats = {}
            row = run_fct_point(
                "pmsb", "dwrr", 0.5, TINY, seed=SEED,
                config=RunConfig(shards=shards),
                faults=chaos_faults(model, rate, links="leaf*->spine*"),
                fault_stats_out=stats,
            )
            results.append((row, stats))
        (base_row, base_stats), (shard_row, shard_stats) = results
        assert base_stats == shard_stats
        assert base_row == shard_row


class TestStaticVariants:
    def test_chaos_victim_measures_drops(self):
        row = chaos_victim(loss_rate=1e-2, duration=0.004, audit=True)
        assert row.scheme == "Per-Port"
        assert sum(row.drops.values()) > 0
        assert 0.0 <= row.fair_share_error

    def test_chaos_fair_share_clean_baseline_has_no_drops(self):
        row = chaos_fair_share(loss_rate=0.0, duration=0.004)
        assert row.drops == {}
        assert row.fair_share_error < 0.05

    def test_payload_round_trip(self):
        row = chaos.ChaosFctRow(
            model="iid-loss", loss_rate=1e-3, drops={"wire": 3},
            fct=run_fct_point("pmsb", "dwrr", 0.5, TINY, seed=SEED))
        assert chaos.ChaosFctRow.from_payload(row.to_payload()) == row
